#pragma once
// Crash-safe persistence for the search subsystem (docs/search_cache.md).
//
// Two building blocks, both sealed with the same CRC-16/CCITT-FALSE the
// intermittent engine uses for NVM progress records (device/crc16.hpp):
//
//  * CacheVault — an append-only log of fixed-size evaluation records
//    (EvalKey + EvalValue + CRC). Appends are O(record); a crash can only
//    tear the final record. open() scrubs the file on boot and truncates
//    at the first bad record instead of failing — the valid prefix is
//    always salvaged, mirroring the engine's power-failure recovery
//    ladder rather than treating corruption as fatal.
//
//  * SnapshotSlots — a double-buffered checkpoint journal (slot files
//    <stem>.a / <stem>.b). store(seq, payload) seals the payload and
//    atomically replaces slot seq%2, so one intact older snapshot always
//    survives a crash mid-write; load() returns the highest-sequence
//    valid slot. This is the PR 4 double-buffered progress-record idiom
//    lifted from simulated NVM onto the host filesystem.

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "search/eval_cache.hpp"
#include "search/eval_key.hpp"

namespace iprune::search {

/// One scrubbed cache record.
struct VaultRecord {
  EvalKey key;
  EvalValue value;
};

/// Outcome of the boot-time scrub.
struct VaultScrub {
  std::size_t records = 0;        ///< valid records salvaged
  std::size_t dropped_bytes = 0;  ///< bytes truncated after the valid prefix
  bool rewrote_header = false;    ///< file was absent/bad and re-created
};

class CacheVault {
 public:
  CacheVault() = default;
  ~CacheVault();

  CacheVault(const CacheVault&) = delete;
  CacheVault& operator=(const CacheVault&) = delete;

  /// Serialized record size: 16-byte key + 64-byte value + 2-byte CRC.
  static constexpr std::size_t kRecordBytes = 82;

  /// Open (creating if absent) and scrub: every sealed record in the valid
  /// prefix is loaded, and the file is truncated at the first record whose
  /// CRC fails or which is shorter than kRecordBytes. Never throws on
  /// corruption — a torn tail is an expected crash artifact.
  VaultScrub open(const std::string& path);

  /// Append one sealed record and flush it to the OS.
  void append(const EvalKey& key, const EvalValue& value);

  [[nodiscard]] const std::vector<VaultRecord>& records() const {
    return records_;
  }
  [[nodiscard]] bool is_open() const { return file_ != nullptr; }
  [[nodiscard]] const std::string& path() const { return path_; }

  void close();

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::vector<VaultRecord> records_;
};

/// Double-buffered sealed snapshots. Payloads are opaque byte strings
/// (the search drivers serialize checkpoints with search/codec.hpp).
class SnapshotSlots {
 public:
  /// Slot files are <stem>.a and <stem>.b.
  explicit SnapshotSlots(std::string stem) : stem_(std::move(stem)) {}

  /// Seal and atomically publish `payload` into slot seq%2. Throws only if
  /// the filesystem rejects the write entirely (util::atomic_write fails).
  void store(std::uint64_t seq, const std::vector<std::uint8_t>& payload);

  struct Snapshot {
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> payload;
  };

  /// Highest-sequence valid snapshot across both slots; nullopt when
  /// neither slot holds a sealed record (fresh start or double corruption).
  [[nodiscard]] std::optional<Snapshot> load() const;

  [[nodiscard]] std::string slot_path(int slot) const;

 private:
  std::string stem_;
};

}  // namespace iprune::search
