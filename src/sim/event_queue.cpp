#include "sim/event_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace iprune::sim {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kSupplySegmentEnd:
      return "supply_segment_end";
    case EventKind::kQuietWindowEnd:
      return "quiet_window_end";
    case EventKind::kCommitBoundary:
      return "commit_boundary";
    case EventKind::kTelemetryInstant:
      return "telemetry_instant";
  }
  return "?";
}

bool EventQueue::after(const Entry& a, const Entry& b) {
  // std::push_heap builds a max-heap; invert to get the min element on
  // top. NaN times are rejected at push, so < is a strict weak order.
  if (a.event.t_us != b.event.t_us) {
    return a.event.t_us > b.event.t_us;
  }
  return a.seq > b.seq;
}

void EventQueue::push(const Event& event) {
  if (event.t_us != event.t_us) {  // NaN would corrupt the heap order
    throw std::invalid_argument("EventQueue: NaN event time");
  }
  heap_.push_back({event, next_seq_++});
  std::push_heap(heap_.begin(), heap_.end(), after);
}

const Event& EventQueue::peek() const {
  if (heap_.empty()) {
    throw std::logic_error("EventQueue: peek on empty queue");
  }
  return heap_.front().event;
}

Event EventQueue::pop() {
  if (heap_.empty()) {
    throw std::logic_error("EventQueue: pop on empty queue");
  }
  std::pop_heap(heap_.begin(), heap_.end(), after);
  const Event event = heap_.back().event;
  heap_.pop_back();
  return event;
}

void EventQueue::clear() {
  heap_.clear();
  next_seq_ = 0;
}

}  // namespace iprune::sim
