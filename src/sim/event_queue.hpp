#pragma once
// Deterministic discrete-event queue for the simulation core.
//
// The intermittent-device model only has a handful of *decision points*
// where the outcome of the next chargeable operation can differ from
// plain energy bookkeeping: the harvest profile changes (supply segment
// boundary), the fault schedule may fire (quiet-window end), the engine
// synchronizes externally visible state (commit/seal boundary), or
// telemetry wants exact per-event instants. Everything between two
// decision points can be fast-forwarded. EventQueue orders those points
// deterministically: by time, then by insertion sequence (FIFO for ties),
// so replays and differential runs see the same order regardless of how
// the events were discovered.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace iprune::sim {

/// Why the scheduler must stop fast-forwarding and take the exact path.
enum class EventKind : std::uint8_t {
  kSupplySegmentEnd,  // cached harvest power expires
  kQuietWindowEnd,    // fault hook may fire (count-bounded, payload = events)
  kCommitBoundary,    // engine commit/seal: settle skipped hook ordinals
  kTelemetryInstant,  // tracing active: every event is externally visible
};

const char* event_kind_name(EventKind kind);

struct Event {
  /// Absolute simulated time in microseconds. Count-bounded events (e.g.
  /// a quiet window measured in chargeable events, not time) use +inf and
  /// carry the count in `payload`.
  double t_us = 0.0;
  EventKind kind = EventKind::kSupplySegmentEnd;
  std::uint64_t payload = 0;
};

/// Min-heap over Event ordered by (t_us, insertion sequence). The
/// sequence tie-break makes pop order a pure function of push order —
/// never of heap internals — which is what the determinism contract of
/// the fleet layer requires.
class EventQueue {
 public:
  void push(const Event& event);
  [[nodiscard]] const Event& peek() const;  // throws when empty
  Event pop();                              // throws when empty

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  void clear();

 private:
  struct Entry {
    Event event;
    std::uint64_t seq = 0;
  };
  static bool after(const Entry& a, const Entry& b);

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace iprune::sim
