#include "sim/scheduler.hpp"

namespace iprune::sim {

ChargeGrant DeviceScheduler::plan(double now_us,
                                  const power::PowerSupply& supply,
                                  const power::FaultHook* hook,
                                  bool trace_on) {
  horizon_.clear();
  ChargeGrant grant;

  if (trace_on) {
    // Every chargeable event emits telemetry spans/instants: all events
    // are decision points and the exact path must run each one.
    horizon_.push({now_us, EventKind::kTelemetryInstant, 0});
    grant.events = 0;
    return grant;
  }

  const std::uint64_t quiet =
      hook != nullptr ? hook->quiet_events()
                      : std::numeric_limits<std::uint64_t>::max();
  const power::SupplySegment seg = supply.segment(now_us * 1e-6);
  const double seg_end_us = seg.end_s * 1e6;
  horizon_.push({seg_end_us, EventKind::kSupplySegmentEnd, 0});
  horizon_.push({std::numeric_limits<double>::infinity(),
                 EventKind::kQuietWindowEnd, quiet});

  if (seg_end_us <= now_us) {
    // Zero-length segment (guard band or a supply without segment
    // support): no constant window to charge against.
    grant.events = 0;
    return grant;
  }
  grant.events = quiet;
  grant.power_w = seg.power_w;
  grant.end_us = seg_end_us;
  return grant;
}

}  // namespace iprune::sim
