#pragma once
// DeviceScheduler: plans the fast-forward windows of the discrete-event
// simulation mode (power::SimMode::kScheduler).
//
// A window ("charge grant") is the stretch of upcoming chargeable events
// the device may account through PowerManager::consume_quiet — skipping
// the per-event virtual supply query and fault-hook call — without any
// observable difference from the stepping oracle. The window is bounded
// by the decision points of the model, gathered into an EventQueue:
//
//   - the supply's constant-power segment end (harvest power changes),
//   - the fault hook's quiet-event horizon (the schedule may fire),
//   - telemetry instants (tracing on makes every event observable, so
//     the grant collapses to zero and the device takes the exact path),
//
// while engine commit/seal boundaries and reboots *invalidate* issued
// grants (Msp430Device::on_commit_boundary / power_cycle), because both
// re-synchronize externally visible ordinal state through the slow path.
//
// Correctness contract: consuming at most `events` events, each starting
// before `end_us`, with cached power `power_w`, is bit-identical to the
// stepping model — the segment guarantees the supply value, the quiet
// horizon guarantees the hook answers false, and consume_quiet replays
// consume()'s exact arithmetic.

#include <cstdint>
#include <limits>

#include "power/fault_hook.hpp"
#include "power/supply.hpp"
#include "sim/event_queue.hpp"

namespace iprune::sim {

/// A planned fast-forward window. events == 0 means "no fast path" — the
/// caller must execute the next operation through the exact slow path.
struct ChargeGrant {
  /// Chargeable events that may bypass the fault hook (settled in bulk
  /// later via FaultHook::skip_quiet_events).
  std::uint64_t events = 0;
  /// Harvest power valid for operations starting before end_us.
  double power_w = 0.0;
  /// Exclusive end of the constant-power window (device-clock us).
  double end_us = std::numeric_limits<double>::infinity();
};

class DeviceScheduler {
 public:
  /// Plan the next window starting at device time `now_us`. `hook` may be
  /// null (no injection: the quiet horizon is unbounded). Tracing active
  /// (`trace_on`) yields a zero grant: every event must go the exact path
  /// so telemetry instants land per event.
  ChargeGrant plan(double now_us, const power::PowerSupply& supply,
                   const power::FaultHook* hook, bool trace_on);

  /// Decision points backing the most recent plan() call, in
  /// deterministic order. Diagnostic/inspection surface (the device only
  /// needs the grant itself).
  [[nodiscard]] const EventQueue& horizon() const { return horizon_; }

 private:
  EventQueue horizon_;
};

}  // namespace iprune::sim
