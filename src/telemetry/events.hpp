#pragma once
// Structured telemetry events for the intermittent inference pipeline.
//
// Every interesting moment of a simulated run — a DMA command, an LEA
// invocation, a progress-preservation NVM write, a brown-out, the recharge
// dead time, a layer or tile boundary — is described by one Event stamped
// with simulated time, energy, and byte/MAC payloads. Producers (device,
// power manager, engine) hand events to a TraceSink (sink.hpp); consumers
// aggregate them (registry.hpp) or export them (trace_export.hpp).

#include <cstdint>
#include <string>

namespace iprune::telemetry {

enum class EventClass : std::uint8_t {
  // Device operation classes. These mirror device::CostTag so that a
  // trace-derived latency breakdown reproduces the engine's aggregate
  // accounting exactly (the Fig. 2 preservation/computation split).
  kNvmRead = 0,
  kNvmWrite,
  kLea,
  kCpu,
  kReboot,
  // Power events.
  kBrownOut,     // instant: the energy buffer emptied mid-operation
  kRecharge,     // span: dead time until the buffer reaches the on-threshold
  kPowerOn,      // instant: device resumed after recharge + reboot
  kFaultInject,  // instant: a brown-out forced by the fault-injection hook
                 // (always paired with a kBrownOut at the same timestamp;
                 // name = fault point, seq = injected-outage ordinal)
  // Engine events.
  kProgressCommit,  // instant: job counter persisted to NVM
  kInference,       // begin/end: one end-to-end inference
  kLayer,           // begin/end: one lowered node
  kTile,            // begin/end: one output tile of a GEMM node
  kIntegrity,       // instant: NVM corruption detected / recovered (name =
                    // "progress_rollback" | "scrub_fail:<region>")
  kClassCount,
};

constexpr std::size_t kEventClassCount =
    static_cast<std::size_t>(EventClass::kClassCount);

const char* event_class_name(EventClass cls);

enum class EventPhase : std::uint8_t {
  kSpan,     // complete interval: t_us .. t_us + dur_us
  kBegin,    // scope opened (kInference / kLayer / kTile)
  kEnd,      // scope closed
  kInstant,  // point event
};

struct Event {
  EventClass cls = EventClass::kCpu;
  EventPhase phase = EventPhase::kSpan;
  /// Simulated start time (microseconds since device construction).
  double t_us = 0.0;
  /// Unit-busy duration (kSpan only). For pipelined operations the busy
  /// windows of the LEA and the NVM writer overlap on the timeline.
  double dur_us = 0.0;
  /// Exposed-latency share: the portion of wall-clock this event owns
  /// under the engine's dominant-unit attribution rule. Summing
  /// attributed_us per class over a trace reproduces DeviceStats'
  /// tag_time_us exactly.
  double attributed_us = 0.0;
  double energy_j = 0.0;
  std::uint64_t bytes = 0;
  std::uint64_t macs = 0;
  /// Class-specific ordinal: job counter for kProgressCommit, VM epoch
  /// for power events, tile index for kTile.
  std::uint64_t seq = 0;
  /// Scope name (layer name for kLayer/kTile); empty for device events.
  std::string name;
};

}  // namespace iprune::telemetry
