#include "telemetry/registry.hpp"

#include <cmath>

namespace iprune::telemetry {

std::size_t Histogram::bucket_index(double value) {
  if (!(value >= 1.0)) {  // also catches NaN and negatives
    return 0;
  }
  const int exponent = std::ilogb(value);
  const auto index = static_cast<std::size_t>(exponent) + 1;
  return index < kBuckets ? index : kBuckets - 1;
}

double Histogram::bucket_lower_bound(std::size_t index) {
  return index == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(index) - 1);
}

double Histogram::bucket_upper_bound(std::size_t index) {
  return std::ldexp(1.0, static_cast<int>(index));
}

void Histogram::record(double value) {
  ++buckets_[bucket_index(value)];
  ++count_;
  if (std::isfinite(value) && value > 0.0) {
    sum_ += value;
    max_ = std::max(max_, value);
  }
}

void Histogram::merge(const Histogram& other) {
  for (std::size_t b = 0; b < kBuckets; ++b) {
    buckets_[b] += other.buckets_[b];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

double Histogram::quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::min(std::max(q, 0.0), 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= target) {
      return bucket_upper_bound(b);
    }
  }
  return bucket_upper_bound(kBuckets - 1);
}

void ClassMetrics::merge(const ClassMetrics& other) {
  events += other.events;
  busy_us += other.busy_us;
  attributed_us += other.attributed_us;
  energy_j += other.energy_j;
  bytes += other.bytes;
  macs += other.macs;
  latency_us.merge(other.latency_us);
  energy_nj.merge(other.energy_nj);
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (std::size_t cls = 0; cls < kEventClassCount; ++cls) {
    classes_[cls].merge(other.classes_[cls]);
  }
  for (const LayerMetrics& theirs : other.layers_) {
    LayerMetrics& ours = layers_[layer_slot(theirs.name)];
    ours.passes += theirs.passes;
    ours.wall_us += theirs.wall_us;
    for (std::size_t cls = 0; cls < kEventClassCount; ++cls) {
      ours.attributed_us[cls] += theirs.attributed_us[cls];
    }
    ours.energy_j += theirs.energy_j;
    ours.bytes += theirs.bytes;
    ours.macs += theirs.macs;
  }
  events_seen_ += other.events_seen_;
}

std::size_t MetricsRegistry::layer_slot(const std::string& name) {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i].name == name) {
      return i;
    }
  }
  layers_.push_back(LayerMetrics{});
  layers_.back().name = name;
  return layers_.size() - 1;
}

void MetricsRegistry::observe(const Event& event) {
  ++events_seen_;
  ClassMetrics& cm = classes_.at(static_cast<std::size_t>(event.cls));
  ++cm.events;

  switch (event.phase) {
    case EventPhase::kSpan: {
      cm.busy_us += event.dur_us;
      cm.attributed_us += event.attributed_us;
      cm.energy_j += event.energy_j;
      cm.bytes += event.bytes;
      cm.macs += event.macs;
      cm.latency_us.record(event.dur_us);
      cm.energy_nj.record(event.energy_j * 1e9);
      if (!layer_stack_.empty()) {
        LayerMetrics& lm = layers_[layer_stack_.back().first];
        lm.attributed_us[static_cast<std::size_t>(event.cls)] +=
            event.attributed_us;
        lm.energy_j += event.energy_j;
        lm.bytes += event.bytes;
        lm.macs += event.macs;
      }
      break;
    }
    case EventPhase::kBegin:
      if (event.cls == EventClass::kLayer) {
        layer_stack_.emplace_back(layer_slot(event.name), event.t_us);
      }
      break;
    case EventPhase::kEnd:
      if (event.cls == EventClass::kLayer && !layer_stack_.empty()) {
        LayerMetrics& lm = layers_[layer_stack_.back().first];
        ++lm.passes;
        lm.wall_us += event.t_us - layer_stack_.back().second;
        layer_stack_.pop_back();
      }
      break;
    case EventPhase::kInstant:
      break;
  }
}

}  // namespace iprune::telemetry
