#include "telemetry/registry.hpp"

#include <cmath>

namespace iprune::telemetry {

std::size_t Histogram::bucket_index(double value) {
  if (!(value >= 1.0)) {  // also catches NaN and negatives
    return 0;
  }
  const int exponent = std::ilogb(value);
  const auto index = static_cast<std::size_t>(exponent) + 1;
  return index < kBuckets ? index : kBuckets - 1;
}

double Histogram::bucket_lower_bound(std::size_t index) {
  return index == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(index) - 1);
}

double Histogram::bucket_upper_bound(std::size_t index) {
  return std::ldexp(1.0, static_cast<int>(index));
}

void Histogram::record(double value) {
  ++buckets_[bucket_index(value)];
  ++count_;
  if (std::isfinite(value) && value > 0.0) {
    sum_ += value;
    max_ = std::max(max_, value);
  }
}

double Histogram::quantile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  q = std::min(std::max(q, 0.0), 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= target) {
      return bucket_upper_bound(b);
    }
  }
  return bucket_upper_bound(kBuckets - 1);
}

std::size_t MetricsRegistry::layer_slot(const std::string& name) {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i].name == name) {
      return i;
    }
  }
  layers_.push_back(LayerMetrics{});
  layers_.back().name = name;
  return layers_.size() - 1;
}

void MetricsRegistry::observe(const Event& event) {
  ++events_seen_;
  ClassMetrics& cm = classes_.at(static_cast<std::size_t>(event.cls));
  ++cm.events;

  switch (event.phase) {
    case EventPhase::kSpan: {
      cm.busy_us += event.dur_us;
      cm.attributed_us += event.attributed_us;
      cm.energy_j += event.energy_j;
      cm.bytes += event.bytes;
      cm.macs += event.macs;
      cm.latency_us.record(event.dur_us);
      cm.energy_nj.record(event.energy_j * 1e9);
      if (!layer_stack_.empty()) {
        LayerMetrics& lm = layers_[layer_stack_.back().first];
        lm.attributed_us[static_cast<std::size_t>(event.cls)] +=
            event.attributed_us;
        lm.energy_j += event.energy_j;
        lm.bytes += event.bytes;
        lm.macs += event.macs;
      }
      break;
    }
    case EventPhase::kBegin:
      if (event.cls == EventClass::kLayer) {
        layer_stack_.emplace_back(layer_slot(event.name), event.t_us);
      }
      break;
    case EventPhase::kEnd:
      if (event.cls == EventClass::kLayer && !layer_stack_.empty()) {
        LayerMetrics& lm = layers_[layer_stack_.back().first];
        ++lm.passes;
        lm.wall_us += event.t_us - layer_stack_.back().second;
        layer_stack_.pop_back();
      }
      break;
    case EventPhase::kInstant:
      break;
  }
}

}  // namespace iprune::telemetry
