#pragma once
// Counters-and-histograms registry fed from the telemetry event stream.
//
// Aggregates per event class (counts, busy/attributed time, energy,
// byte/MAC payloads, log-scale latency and energy histograms) and per
// layer (wall time and per-class exposure attributed to the innermost
// enclosing kLayer scope). The registry sees every event — unlike the
// bounded trace ring buffer it never drops — so aggregate queries remain
// exact even when the event record overflows.

#include <array>
#include <cstdint>
#include <vector>

#include "telemetry/events.hpp"

namespace iprune::telemetry {

/// Fixed log2-scale histogram. Bucket 0 counts samples in [0, 1) unit;
/// bucket b >= 1 counts [2^(b-1), 2^b). The unit is chosen by the caller
/// (the registry uses microseconds for latency, nanojoules for energy).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 48;

  void record(double value);

  /// Fold another histogram in (bucket-wise sum; max of maxima). Merging
  /// is associative and commutative, so per-worker histograms folded in
  /// any fixed order give the same result as a single serial recorder.
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t index) const {
    return buckets_.at(index);
  }
  /// Inclusive lower bound of a bucket (0 for bucket 0, else 2^(i-1)).
  [[nodiscard]] static double bucket_lower_bound(std::size_t index);
  /// Exclusive upper bound of a bucket (2^i).
  [[nodiscard]] static double bucket_upper_bound(std::size_t index);
  /// Bucket index a value lands in (negative/NaN values clamp to 0).
  [[nodiscard]] static std::size_t bucket_index(double value);

  /// Upper-bound estimate of the q-quantile (q in [0, 1]) from the bucket
  /// boundaries; 0 when empty.
  [[nodiscard]] double quantile(double q) const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_ = {};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

/// Aggregates over all span events of one class.
struct ClassMetrics {
  std::uint64_t events = 0;
  double busy_us = 0.0;        // sum of dur_us (unit-busy time)
  double attributed_us = 0.0;  // sum of exposed-latency shares
  double energy_j = 0.0;
  std::uint64_t bytes = 0;
  std::uint64_t macs = 0;
  Histogram latency_us;  // per-event dur_us
  Histogram energy_nj;   // per-event energy in nanojoules

  /// Fold another class aggregate in (see Histogram::merge).
  void merge(const ClassMetrics& other);
};

/// Per-layer exposure: device time attributed to the innermost enclosing
/// kLayer scope, plus the scope's own wall time.
struct LayerMetrics {
  std::string name;
  std::uint64_t passes = 0;  // completed begin/end pairs
  double wall_us = 0.0;      // sum over passes of (end - begin)
  std::array<double, kEventClassCount> attributed_us = {};
  double energy_j = 0.0;
  std::uint64_t bytes = 0;
  std::uint64_t macs = 0;
};

class MetricsRegistry {
 public:
  /// Feed one event. Span events update their class (and, when a layer
  /// scope is open, that layer); begin/end events maintain the scope
  /// stack; instants bump the class event count only.
  void observe(const Event& event);

  [[nodiscard]] const ClassMetrics& for_class(EventClass cls) const {
    return classes_.at(static_cast<std::size_t>(cls));
  }
  /// Layers in first-seen order.
  [[nodiscard]] const std::vector<LayerMetrics>& layers() const {
    return layers_;
  }
  [[nodiscard]] std::uint64_t events_seen() const { return events_seen_; }

  /// Fold another registry in: class aggregates merge per class, layers
  /// merge by name (unseen layers append in `other`'s order). Both
  /// registries must have no open kLayer scope. Parallel benches record
  /// into one registry per worker and merge them in candidate order, so
  /// the combined registry is identical for any lane count.
  void merge(const MetricsRegistry& other);

 private:
  [[nodiscard]] std::size_t layer_slot(const std::string& name);

  std::array<ClassMetrics, kEventClassCount> classes_ = {};
  std::vector<LayerMetrics> layers_;
  /// Open kLayer scopes: (layer slot, begin time).
  std::vector<std::pair<std::size_t, double>> layer_stack_;
  std::uint64_t events_seen_ = 0;
};

}  // namespace iprune::telemetry
