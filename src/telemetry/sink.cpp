#include "telemetry/sink.hpp"

#include <stdexcept>

namespace iprune::telemetry {

const char* event_class_name(EventClass cls) {
  switch (cls) {
    case EventClass::kNvmRead:
      return "nvm_read";
    case EventClass::kNvmWrite:
      return "nvm_write";
    case EventClass::kLea:
      return "lea";
    case EventClass::kCpu:
      return "cpu";
    case EventClass::kReboot:
      return "reboot";
    case EventClass::kBrownOut:
      return "brown_out";
    case EventClass::kRecharge:
      return "recharge";
    case EventClass::kPowerOn:
      return "power_on";
    case EventClass::kFaultInject:
      return "fault_inject";
    case EventClass::kProgressCommit:
      return "progress_commit";
    case EventClass::kInference:
      return "inference";
    case EventClass::kLayer:
      return "layer";
    case EventClass::kTile:
      return "tile";
    case EventClass::kIntegrity:
      return "integrity";
    case EventClass::kClassCount:
      break;
  }
  return "?";
}

NullSink& NullSink::instance() {
  static NullSink sink;
  return sink;
}

RecorderSink::RecorderSink(std::size_t capacity)
    : TraceSink(true), capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("RecorderSink: capacity must be positive");
  }
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void RecorderSink::record(const Event& event) {
  registry_.observe(event);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    next_ = ring_.size() % capacity_;
    return;
  }
  wrapped_ = true;
  ++dropped_;
  ring_[next_] = event;
  next_ = (next_ + 1) % capacity_;
}

std::size_t RecorderSink::size() const { return ring_.size(); }

std::vector<Event> RecorderSink::events() const {
  if (!wrapped_) {
    return ring_;
  }
  std::vector<Event> ordered;
  ordered.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    ordered.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return ordered;
}

}  // namespace iprune::telemetry
