#pragma once
// TraceSink: where telemetry events go.
//
// Producers hold a non-owning TraceSink* that defaults to the process-wide
// NullSink, and guard every emission with sink->enabled() — a plain bool
// load, so an uninstrumented run pays one predictable branch per
// would-be event and never constructs an Event. RecorderSink keeps a
// bounded ring of recent events (drop-oldest on overflow) and feeds every
// event — including dropped ones — into an exact MetricsRegistry.

#include <cstddef>
#include <utility>
#include <vector>

#include "telemetry/events.hpp"
#include "telemetry/registry.hpp"

namespace iprune::telemetry {

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Cheap gate for producers: skip Event construction entirely when off.
  [[nodiscard]] bool enabled() const { return enabled_; }

  virtual void record(const Event& event) = 0;

 protected:
  explicit TraceSink(bool enabled) : enabled_(enabled) {}

 private:
  const bool enabled_;
};

/// Discards everything; the default sink of every producer.
class NullSink final : public TraceSink {
 public:
  NullSink() : TraceSink(false) {}
  void record(const Event&) override {}

  /// Process-wide instance so producers can hold a never-null pointer.
  static NullSink& instance();
};

/// Aggregates-only sink: feeds every event into an exact MetricsRegistry
/// and retains nothing else. The per-device telemetry collector of the
/// fleet orchestrator, where a RecorderSink ring per device (thousands of
/// devices) would dwarf the simulation state itself.
class RegistrySink final : public TraceSink {
 public:
  RegistrySink() : TraceSink(true) {}

  void record(const Event& event) override { registry_.observe(event); }

  [[nodiscard]] const MetricsRegistry& registry() const { return registry_; }
  /// Move the aggregates out (the sink is spent afterwards).
  [[nodiscard]] MetricsRegistry take_registry() {
    return std::move(registry_);
  }

 private:
  MetricsRegistry registry_;
};

/// Bounded in-memory recorder: the last `capacity` events in arrival
/// order plus exact aggregate metrics over the full stream.
class RecorderSink final : public TraceSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 18;

  explicit RecorderSink(std::size_t capacity = kDefaultCapacity);

  void record(const Event& event) override;

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<Event> events() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Events evicted by the drop-oldest overflow policy. Dropped events
  /// are still reflected in registry() aggregates.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  [[nodiscard]] const MetricsRegistry& registry() const { return registry_; }

 private:
  std::size_t capacity_;
  std::vector<Event> ring_;
  std::size_t next_ = 0;   // ring slot the next event lands in
  bool wrapped_ = false;
  std::uint64_t dropped_ = 0;
  MetricsRegistry registry_;
};

}  // namespace iprune::telemetry
