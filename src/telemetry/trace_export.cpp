#include "telemetry/trace_export.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "util/table.hpp"

namespace iprune::telemetry {

namespace {

/// Track ids: scoped engine events on one track, each hardware unit on
/// its own so overlapping busy windows (pipelined jobs) render correctly.
enum TrackId : int {
  kTrackEngine = 0,
  kTrackLea = 1,
  kTrackNvm = 2,
  kTrackCpu = 3,
  kTrackPower = 4,
};

int track_of(EventClass cls) {
  switch (cls) {
    case EventClass::kLea:
      return kTrackLea;
    case EventClass::kNvmRead:
    case EventClass::kNvmWrite:
      return kTrackNvm;
    case EventClass::kCpu:
      return kTrackCpu;
    case EventClass::kReboot:
    case EventClass::kBrownOut:
    case EventClass::kRecharge:
    case EventClass::kPowerOn:
    case EventClass::kFaultInject:
      return kTrackPower;
    default:
      return kTrackEngine;
  }
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(ch));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string number(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

void append_args(std::string& out, const Event& e) {
  out += "\"args\":{\"energy_j\":" + number(e.energy_j);
  out += ",\"attributed_us\":" + number(e.attributed_us);
  if (e.bytes > 0) {
    out += ",\"bytes\":" + std::to_string(e.bytes);
  }
  if (e.macs > 0) {
    out += ",\"macs\":" + std::to_string(e.macs);
  }
  out += ",\"seq\":" + std::to_string(e.seq);
  out += "}";
}

void append_event(std::string& out, const Event& e) {
  const std::string name =
      e.name.empty() ? event_class_name(e.cls) : json_escape(e.name);
  out += "{\"name\":\"" + name + "\",\"cat\":\"";
  out += event_class_name(e.cls);
  out += "\",\"pid\":0,\"tid\":" + std::to_string(track_of(e.cls));
  out += ",\"ts\":" + number(e.t_us);
  switch (e.phase) {
    case EventPhase::kSpan:
      out += ",\"ph\":\"X\",\"dur\":" + number(e.dur_us);
      break;
    case EventPhase::kBegin:
      out += ",\"ph\":\"B\"";
      break;
    case EventPhase::kEnd:
      out += ",\"ph\":\"E\"";
      break;
    case EventPhase::kInstant:
      out += ",\"ph\":\"i\",\"s\":\"t\"";
      break;
  }
  out += ",";
  append_args(out, e);
  out += "}";
}

void append_track_name(std::string& out, int tid, const char* name) {
  out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
  out += std::to_string(tid);
  out += ",\"args\":{\"name\":\"";
  out += name;
  out += "\"}},";
}

}  // namespace

std::string chrome_trace_json(const std::vector<Event>& events) {
  std::string out;
  out.reserve(events.size() * 160 + 512);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  append_track_name(out, kTrackEngine, "engine");
  append_track_name(out, kTrackLea, "lea");
  append_track_name(out, kTrackNvm, "nvm");
  append_track_name(out, kTrackCpu, "cpu");
  append_track_name(out, kTrackPower, "power");
  for (std::size_t i = 0; i < events.size(); ++i) {
    append_event(out, events[i]);
    if (i + 1 < events.size()) {
      out += ",";
    }
  }
  out += "]}";
  return out;
}

bool export_chrome_trace(const std::vector<Event>& events,
                         const std::string& path) {
  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    return false;
  }
  file << chrome_trace_json(events);
  return static_cast<bool>(file.flush());
}

util::CsvWriter summary_csv(const MetricsRegistry& registry) {
  util::CsvWriter csv({"class", "events", "busy_us", "attributed_us",
                       "energy_j", "bytes", "macs", "latency_mean_us",
                       "latency_p99_us"});
  for (std::size_t c = 0; c < kEventClassCount; ++c) {
    const auto cls = static_cast<EventClass>(c);
    const ClassMetrics& m = registry.for_class(cls);
    if (m.events == 0) {
      continue;
    }
    csv.row({event_class_name(cls), std::to_string(m.events),
             util::Table::format(m.busy_us, 3),
             util::Table::format(m.attributed_us, 3), number(m.energy_j),
             std::to_string(m.bytes), std::to_string(m.macs),
             util::Table::format(m.latency_us.mean(), 3),
             util::Table::format(m.latency_us.quantile(0.99), 3)});
  }
  return csv;
}

LatencyBreakdown LatencyBreakdown::from(const MetricsRegistry& registry) {
  LatencyBreakdown b;
  b.preservation_s =
      registry.for_class(EventClass::kNvmWrite).attributed_us * 1e-6;
  b.fetch_s = registry.for_class(EventClass::kNvmRead).attributed_us * 1e-6;
  b.compute_s = (registry.for_class(EventClass::kLea).attributed_us +
                 registry.for_class(EventClass::kCpu).attributed_us) *
                1e-6;
  b.reboot_s = registry.for_class(EventClass::kReboot).attributed_us * 1e-6;
  b.recharge_s =
      registry.for_class(EventClass::kRecharge).attributed_us * 1e-6;
  return b;
}

std::string breakdown_table(const LatencyBreakdown& breakdown) {
  const double total = breakdown.total_s();
  auto pct = [&](double part) {
    return util::Table::format(total > 0.0 ? 100.0 * part / total : 0.0, 1) +
           "%";
  };
  util::Table table({"Component", "Time (s)", "Share"});
  table.row()
      .cell("Progress preservation (NVM write)")
      .cell(util::Table::format(breakdown.preservation_s, 6))
      .cell(pct(breakdown.preservation_s));
  table.row()
      .cell("Data fetch (NVM read)")
      .cell(util::Table::format(breakdown.fetch_s, 6))
      .cell(pct(breakdown.fetch_s));
  table.row()
      .cell("Computation (LEA + CPU)")
      .cell(util::Table::format(breakdown.compute_s, 6))
      .cell(pct(breakdown.compute_s));
  table.row()
      .cell("Reboot")
      .cell(util::Table::format(breakdown.reboot_s, 6))
      .cell(pct(breakdown.reboot_s));
  table.row()
      .cell("Recharge (off)")
      .cell(util::Table::format(breakdown.recharge_s, 6))
      .cell(pct(breakdown.recharge_s));
  table.row()
      .cell("Total")
      .cell(util::Table::format(total, 6))
      .cell("100.0%");
  return table.str();
}

std::string layer_table(const MetricsRegistry& registry) {
  util::Table table({"Layer", "Passes", "Wall (s)", "NVM write (s)",
                     "NVM read (s)", "LEA (s)", "CPU (s)", "Off (s)",
                     "Energy (mJ)", "KB written", "MACs"});
  for (const LayerMetrics& lm : registry.layers()) {
    auto cls_s = [&](EventClass cls) {
      return util::Table::format(
          lm.attributed_us[static_cast<std::size_t>(cls)] * 1e-6, 6);
    };
    table.row()
        .cell(lm.name)
        .cell(lm.passes)
        .cell(util::Table::format(lm.wall_us * 1e-6, 6))
        .cell(cls_s(EventClass::kNvmWrite))
        .cell(cls_s(EventClass::kNvmRead))
        .cell(cls_s(EventClass::kLea))
        .cell(cls_s(EventClass::kCpu))
        .cell(cls_s(EventClass::kRecharge))
        .cell(util::Table::format(lm.energy_j * 1e3, 3))
        .cell(util::Table::format(static_cast<double>(lm.bytes) / 1024.0, 1))
        .cell(lm.macs);
  }
  return table.str();
}

}  // namespace iprune::telemetry
