#pragma once
// Exporters for recorded telemetry.
//
//  * chrome_trace_json / export_chrome_trace — Chrome-trace ("Trace Event
//    Format") JSON loadable in Perfetto or chrome://tracing. Hardware
//    units (LEA, NVM/DMA, CPU, power) get their own tracks so pipelined
//    operations render as overlapping busy windows; engine scopes
//    (inference/layer/tile) nest on an engine track.
//  * summary_csv — one row per event class, machine-readable.
//  * LatencyBreakdown / breakdown_table — the paper's Fig. 2 split
//    (progress preservation vs computation vs recharge dead time),
//    derived from the live event stream instead of hand-maintained
//    accounting.

#include <string>
#include <vector>

#include "telemetry/registry.hpp"
#include "telemetry/sink.hpp"
#include "util/csv.hpp"

namespace iprune::telemetry {

/// Serialize events as Chrome-trace JSON (a {"traceEvents": [...]} object).
[[nodiscard]] std::string chrome_trace_json(const std::vector<Event>& events);

/// Write chrome_trace_json to a file; false on I/O error.
[[nodiscard]] bool export_chrome_trace(const std::vector<Event>& events,
                                       const std::string& path);

/// Per-event-class aggregate table (count, busy/exposed time, energy,
/// bytes, MACs, latency mean/p99).
[[nodiscard]] util::CsvWriter summary_csv(const MetricsRegistry& registry);

/// Fig. 2's latency split, derived from trace aggregates. The exposed-time
/// attribution matches device::DeviceStats exactly, so percentages agree
/// with the engine's own counters.
struct LatencyBreakdown {
  double preservation_s = 0.0;  // NVM write exposure (progress preservation)
  double fetch_s = 0.0;         // NVM read exposure
  double compute_s = 0.0;       // LEA + CPU exposure
  double reboot_s = 0.0;
  double recharge_s = 0.0;      // off time waiting on the harvester

  [[nodiscard]] double on_s() const {
    return preservation_s + fetch_s + compute_s + reboot_s;
  }
  [[nodiscard]] double total_s() const { return on_s() + recharge_s; }

  [[nodiscard]] static LatencyBreakdown from(const MetricsRegistry& registry);
};

/// Human-readable breakdown table (shares of total wall-clock).
[[nodiscard]] std::string breakdown_table(const LatencyBreakdown& breakdown);

/// Per-layer exposure table from registry aggregates.
[[nodiscard]] std::string layer_table(const MetricsRegistry& registry);

}  // namespace iprune::telemetry
