#include "util/atomic_write.hpp"

#include <cstdio>
#include <stdexcept>

#if defined(_WIN32)
#include <io.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

namespace iprune::util {

namespace {

/// Flush a stdio stream down to the storage device. Best-effort on
/// platforms without fsync; the rename itself is still atomic.
bool sync_stream(std::FILE* file) {
  if (std::fflush(file) != 0) {
    return false;
  }
#if defined(_WIN32)
  return _commit(_fileno(file)) == 0;
#else
  return ::fsync(fileno(file)) == 0;
#endif
}

/// After renaming, persist the directory entry so the rename survives a
/// power cut too (POSIX requires fsync on the containing directory).
void sync_parent_dir(const std::string& path) {
#if !defined(_WIN32)
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);  // best-effort: some filesystems reject directory fsync
    ::close(fd);
  }
#else
  (void)path;
#endif
}

}  // namespace

bool atomic_write(const std::string& path, std::string_view bytes) {
  // The temp file must live in the destination directory: rename() is
  // only atomic within one filesystem. The pid suffix keeps concurrent
  // writers of the same artifact from clobbering each other's temp file.
#if defined(_WIN32)
  const long pid = 0;
#else
  const long pid = static_cast<long>(::getpid());
#endif
  const std::string tmp = path + ".tmp." + std::to_string(pid);
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return false;
  }
  const bool wrote =
      bytes.empty() ||
      std::fwrite(bytes.data(), 1, bytes.size(), file) == bytes.size();
  const bool synced = wrote && sync_stream(file);
  const bool closed = std::fclose(file) == 0;
  if (!wrote || !synced || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  sync_parent_dir(path);
  return true;
}

void atomic_write_or_throw(const std::string& path, std::string_view bytes,
                           const std::string& what) {
  if (!atomic_write(path, bytes)) {
    throw std::runtime_error(what + ": cannot write " + path);
  }
}

}  // namespace iprune::util
