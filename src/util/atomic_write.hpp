#pragma once
// Crash-safe file replacement: write to a temp file in the destination
// directory, fsync it, then rename() over the target, so readers either
// see the complete old contents or the complete new contents — never a
// torn artifact. Every artifact writer (fleet CSV/Prometheus gateways,
// BENCH_PERF.json, fuzzer repros, the search-state journal) goes through
// this; a process killed mid-write leaves at worst a stray *.tmp.* file.

#include <string>
#include <string_view>

namespace iprune::util {

/// Atomically replace `path` with `bytes`. Returns false (and removes the
/// temp file) on any I/O failure; the previous contents of `path`, if
/// any, are untouched on failure.
[[nodiscard]] bool atomic_write(const std::string& path,
                                std::string_view bytes);

/// atomic_write that throws std::runtime_error("<what>: cannot write
/// <path>") instead of returning false.
void atomic_write_or_throw(const std::string& path, std::string_view bytes,
                           const std::string& what);

}  // namespace iprune::util
