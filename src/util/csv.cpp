#include "util/csv.hpp"

#include <sstream>

#include "util/atomic_write.hpp"

namespace iprune::util {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

CsvWriter& CsvWriter::row(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
  return *this;
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quotes) {
    return cell;
  }
  std::string quoted = "\"";
  for (const char ch : cell) {
    if (ch == '"') {
      quoted += '"';
    }
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

std::string CsvWriter::str() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) {
        out << ',';
      }
      out << escape(cells[i]);
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& r : rows_) {
    emit(r);
  }
  return out.str();
}

bool CsvWriter::save(const std::string& path) const {
  // Crash-safe: a process killed mid-save leaves the previous file (or no
  // file) rather than a torn CSV.
  return atomic_write(path, str());
}

}  // namespace iprune::util
