#pragma once
// CSV emission for bench results (machine-readable companion to the ASCII
// tables, handy for downstream plotting).

#include <string>
#include <vector>

namespace iprune::util {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  CsvWriter& row(const std::vector<std::string>& cells);

  /// Serialize with RFC-4180 style quoting where needed.
  [[nodiscard]] std::string str() const;

  /// Write to a file; returns false (and leaves no partial file) on error.
  [[nodiscard]] bool save(const std::string& path) const;

 private:
  static std::string escape(const std::string& cell);

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace iprune::util
