#pragma once
// FNV-1a fingerprinting for deterministic result digests.
//
// Folds raw bytes into a machine-independent 64-bit fingerprint. Fleet
// aggregation and the perf gate both reduce large deterministic outputs
// (logit vectors, counter sets) to one comparable word with this; it is a
// digest for equality checks, not a cryptographic hash.

#include <cstddef>
#include <cstdint>

namespace iprune::util {

class Fnv1a {
 public:
  void fold(const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ull;
    }
  }
  void fold_u64(std::uint64_t value) { fold(&value, sizeof(value)); }
  void fold_f32(const float* data, std::size_t count) {
    fold(data, count * sizeof(float));
  }

  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

}  // namespace iprune::util
