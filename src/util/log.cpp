#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace iprune::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() {
  return g_level.load(std::memory_order_relaxed);
}

void log(LogLevel level, const std::string& message) {
  const LogLevel current = g_level.load(std::memory_order_relaxed);
  if (level < current || current == LogLevel::kOff) {
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", level_tag(level), message.c_str());
}

}  // namespace iprune::util
