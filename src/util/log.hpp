#pragma once
// Minimal leveled logging. Benches run with Info; tests default to Warn so
// gtest output stays readable; Trace exists for debugging simulations.

#include <string>

namespace iprune::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global level; defaults to kInfo. The level is stored atomically so
/// worker threads of the runtime pool may log while the main thread
/// configures it; individual messages are written with one fprintf call.
void set_log_level(LogLevel level);
LogLevel log_level();

void log(LogLevel level, const std::string& message);

inline void log_info(const std::string& message) {
  log(LogLevel::kInfo, message);
}
inline void log_warn(const std::string& message) {
  log(LogLevel::kWarn, message);
}
inline void log_error(const std::string& message) {
  log(LogLevel::kError, message);
}
inline void log_debug(const std::string& message) {
  log(LogLevel::kDebug, message);
}

}  // namespace iprune::util
