#include "util/perf_gate.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace iprune::util {

namespace {

constexpr const char* kSchemaTag = "iprune-bench-perf/1";

/// Minimal recursive-descent reader for the exact document shape
/// to_json() emits (plus arbitrary whitespace). Not a general JSON
/// parser; anything unexpected throws.
class Reader {
 public:
  explicit Reader(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  [[nodiscard]] bool peek(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  [[nodiscard]] bool consume(char c) {
    if (peek(c)) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      const char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          fail("dangling escape");
        }
        out.push_back(text_[pos_++]);
      } else {
        out.push_back(c);
      }
    }
    if (pos_ >= text_.size()) {
      fail("unterminated string");
    }
    ++pos_;  // closing quote
    return out;
  }

  [[nodiscard]] std::uint64_t number() {
    skip_ws();
    if (pos_ >= text_.size() ||
        std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
      fail("expected number");
    }
    std::uint64_t value = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
      value = value * 10 + static_cast<std::uint64_t>(text_[pos_] - '0');
      ++pos_;
    }
    return value;
  }

  void done() {
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing garbage");
    }
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("BENCH_PERF.json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  out.push_back('"');
}

}  // namespace

void PerfReport::add(PerfEntry entry) {
  entries.push_back(std::move(entry));
}

const PerfEntry* PerfReport::find(const std::string& name) const {
  for (const PerfEntry& e : entries) {
    if (e.name == name) {
      return &e;
    }
  }
  return nullptr;
}

std::string PerfReport::to_json() const {
  std::vector<const PerfEntry*> sorted;
  sorted.reserve(entries.size());
  for (const PerfEntry& e : entries) {
    sorted.push_back(&e);
  }
  std::sort(sorted.begin(), sorted.end(),
            [](const PerfEntry* x, const PerfEntry* y) {
              return x->name < y->name;
            });
  std::string out = "{\n  \"schema\": \"";
  out += kSchemaTag;
  out += "\",\n  \"entries\": [";
  bool first = true;
  for (const PerfEntry* e : sorted) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": ";
    append_escaped(out, e->name);
    out += ", \"median_ns\": " + std::to_string(e->median_ns);
    out += ", \"iters\": " + std::to_string(e->iters);
    out += ", \"checksum\": " + std::to_string(e->checksum);
    out += ", \"backend\": ";
    append_escaped(out, e->backend);
    out += "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

PerfReport PerfReport::from_json(const std::string& text) {
  Reader r(text);
  PerfReport report;
  bool saw_schema = false;
  bool saw_entries = false;
  r.expect('{');
  if (!r.consume('}')) {
    do {
      const std::string key = r.string();
      r.expect(':');
      if (key == "schema") {
        const std::string tag = r.string();
        if (tag != kSchemaTag) {
          throw std::runtime_error("BENCH_PERF.json: unsupported schema '" +
                                   tag + "' (want " + kSchemaTag + ")");
        }
        saw_schema = true;
      } else if (key == "entries") {
        saw_entries = true;
        r.expect('[');
        if (!r.consume(']')) {
          do {
            PerfEntry entry;
            bool has_name = false;
            bool has_median = false;
            bool has_iters = false;
            bool has_checksum = false;
            r.expect('{');
            if (!r.consume('}')) {
              do {
                const std::string field = r.string();
                r.expect(':');
                if (field == "name") {
                  entry.name = r.string();
                  has_name = true;
                } else if (field == "median_ns") {
                  entry.median_ns = r.number();
                  has_median = true;
                } else if (field == "iters") {
                  entry.iters = r.number();
                  has_iters = true;
                } else if (field == "checksum") {
                  entry.checksum = r.number();
                  has_checksum = true;
                } else if (field == "backend") {
                  // Optional provenance tag; absent in pre-backend
                  // baselines, which default to "host".
                  entry.backend = r.string();
                } else {
                  throw std::runtime_error(
                      "BENCH_PERF.json: unknown entry key '" + field + "'");
                }
              } while (r.consume(','));
              r.expect('}');
            }
            if (!has_name || !has_median || !has_iters || !has_checksum) {
              throw std::runtime_error(
                  "BENCH_PERF.json: entry missing a required key "
                  "(name/median_ns/iters/checksum)");
            }
            report.entries.push_back(std::move(entry));
          } while (r.consume(','));
          r.expect(']');
        }
      } else {
        throw std::runtime_error("BENCH_PERF.json: unknown key '" + key +
                                 "'");
      }
    } while (r.consume(','));
    r.expect('}');
  }
  r.done();
  if (!saw_schema || !saw_entries) {
    throw std::runtime_error(
        "BENCH_PERF.json: document needs both \"schema\" and \"entries\"");
  }
  return report;
}

PerfGateResult compare(const PerfReport& baseline, const PerfReport& current,
                       double tolerance) {
  PerfGateResult result;
  std::ostringstream out;
  for (const PerfEntry& base : baseline.entries) {
    PerfComparison cmp;
    cmp.name = base.name;
    const PerfEntry* cur = current.find(base.name);
    if (cur == nullptr) {
      cmp.missing = true;
      out << "FAIL " << base.name << ": missing from this run\n";
    } else {
      cmp.checksum_changed = cur->checksum != base.checksum;
      cmp.backend_changed = cur->backend != base.backend;
      cmp.ratio = base.median_ns == 0
                      ? 1.0
                      : static_cast<double>(cur->median_ns) /
                            static_cast<double>(base.median_ns);
      cmp.regressed = cmp.ratio > tolerance;
      if (cmp.checksum_changed) {
        out << "FAIL " << base.name << ": checksum " << cur->checksum
            << " != baseline " << base.checksum
            << " (numerics changed — optimizations must stay bit-identical)"
            << "\n";
      }
      if (cmp.backend_changed) {
        out << "FAIL " << base.name << ": backend '" << cur->backend
            << "' != baseline '" << base.backend
            << "' (timings across backends are not comparable)\n";
      }
      if (cmp.regressed) {
        out << "FAIL " << base.name << ": " << cur->median_ns << " ns vs "
            << base.median_ns << " ns baseline (" << cmp.ratio
            << "x, tolerance " << tolerance << "x)\n";
      }
      if (!cmp.failed()) {
        out << "  ok " << base.name << ": " << cur->median_ns << " ns ("
            << cmp.ratio << "x of baseline)\n";
      }
    }
    result.passed = result.passed && !cmp.failed();
    result.comparisons.push_back(std::move(cmp));
  }
  out << (result.passed ? "PASS" : "FAIL") << ": "
      << result.comparisons.size() << " baseline entries checked\n";
  result.summary = out.str();
  return result;
}

}  // namespace iprune::util
