#pragma once
// Perf-regression gate: the report format and comparator behind
// bench_perf_gate (bench/bench_perf_gate.cpp).
//
// A benchmark run produces a PerfReport — one PerfEntry per timed
// scenario with its median-of-k wall time, iteration count, and a
// checksum folded from the scenario's numerical output (the checksum is
// machine-independent; the timings are not). The report round-trips
// through a small JSON document (BENCH_PERF.json):
//
//   {
//     "schema": "iprune-bench-perf/1",
//     "entries": [
//       {"name": "gemm_dense_64", "median_ns": 23000,
//        "iters": 64, "checksum": 1234567}
//     ]
//   }
//
// compare() holds a fresh report against a checked-in baseline and fails
// on (a) a baseline entry missing from the run, (b) a checksum mismatch
// (the optimized kernels silently changed their numerics), or (c) a
// median slowdown beyond `tolerance`. Speedups never fail; re-baseline
// to claim them (docs/performance.md describes the procedure).

#include <cstdint>
#include <string>
#include <vector>

namespace iprune::util {

struct PerfEntry {
  std::string name;
  std::uint64_t median_ns = 0;
  std::uint64_t iters = 0;
  std::uint64_t checksum = 0;
  /// Backend preset token that produced this entry's numbers
  /// (engine::BackendConfig::describe()). Host-side kernels that never
  /// touch a device model keep the "host" tag. Optional in the JSON for
  /// baseline compatibility; compare() treats a tag change like a
  /// checksum change — timings from different backends are not
  /// comparable.
  std::string backend = "host";
};

struct PerfReport {
  std::vector<PerfEntry> entries;

  void add(PerfEntry entry);
  /// Entry by name, or nullptr.
  [[nodiscard]] const PerfEntry* find(const std::string& name) const;

  /// Serialize (entries sorted by name, so reports diff cleanly).
  [[nodiscard]] std::string to_json() const;

  /// Parse a document produced by to_json(). Throws std::runtime_error
  /// on malformed input, a wrong schema tag, or a missing required key.
  static PerfReport from_json(const std::string& text);
};

/// Comparator verdict for one baseline entry.
struct PerfComparison {
  std::string name;
  bool missing = false;         // entry absent from the current run
  bool checksum_changed = false;
  /// The run measured this scenario on a different backend than the
  /// baseline did — its timings prove nothing either way.
  bool backend_changed = false;
  double ratio = 0.0;           // current median / baseline median
  bool regressed = false;       // ratio > tolerance
  [[nodiscard]] bool failed() const {
    return missing || checksum_changed || backend_changed || regressed;
  }
};

struct PerfGateResult {
  std::vector<PerfComparison> comparisons;
  bool passed = true;
  /// Human-readable per-entry lines plus a final PASS/FAIL summary.
  std::string summary;
};

/// Default slowdown tolerance: a genuine 2x regression must fail, while
/// scheduler jitter on a loaded CI box must not.
inline constexpr double kDefaultPerfTolerance = 1.6;

/// Judge `current` against `baseline`. Every baseline entry must be
/// present, bit-equal in checksum, and no slower than
/// `tolerance * baseline.median_ns`. Entries only in `current` are
/// ignored (adding benchmarks never breaks an old baseline).
[[nodiscard]] PerfGateResult compare(const PerfReport& baseline,
                                     const PerfReport& current,
                                     double tolerance = kDefaultPerfTolerance);

}  // namespace iprune::util
