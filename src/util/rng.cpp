#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

#include "util/splitmix.hpp"

namespace iprune::util {

namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  assert(n > 0);
  // Rejection-free modulo is fine for our n << 2^64 use cases, but use
  // Lemire's multiply-shift to avoid modulo bias anyway.
  __extension__ using uint128 = unsigned __int128;
  const uint128 product = static_cast<uint128>(next_u64()) * n;
  return static_cast<std::uint64_t>(product >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::bernoulli(double p) {
  return uniform() < p;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) {
    perm[i] = i;
  }
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = uniform_index(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Rng Rng::split() {
  return Rng(next_u64());
}

RngState Rng::state() const {
  RngState s;
  s.words = {state_[0], state_[1], state_[2], state_[3]};
  s.cached_normal = cached_normal_;
  s.has_cached_normal = has_cached_normal_;
  return s;
}

Rng Rng::from_state(const RngState& state) {
  Rng rng(0);
  for (std::size_t i = 0; i < 4; ++i) {
    rng.state_[i] = state.words[i];
  }
  rng.cached_normal_ = state.cached_normal;
  rng.has_cached_normal_ = state.has_cached_normal;
  return rng;
}

}  // namespace iprune::util
