#pragma once
// Deterministic pseudo-random number generation for the whole project.
//
// Every stochastic component (dataset synthesis, weight init, simulated
// annealing, dropout-style noise) draws from a seeded Rng so that tests and
// benchmark tables are bit-reproducible across runs and machines.

#include <array>
#include <cstdint>
#include <vector>

namespace iprune::util {

/// Complete serialized state of an Rng: the xoshiro256++ words plus the
/// Box-Muller carry. Restoring a captured state resumes the stream
/// bit-identically — the search journal persists exactly this so a killed
/// annealing / arch-search run replays the same draw sequence.
struct RngState {
  std::array<std::uint64_t, 4> words{};
  double cached_normal = 0.0;
  bool has_cached_normal = false;

  bool operator==(const RngState& other) const = default;
};

/// xoshiro256++ PRNG seeded via splitmix64.
///
/// Small, fast, and with well-understood statistical quality; avoids
/// std::mt19937's cross-platform distribution pitfalls (we implement our own
/// distributions so results are identical everywhere).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x1B12C0DEull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli draw with probability p of returning true.
  bool bernoulli(double p);

  /// Fisher-Yates shuffle of an index permutation [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derive an independent child stream (for parallel-safe sub-seeding).
  Rng split();

  /// Snapshot the complete stream position (see RngState).
  [[nodiscard]] RngState state() const;

  /// Rng resuming at `state`; draws continue the captured stream exactly.
  static Rng from_state(const RngState& state);

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace iprune::util
