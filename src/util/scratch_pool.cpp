#include "util/scratch_pool.hpp"

#include <algorithm>

namespace iprune::util {

ScratchPool& ScratchPool::local() {
  thread_local ScratchPool pool;
  return pool;
}

std::vector<std::byte> ScratchPool::take(std::size_t bytes) {
  ++outstanding_;
  // Best fit: the smallest free buffer whose capacity already covers the
  // request, so big buffers stay available for big checkouts.
  std::size_t best = free_.size();
  for (std::size_t i = 0; i < free_.size(); ++i) {
    if (free_[i].capacity() >= bytes &&
        (best == free_.size() ||
         free_[i].capacity() < free_[best].capacity())) {
      best = i;
    }
  }
  if (best == free_.size() && !free_.empty()) {
    // Nothing big enough: grow the largest free buffer instead of leaving
    // it stranded while a fresh allocation duplicates it.
    best = 0;
    for (std::size_t i = 1; i < free_.size(); ++i) {
      if (free_[i].capacity() > free_[best].capacity()) {
        best = i;
      }
    }
  }
  if (best < free_.size()) {
    std::vector<std::byte> storage = std::move(free_[best]);
    free_.erase(free_.begin() + static_cast<std::ptrdiff_t>(best));
    if (storage.capacity() >= bytes) {
      ++reuses_;
    } else {
      ++allocations_;
    }
    storage.resize(bytes);
    return storage;
  }
  ++allocations_;
  return std::vector<std::byte>(bytes);
}

void ScratchPool::give_back(std::vector<std::byte>&& storage) {
  if (outstanding_ > 0) {
    --outstanding_;
  }
  if (storage.capacity() == 0) {
    return;
  }
  if (free_.size() >= kMaxFreeBuffers) {
    // Evict the smallest retained buffer (keep the ones hardest to
    // re-allocate) unless the incoming one is smaller still.
    auto smallest = std::min_element(
        free_.begin(), free_.end(), [](const auto& x, const auto& y) {
          return x.capacity() < y.capacity();
        });
    if (smallest->capacity() >= storage.capacity()) {
      return;
    }
    *smallest = std::move(storage);
    return;
  }
  free_.push_back(std::move(storage));
}

}  // namespace iprune::util
