#pragma once
// Per-lane scratch-buffer arena for hot-path temporaries.
//
// The inner loops of the prune-retrain-search pipeline (im2col staging in
// Conv2d, psum tiles in the intermittent engine, batch gathers in
// evaluate_graph) used to heap-allocate their scratch on every call;
// across the millions of inferences a sensitivity sweep or latency bench
// performs, the allocator dominated. A ScratchPool recycles those buffers:
// acquire<T>(count) checks a buffer out (best-fit from a bounded free
// list, falling back to a fresh allocation), and the RAII Scratch<T>
// handle checks it back in on destruction.
//
// Lifetime rules (docs/performance.md):
//   * Scratch contents are UNINITIALIZED on acquire — callers must write
//     every element they read (or call fill()). Reuse never leaks data
//     *between* lanes because pools are lane-local, but it does hand a
//     lane its own previous bytes back.
//   * A Scratch must not outlive its pool. The thread-local pool of
//     ScratchPool::local() lives until thread exit, so layer/engine code
//     holding a checkout across one call is always safe.
//   * Concurrently checked-out buffers never alias (pinned by
//     tests/util/scratch_pool_test.cpp).
//
// Threading: ScratchPool is NOT thread-safe; it is meant to be lane-local.
// ScratchPool::local() hands every thread — the caller lane and each
// runtime::ThreadPool worker lane — its own pool, so parallel_map bodies
// get isolated arenas with zero synchronization.

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace iprune::util {

class ScratchPool;

/// RAII checkout of `count` elements of T from a ScratchPool. Movable,
/// not copyable; returns its storage to the pool on destruction.
template <typename T>
class Scratch {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "Scratch only holds trivial element types");

 public:
  Scratch() = default;
  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;
  Scratch(Scratch&& other) noexcept { swap(other); }
  Scratch& operator=(Scratch&& other) noexcept {
    if (this != &other) {
      release();
      swap(other);
    }
    return *this;
  }
  ~Scratch() { release(); }

  [[nodiscard]] T* data() {
    return reinterpret_cast<T*>(storage_.data());
  }
  [[nodiscard]] const T* data() const {
    return reinterpret_cast<const T*>(storage_.data());
  }
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }

  void fill(T value) {
    T* p = data();
    for (std::size_t i = 0; i < count_; ++i) {
      p[i] = value;
    }
  }

  /// Return the storage to the pool now (the handle becomes empty).
  void release();

 private:
  friend class ScratchPool;
  Scratch(ScratchPool* pool, std::vector<std::byte>&& storage,
          std::size_t count)
      : pool_(pool), storage_(std::move(storage)), count_(count) {}

  void swap(Scratch& other) noexcept {
    std::swap(pool_, other.pool_);
    std::swap(storage_, other.storage_);
    std::swap(count_, other.count_);
  }

  ScratchPool* pool_ = nullptr;
  std::vector<std::byte> storage_;
  std::size_t count_ = 0;
};

class ScratchPool {
 public:
  /// Free buffers retained beyond this count are dropped (smallest first)
  /// so one giant transient phase cannot pin memory forever.
  static constexpr std::size_t kMaxFreeBuffers = 16;

  ScratchPool() = default;
  ScratchPool(const ScratchPool&) = delete;
  ScratchPool& operator=(const ScratchPool&) = delete;

  /// The calling thread's pool. One per lane: the caller thread and every
  /// runtime::ThreadPool worker each get their own instance, destroyed at
  /// thread exit.
  static ScratchPool& local();

  /// Check out `count` elements of T (contents uninitialized).
  template <typename T>
  [[nodiscard]] Scratch<T> acquire(std::size_t count) {
    return Scratch<T>(this, take(count * sizeof(T)), count);
  }

  /// Buffers currently checked out.
  [[nodiscard]] std::size_t outstanding() const { return outstanding_; }
  /// Free buffers waiting for reuse.
  [[nodiscard]] std::size_t free_buffers() const { return free_.size(); }
  /// Checkouts served without touching the allocator / served by it.
  [[nodiscard]] std::uint64_t reuses() const { return reuses_; }
  [[nodiscard]] std::uint64_t allocations() const { return allocations_; }

  /// Drop every free buffer (outstanding checkouts are unaffected).
  void trim() { free_.clear(); }

 private:
  template <typename T>
  friend class Scratch;

  std::vector<std::byte> take(std::size_t bytes);
  void give_back(std::vector<std::byte>&& storage);

  std::vector<std::vector<std::byte>> free_;
  std::size_t outstanding_ = 0;
  std::uint64_t reuses_ = 0;
  std::uint64_t allocations_ = 0;
};

template <typename T>
void Scratch<T>::release() {
  if (pool_ != nullptr) {
    pool_->give_back(std::move(storage_));
    pool_ = nullptr;
  }
  storage_.clear();
  count_ = 0;
}

}  // namespace iprune::util
