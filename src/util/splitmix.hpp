#pragma once
// The project's single splitmix64 implementation.
//
// splitmix64 is the seed-expansion workhorse: Rng's constructor expands a
// user seed into xoshiro256++ state with it, the NVM CorruptionModel draws
// its geometric fault-skip stream from it, and the fleet orchestrator
// derives per-device seed material from one fleet seed with it. All three
// must stay bit-identical forever (replays, golden tests and corruption
// streams are pinned to the exact output sequence), so they share this one
// header-inline definition, itself pinned by tests/util/splitmix_test.cpp.

#include <cstdint>

namespace iprune::util {

/// Advance `state` by the 64-bit golden gamma and return the next mixed
/// output (Steele et al., "Fast splittable pseudorandom number
/// generators"). Every distinct starting state yields an independent,
/// well-distributed stream.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// One-shot mix of (seed, index): the `index`-th output of the stream
/// seeded by `seed`, without carrying the intermediate state around.
/// Fleet seed derivation uses this to give device i of a fleet its own
/// independent seed material.
inline std::uint64_t splitmix64_at(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t state = seed + index * 0x9E3779B97F4A7C15ull;
  return splitmix64(state);
}

}  // namespace iprune::util
