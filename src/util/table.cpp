#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace iprune::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string text) {
  if (rows_.empty()) {
    rows_.emplace_back();
  }
  rows_.back().push_back(std::move(text));
  return *this;
}

Table& Table::cell(double value, int precision) {
  return cell(format(value, precision));
}

Table& Table::cell(std::size_t value) {
  return cell(std::to_string(value));
}

Table& Table::cell(long long value) {
  return cell(std::to_string(value));
}

std::string Table::format(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

std::string Table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& text = c < cells.size() ? cells[c] : std::string();
      out << ' ' << text;
      out << std::string(widths[c] - std::min(widths[c], text.size()), ' ');
      out << " |";
    }
    out << '\n';
  };

  emit_row(headers_);
  out << '|';
  for (const std::size_t w : widths) {
    out << std::string(w + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& r : rows_) {
    emit_row(r);
  }
  return out.str();
}

void Table::print() const {
  std::fputs(str().c_str(), stdout);
}

}  // namespace iprune::util
