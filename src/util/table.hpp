#pragma once
// ASCII table rendering for benchmark harnesses.
//
// Every bench binary reproduces a paper table/figure as a plain-text table;
// this helper keeps the formatting consistent and diff-friendly.

#include <string>
#include <vector>

namespace iprune::util {

/// Column-aligned ASCII table. Cells are strings; numeric helpers format
/// with fixed precision so bench output is stable.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Start a new row. Subsequent add_cell calls fill it left to right.
  Table& row();

  Table& cell(std::string text);
  Table& cell(double value, int precision = 2);
  Table& cell(std::size_t value);
  Table& cell(long long value);

  /// Render with a header rule and column padding.
  [[nodiscard]] std::string str() const;

  /// Render and write to stdout.
  void print() const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  static std::string format(double value, int precision);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace iprune::util
