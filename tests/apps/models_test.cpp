// Architecture checks against paper Table II: layer inventories, 16-bit
// model-size budgets, and the NVM fit of each deployed application.

#include <gtest/gtest.h>

#include "apps/models.hpp"
#include "apps/workloads.hpp"
#include "engine/lowering.hpp"

namespace iprune::apps {
namespace {

struct LayerCensus {
  std::size_t conv = 0, pool = 0, fc = 0;
};

LayerCensus census(const nn::Graph& graph) {
  LayerCensus c;
  for (nn::NodeId id = 1; id < graph.node_count(); ++id) {
    switch (graph.layer(id).kind()) {
      case nn::LayerKind::kConv2d:
        ++c.conv;
        break;
      case nn::LayerKind::kMaxPool:
        ++c.pool;
        break;
      case nn::LayerKind::kDense:
        ++c.fc;
        break;
      default:
        break;
    }
  }
  return c;
}

TEST(Models, SqnMatchesTableII) {
  util::Rng rng(1);
  nn::Graph g = build_sqn(rng);
  const LayerCensus c = census(g);
  EXPECT_EQ(c.conv, 11u) << "paper: CONV x 11";
  EXPECT_EQ(c.pool, 2u) << "paper: POOL x 2 (plus the global-avg head)";
  EXPECT_EQ(c.fc, 0u);
  EXPECT_EQ(g.node_shape(g.output()), (nn::Shape{10}));
  EXPECT_EQ(g.input_shape(), (nn::Shape{3, 32, 32}));
}

TEST(Models, HarMatchesTableII) {
  util::Rng rng(2);
  nn::Graph g = build_har(rng);
  const LayerCensus c = census(g);
  EXPECT_EQ(c.conv, 3u) << "paper: CONV x 3";
  EXPECT_EQ(c.pool, 3u) << "paper: POOL x 3";
  EXPECT_EQ(c.fc, 1u) << "paper: FC x 1";
  EXPECT_EQ(g.node_shape(g.output()), (nn::Shape{6}));
}

TEST(Models, CksMatchesTableII) {
  util::Rng rng(3);
  nn::Graph g = build_cks(rng);
  const LayerCensus c = census(g);
  EXPECT_EQ(c.conv, 2u) << "paper: CONV x 2";
  EXPECT_EQ(c.fc, 3u) << "paper: FC x 3";
  EXPECT_EQ(g.node_shape(g.output()), (nn::Shape{10}));
}

TEST(Models, SixteenBitSizesNearPaperBudgets) {
  // Paper Table II: SQN 147 KB, HAR 28 KB, CKS 131 KB. Our scaled models
  // must land within a factor ~2 and fit the NVM together with buffers.
  util::Rng rng(4);
  nn::Graph sqn = build_sqn(rng);
  nn::Graph har = build_har(rng);
  nn::Graph cks = build_cks(rng);
  const auto kb = [](nn::Graph& g) {
    return static_cast<double>(g.parameter_count()) * 2.0 / 1024.0;
  };
  EXPECT_GT(kb(sqn), 147.0 / 2.5);
  EXPECT_LT(kb(sqn), 147.0 * 1.2);
  EXPECT_GT(kb(har), 28.0 / 2.5);
  EXPECT_LT(kb(har), 28.0 * 1.2);
  EXPECT_GT(kb(cks), 131.0 / 2.5);
  EXPECT_LT(kb(cks), 131.0 * 1.2);
}

TEST(Models, ForwardShapesConsistent) {
  util::Rng rng(5);
  nn::Graph sqn = build_sqn(rng);
  EXPECT_EQ(sqn.forward(nn::Tensor({2, 3, 32, 32})).shape(),
            (nn::Shape{2, 10}));
  nn::Graph har = build_har(rng);
  EXPECT_EQ(har.forward(nn::Tensor({2, 3, 1, 128})).shape(),
            (nn::Shape{2, 6}));
  nn::Graph cks = build_cks(rng);
  EXPECT_EQ(cks.forward(nn::Tensor({2, 1, 49, 10})).shape(),
            (nn::Shape{2, 10}));
}

TEST(Models, AllLayersAreLowerable) {
  // Every model must lower into the default engine/VM configuration.
  for (const WorkloadId id : all_workloads()) {
    util::Rng rng(6);
    Workload w = make_workload(id);
    EXPECT_NO_THROW({
      const auto layers = engine::prunable_layers(
          w.graph, w.prune.engine, w.prune.backend.device.memory);
      EXPECT_FALSE(layers.empty());
    }) << w.name;
  }
}

TEST(Workloads, RegistryIsConsistent) {
  EXPECT_EQ(all_workloads().size(), 3u);
  EXPECT_STREQ(workload_name(WorkloadId::kSqn), "SQN");
  EXPECT_STREQ(workload_task(WorkloadId::kHar), "Human Activity Detection");
  for (const WorkloadId id : all_workloads()) {
    const Workload w = make_workload(id);
    EXPECT_EQ(w.name, workload_name(id));
    EXPECT_GT(w.train.size(), 0u);
    EXPECT_GT(w.val.size(), 0u);
    EXPECT_EQ(w.train.sample_shape(), w.val.sample_shape());
    EXPECT_EQ(w.train.sample_shape(), w.graph.input_shape());
    // Paper defaults.
    EXPECT_DOUBLE_EQ(w.prune.epsilon, 0.01);
    EXPECT_DOUBLE_EQ(w.prune.gamma_hat, 0.40);
    EXPECT_EQ(w.prune.strikes_allowed, 2u);
  }
}

TEST(Workloads, DiversityOrderingSqnLowCksHigh) {
  // Table II: SQN has low diversity of per-layer accelerator outputs, CKS
  // high. Measure as max/min ratio across prunable layers.
  auto diversity = [](WorkloadId id) {
    Workload w = make_workload(id);
    const auto layers = engine::prunable_layers(
        w.graph, w.prune.engine, w.prune.backend.device.memory);
    std::size_t lo = SIZE_MAX, hi = 0;
    for (const auto& l : layers) {
      lo = std::min(lo, l.acc_outputs());
      hi = std::max(hi, l.acc_outputs());
    }
    return static_cast<double>(hi) / static_cast<double>(lo);
  };
  EXPECT_GT(diversity(WorkloadId::kCks), diversity(WorkloadId::kSqn));
}

TEST(Workloads, DeterministicConstruction) {
  const Workload a = make_workload(WorkloadId::kHar);
  const Workload b = make_workload(WorkloadId::kHar);
  EXPECT_TRUE(a.train.inputs.equals(b.train.inputs));
  EXPECT_EQ(a.train.labels, b.train.labels);
}

}  // namespace
}  // namespace iprune::apps
