#include <gtest/gtest.h>

#include <memory>

#include "baselines/eprune.hpp"
#include "baselines/oneshot.hpp"
#include "nn/activation.hpp"
#include "nn/dense.hpp"
#include "nn/trainer.hpp"

namespace iprune::baselines {
namespace {

std::vector<core::LayerStats> make_stats() {
  // Layer 0: high energy per weight; layer 1: low energy per weight.
  std::vector<core::LayerStats> stats(2);
  stats[0].index = 0;
  stats[0].alive_weights = 1000;
  stats[0].acc_outputs = 100;
  stats[0].energy_j = 10e-3;
  stats[1].index = 1;
  stats[1].alive_weights = 1000;
  stats[1].acc_outputs = 5000;
  stats[1].energy_j = 1e-3;
  return stats;
}

TEST(EPrune, AllocatesProportionallyToEnergy) {
  EPruneAllocator alloc;
  util::Rng rng(1);
  const auto ratios = alloc.allocate(make_stats(), 0.2, rng);
  ASSERT_EQ(ratios.size(), 2u);
  EXPECT_GT(ratios[0], ratios[1]) << "higher-energy layer pruned harder";
  // Budget respected: sum gamma_i * k_i = 0.2 * 2000.
  EXPECT_NEAR(ratios[0] * 1000 + ratios[1] * 1000, 400.0, 1.0);
}

TEST(EPrune, IgnoresAcceleratorOutputs) {
  // Unlike iPrune, ePrune's allocation must key on energy, not on
  // accelerator outputs: layer 1 has 50x the outputs but lower energy.
  EPruneAllocator alloc;
  util::Rng rng(2);
  const auto ratios = alloc.allocate(make_stats(), 0.2, rng);
  EXPECT_GT(ratios[0], ratios[1]);
}

TEST(EPrune, FixedOverallRatio) {
  EPruneAllocator alloc;
  EXPECT_DOUBLE_EQ(alloc.overall_ratio(make_stats(), 0.4), 0.2);
  EXPECT_STREQ(alloc.name(), "ePrune");
}

TEST(Uniform, SpreadsEvenly) {
  UniformAllocator alloc;
  util::Rng rng(3);
  const auto ratios = alloc.allocate(make_stats(), 0.3, rng);
  EXPECT_NEAR(ratios[0], ratios[1], 1e-9);
  EXPECT_NEAR(ratios[0], 0.3, 1e-9);  // allocate() receives Γ directly
}

TEST(Random, ProducesValidBudgetedRatios) {
  RandomAllocator alloc;
  util::Rng rng(4);
  const auto ratios = alloc.allocate(make_stats(), 0.2, rng);
  EXPECT_NEAR(ratios[0] * 1000 + ratios[1] * 1000, 400.0, 1.0);
  for (const double r : ratios) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 0.5 + 1e-12);
  }
}

struct MlpFixture {
  nn::Graph graph{nn::Shape{2}};
  nn::Tensor x;
  std::vector<int> y;
  std::vector<engine::PrunableLayer> layers;

  MlpFixture() {
    util::Rng rng(7);
    auto h = graph.add(std::make_unique<nn::Dense>("h", 2, 24, rng),
                       {graph.input()});
    auto r = graph.add(std::make_unique<nn::Relu>("r"), {h});
    auto o = graph.add(std::make_unique<nn::Dense>("o", 24, 2, rng), {r});
    graph.set_output(o);
    x = nn::Tensor({200, 2});
    y.resize(200);
    for (std::size_t i = 0; i < 200; ++i) {
      const bool cls = rng.bernoulli(0.5);
      x.at(i, 0) = (cls ? 1.0f : -1.0f) +
                   static_cast<float>(rng.normal(0, 0.3));
      x.at(i, 1) = static_cast<float>(rng.normal(0, 0.3));
      y[i] = cls ? 1 : 0;
    }
    nn::TrainConfig tc;
    tc.epochs = 10;
    nn::Trainer(graph).train(x, y, tc);
    layers = engine::prunable_layers(graph, engine::EngineConfig{},
                                     device::MemoryConfig{});
  }
};

TEST(OneShot, PrunesAndRetrains) {
  MlpFixture f;
  nn::TrainConfig retrain;
  retrain.epochs = 8;
  const OneShotResult result =
      one_shot_prune(f.graph, f.layers, 0.4, core::Granularity::kBlock,
                     f.x, f.y, f.x, f.y, retrain);
  EXPECT_LT(result.alive_weights, 24u * 2u + 2u * 24u);
  EXPECT_GE(result.accuracy_after_retrain,
            result.accuracy_before_retrain - 1e-9);
  EXPECT_GT(result.accuracy_after_retrain, 0.8);
}

TEST(OneShot, PrunedWeightsStayZeroThroughRetraining) {
  MlpFixture f;
  nn::TrainConfig retrain;
  retrain.epochs = 5;
  (void)one_shot_prune(f.graph, f.layers, 0.5, core::Granularity::kFine,
                       f.x, f.y, f.x, f.y, retrain);
  for (const auto& layer : f.layers) {
    for (std::size_t i = 0; i < layer.weight->numel(); ++i) {
      if ((*layer.mask)[i] == 0.0f) {
        EXPECT_EQ((*layer.weight)[i], 0.0f);
      }
    }
  }
}

}  // namespace
}  // namespace iprune::baselines
