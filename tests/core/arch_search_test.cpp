#include "core/arch_search.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "nn/activation.hpp"
#include "nn/dense.hpp"

namespace iprune::core {
namespace {

ArchCandidate make_candidate(double accuracy, std::size_t outputs) {
  ArchCandidate c;
  c.accuracy = accuracy;
  c.acc_outputs = outputs;
  return c;
}

TEST(Pareto, DominanceRules) {
  const ArchCandidate good = make_candidate(0.9, 100);
  EXPECT_TRUE(good.dominates(make_candidate(0.8, 100)));
  EXPECT_TRUE(good.dominates(make_candidate(0.9, 200)));
  EXPECT_TRUE(good.dominates(make_candidate(0.8, 200)));
  EXPECT_FALSE(good.dominates(make_candidate(0.95, 50)));
  EXPECT_FALSE(good.dominates(make_candidate(0.95, 200)));  // trade-off
  EXPECT_FALSE(good.dominates(make_candidate(0.9, 100)));   // equal
}

TEST(Pareto, InsertKeepsOnlyNonDominated) {
  std::vector<ArchCandidate> archive;
  EXPECT_TRUE(pareto_insert(archive, make_candidate(0.8, 100)));
  EXPECT_TRUE(pareto_insert(archive, make_candidate(0.9, 200)));  // trade-off
  EXPECT_EQ(archive.size(), 2u);
  // Dominated candidate rejected.
  EXPECT_FALSE(pareto_insert(archive, make_candidate(0.7, 150)));
  EXPECT_EQ(archive.size(), 2u);
  // Dominating candidate evicts both.
  EXPECT_TRUE(pareto_insert(archive, make_candidate(0.95, 50)));
  EXPECT_EQ(archive.size(), 1u);
}

struct SearchFixture {
  data::Dataset train, val;

  SearchFixture() {
    util::Rng rng(5);
    auto fill = [&](data::Dataset& d, std::size_t count) {
      d.num_classes = 2;
      d.inputs = nn::Tensor({count, 4});
      d.labels.resize(count);
      for (std::size_t i = 0; i < count; ++i) {
        const bool cls = rng.bernoulli(0.5);
        for (std::size_t k = 0; k < 4; ++k) {
          d.inputs.at(i, k) = static_cast<float>(
              (cls ? 1.0 : -1.0) * (k < 2 ? 1.0 : 0.1) +
              rng.normal(0, 0.3));
        }
        d.labels[i] = cls ? 1 : 0;
      }
    };
    fill(train, 200);
    fill(val, 100);
  }

  static nn::Graph build(const std::vector<std::size_t>& widths,
                         util::Rng& rng) {
    nn::Graph g({4});
    auto h = g.add(std::make_unique<nn::Dense>("h", 4, widths.at(0), rng),
                   {g.input()});
    auto r = g.add(std::make_unique<nn::Relu>("r"), {h});
    auto o = g.add(std::make_unique<nn::Dense>("o", widths.at(0), 2, rng),
                   {r});
    g.set_output(o);
    return g;
  }

  ArchSearchConfig config() const {
    ArchSearchConfig cfg;
    cfg.min_widths = {4};
    cfg.max_widths = {32};
    cfg.evaluations = 8;
    cfg.initial_random = 3;
    cfg.proxy_training.epochs = 6;
    return cfg;
  }
};

TEST(ArchSearch, FindsNonEmptyParetoFront) {
  SearchFixture f;
  const ArchSearchResult result =
      search_architectures(&SearchFixture::build, f.config(), f.train,
                           f.val);
  EXPECT_EQ(result.evaluated, 8u);
  ASSERT_FALSE(result.pareto_front.empty());
  // Front sorted by ascending accelerator outputs and mutually
  // non-dominated.
  for (std::size_t i = 1; i < result.pareto_front.size(); ++i) {
    EXPECT_GE(result.pareto_front[i].acc_outputs,
              result.pareto_front[i - 1].acc_outputs);
    EXPECT_FALSE(result.pareto_front[i].dominates(
        result.pareto_front[i - 1]));
    EXPECT_FALSE(result.pareto_front[i - 1].dominates(
        result.pareto_front[i]));
  }
  // Every member trains above chance.
  for (const ArchCandidate& c : result.pareto_front) {
    EXPECT_GT(c.accuracy, 0.6);
    EXPECT_GT(c.acc_outputs, 0u);
    EXPECT_GE(c.widths.at(0), 4u);
    EXPECT_LE(c.widths.at(0), 32u);
  }
}

TEST(ArchSearch, DeterministicGivenSeed) {
  SearchFixture f;
  const auto a =
      search_architectures(&SearchFixture::build, f.config(), f.train,
                           f.val);
  const auto b =
      search_architectures(&SearchFixture::build, f.config(), f.train,
                           f.val);
  ASSERT_EQ(a.pareto_front.size(), b.pareto_front.size());
  for (std::size_t i = 0; i < a.pareto_front.size(); ++i) {
    EXPECT_EQ(a.pareto_front[i].widths, b.pareto_front[i].widths);
    EXPECT_DOUBLE_EQ(a.pareto_front[i].accuracy,
                     b.pareto_front[i].accuracy);
  }
}

TEST(ArchSearch, InfeasibleCandidatesAreSkipped) {
  SearchFixture f;
  auto picky_builder = [](const std::vector<std::size_t>& widths,
                          util::Rng& rng) -> nn::Graph {
    if (widths.at(0) % 2 == 1) {
      throw std::runtime_error("odd widths unsupported");
    }
    return SearchFixture::build(widths, rng);
  };
  const auto result =
      search_architectures(picky_builder, f.config(), f.train, f.val);
  EXPECT_GT(result.infeasible, 0u);
  for (const ArchCandidate& c : result.pareto_front) {
    EXPECT_EQ(c.widths.at(0) % 2, 0u);
  }
}

TEST(ArchSearch, RejectsBadBounds) {
  SearchFixture f;
  ArchSearchConfig cfg = f.config();
  cfg.max_widths = {2};  // max < min
  EXPECT_THROW(search_architectures(&SearchFixture::build, cfg, f.train,
                                    f.val),
               std::invalid_argument);
  cfg.min_widths = {};
  cfg.max_widths = {};
  EXPECT_THROW(search_architectures(&SearchFixture::build, cfg, f.train,
                                    f.val),
               std::invalid_argument);
}

}  // namespace
}  // namespace iprune::core
