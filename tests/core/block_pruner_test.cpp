#include "core/block_pruner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/dense.hpp"
#include "nn/graph.hpp"

namespace iprune::core {
namespace {

struct Fixture {
  nn::Graph graph;
  std::vector<engine::PrunableLayer> layers;

  explicit Fixture(std::uint64_t seed, std::size_t out = 16,
                   std::size_t in = 48)
      : graph(nn::Shape{in}) {
    util::Rng rng(seed);
    auto fc = graph.add(std::make_unique<nn::Dense>("fc", in, out, rng),
                        {graph.input()});
    graph.set_output(fc);
    layers = engine::prunable_layers(graph, engine::EngineConfig{},
                                     device::MemoryConfig{});
  }
  engine::PrunableLayer& layer() { return layers.at(0); }
};

TEST(BlockRms, MatchesManualComputation) {
  Fixture f(1);
  const auto& plan = f.layer().plan;
  const nn::Tensor& w = *f.layer().weight;
  double sum_sq = 0.0;
  for (std::size_t r = 0; r < plan.rows_in_tile(0); ++r) {
    for (std::size_t kk = 0; kk < plan.k_in_tile(0); ++kk) {
      sum_sq += static_cast<double>(w.at(r, kk)) * w.at(r, kk);
    }
  }
  const double expected = std::sqrt(
      sum_sq /
      static_cast<double>(plan.rows_in_tile(0) * plan.k_in_tile(0)));
  EXPECT_NEAR(block_rms(f.layer(), 0, 0), expected, 1e-9);
}

TEST(BlockPrune, RemovesLowestRmsBlocksFirst) {
  Fixture f(2);
  const auto& plan = f.layer().plan;
  // Make block (0,0) tiny and block (1,1) huge.
  for (std::size_t r = 0; r < plan.br; ++r) {
    for (std::size_t kk = 0; kk < plan.bk; ++kk) {
      f.layer().weight->at(r, kk) = 1e-4f;
      f.layer().weight->at(plan.br + r, plan.bk + kk) = 5.0f;
    }
  }
  const std::size_t block_weights = plan.br * plan.bk;
  const std::size_t removed = prune_layer(
      f.layer(),
      static_cast<double>(block_weights) /
          static_cast<double>(f.layer().total_weights()),
      Granularity::kBlock);
  EXPECT_EQ(removed, block_weights);
  const engine::BlockMask bm = f.layer().block_mask();
  EXPECT_FALSE(bm.alive(0, 0));
  EXPECT_TRUE(bm.alive(1, 1));
}

TEST(BlockPrune, ZeroesWeightsAndMaskTogether) {
  Fixture f(3);
  (void)prune_layer(f.layer(), 0.25, Granularity::kBlock);
  const nn::Tensor& w = *f.layer().weight;
  const nn::Tensor& m = *f.layer().mask;
  for (std::size_t i = 0; i < w.numel(); ++i) {
    if (m[i] == 0.0f) {
      EXPECT_EQ(w[i], 0.0f);
    }
  }
}

TEST(BlockPrune, ReducesAcceleratorOutputs) {
  Fixture f(4);
  const std::size_t before = f.layer().acc_outputs();
  (void)prune_layer(f.layer(), 0.5, Granularity::kBlock);
  EXPECT_LT(f.layer().acc_outputs(), before);
}

TEST(FinePrune, RemovesExactCountBySmallestMagnitude) {
  Fixture f(5);
  nn::Tensor& w = *f.layer().weight;
  w.fill(1.0f);
  w[0] = 0.001f;
  w[1] = 0.002f;
  const std::size_t removed = prune_layer(
      f.layer(), 2.0 / static_cast<double>(w.numel()), Granularity::kFine);
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(w[0], 0.0f);
  EXPECT_EQ(w[1], 0.0f);
  EXPECT_EQ(f.layer().alive_weights(), w.numel() - 2);
}

TEST(FinePrune, DoesNotEliminateWholeBlocks) {
  // Fine-grained pruning at moderate ratios leaves blocks partially alive,
  // so accelerator outputs do NOT drop — the paper's guideline-3 argument.
  Fixture f(6);
  const std::size_t before = f.layer().acc_outputs();
  (void)prune_layer(f.layer(), 0.3, Granularity::kFine);
  EXPECT_EQ(f.layer().acc_outputs(), before);
}

TEST(ChannelPrune, RemovesWholeRows) {
  Fixture f(7);
  nn::Tensor& w = *f.layer().weight;
  // Make row 3 clearly the smallest.
  for (std::size_t kk = 0; kk < w.dim(1); ++kk) {
    w.at(3, kk) = 1e-5f;
  }
  const std::size_t k = w.dim(1);
  (void)prune_layer(f.layer(),
                    static_cast<double>(k) / static_cast<double>(w.numel()),
                    Granularity::kChannel);
  for (std::size_t kk = 0; kk < k; ++kk) {
    EXPECT_EQ(f.layer().mask->at(3, kk), 0.0f);
  }
}

TEST(PruneLayer, ZeroAndTinyRatiosAreNoOps) {
  Fixture f(8);
  EXPECT_EQ(prune_layer(f.layer(), 0.0, Granularity::kBlock), 0u);
  EXPECT_EQ(prune_layer(f.layer(), -1.0, Granularity::kBlock), 0u);
  EXPECT_EQ(f.layer().alive_weights(), f.layer().total_weights());
}

TEST(PruneLayer, RepeatedPruningIsCumulative) {
  Fixture f(9);
  (void)prune_layer(f.layer(), 0.25, Granularity::kBlock);
  const std::size_t after_first = f.layer().alive_weights();
  (void)prune_layer(f.layer(), 0.5, Granularity::kBlock);
  EXPECT_LT(f.layer().alive_weights(), after_first);
}

class GranularitySweep : public ::testing::TestWithParam<Granularity> {};

TEST_P(GranularitySweep, RemovedCountApproximatesRatio) {
  Fixture f(10, 32, 96);
  const double ratio = 0.4;
  const std::size_t total = f.layer().total_weights();
  const std::size_t removed = prune_layer(f.layer(), ratio, GetParam());
  EXPECT_GE(removed, static_cast<std::size_t>(ratio * total * 0.9));
  // Coarse granularities overshoot by at most one unit (block/row).
  EXPECT_LE(removed, static_cast<std::size_t>(ratio * total) + 96u * 4u);
  EXPECT_EQ(f.layer().alive_weights(), total - removed);
}

INSTANTIATE_TEST_SUITE_P(All, GranularitySweep,
                         ::testing::Values(Granularity::kBlock,
                                           Granularity::kFine,
                                           Granularity::kChannel));

}  // namespace
}  // namespace iprune::core
