#include "core/compress.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace iprune::core {
namespace {

nn::Tensor random_matrix(std::size_t rows, std::size_t cols,
                         std::uint64_t seed) {
  util::Rng rng(seed);
  nn::Tensor w({rows, cols});
  for (std::size_t i = 0; i < w.numel(); ++i) {
    w[i] = static_cast<float>(rng.normal());
  }
  return w;
}

/// Matrix with exact rank `r` (product of two thin random factors).
nn::Tensor rank_r_matrix(std::size_t rows, std::size_t cols, std::size_t r,
                         std::uint64_t seed) {
  util::Rng rng(seed);
  nn::Tensor a({rows, r}), b({r, cols});
  for (std::size_t i = 0; i < a.numel(); ++i) {
    a[i] = static_cast<float>(rng.normal());
  }
  for (std::size_t i = 0; i < b.numel(); ++i) {
    b[i] = static_cast<float>(rng.normal());
  }
  nn::Tensor w({rows, cols});
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < r; ++k) {
        acc += static_cast<double>(a.at(i, k)) * b.at(k, j);
      }
      w.at(i, j) = static_cast<float>(acc);
    }
  }
  return w;
}

double relative_error(const nn::Tensor& a, const nn::Tensor& b) {
  double diff = 0.0, total = 0.0;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    diff += static_cast<double>(a[i] - b[i]) * (a[i] - b[i]);
    total += static_cast<double>(a[i]) * a[i];
  }
  return std::sqrt(diff / total);
}

TEST(Decompose, ExactRankMatrixRecoversNearPerfectly) {
  const nn::Tensor w = rank_r_matrix(20, 30, 3, 1);
  const Decomposition d = decompose_low_rank(w, 3);
  EXPECT_LT(d.relative_error, 1e-3);
  EXPECT_LT(relative_error(w, reconstruct(d)), 1e-3);
}

TEST(Decompose, ErrorDecreasesWithRank) {
  const nn::Tensor w = random_matrix(24, 36, 2);
  double prev = 1.0;
  for (const std::size_t rank : {1u, 4u, 8u, 16u, 24u}) {
    const double err = decompose_low_rank(w, rank).relative_error;
    EXPECT_LE(err, prev + 1e-9);
    prev = err;
  }
  // Full rank reconstructs exactly.
  EXPECT_LT(decompose_low_rank(w, 24).relative_error, 1e-4);
}

TEST(Decompose, FactorsHaveRequestedShapes) {
  const nn::Tensor w = random_matrix(10, 7, 3);
  const Decomposition d = decompose_low_rank(w, 4);
  EXPECT_EQ(d.u.shape(), (nn::Shape{10, 4}));
  EXPECT_EQ(d.v.shape(), (nn::Shape{4, 7}));
}

TEST(Decompose, RejectsInvalidRank) {
  const nn::Tensor w = random_matrix(5, 8, 4);
  EXPECT_THROW(decompose_low_rank(w, 0), std::invalid_argument);
  EXPECT_THROW(decompose_low_rank(w, 6), std::invalid_argument);
  EXPECT_THROW(decompose_low_rank(nn::Tensor({4}), 1),
               std::invalid_argument);
}

TEST(Decompose, DeterministicAcrossCalls) {
  const nn::Tensor w = random_matrix(12, 12, 5);
  const Decomposition a = decompose_low_rank(w, 5);
  const Decomposition b = decompose_low_rank(w, 5);
  EXPECT_TRUE(a.u.equals(b.u));
  EXPECT_TRUE(a.v.equals(b.v));
}

TEST(Decompose, ChooseRankFindsSmallestSufficient) {
  const nn::Tensor w = rank_r_matrix(16, 20, 4, 6);
  const std::size_t rank = choose_rank(w, 0.01);
  EXPECT_LE(rank, 5u);
  EXPECT_GE(rank, 3u);
}

TEST(DecompositionCost, FavorsSmallRanks) {
  const engine::EngineConfig cfg;
  const device::MemoryConfig mem;
  // CKS fc1-like: 3150 -> 16.
  const DecompositionCost cost = decomposition_cost(16, 3150, 8, cfg, mem);
  EXPECT_LT(cost.decomposed_acc_outputs, cost.original_acc_outputs);
  EXPECT_LT(cost.decomposed_weights, cost.original_weights);
}

TEST(DecompositionCost, FullRankCostsMore) {
  const engine::EngineConfig cfg;
  const device::MemoryConfig mem;
  // Decomposing at full rank adds a second layer: always worse.
  const DecompositionCost cost = decomposition_cost(16, 100, 16, cfg, mem);
  EXPECT_GT(cost.decomposed_acc_outputs, cost.original_acc_outputs);
}

TEST(WeightSharing, ReducesModelBytes) {
  nn::Tensor w = random_matrix(32, 32, 7);
  util::Rng rng(1);
  const WeightSharingResult result = share_weights(w, 16, rng);
  EXPECT_LT(result.shared_bytes, result.dense_bytes);
  EXPECT_EQ(result.codebook.size(), 16u);
}

TEST(WeightSharing, WeightsBecomeCodebookValues) {
  nn::Tensor w = random_matrix(16, 16, 8);
  util::Rng rng(2);
  const WeightSharingResult result = share_weights(w, 8, rng);
  for (std::size_t i = 0; i < w.numel(); ++i) {
    if (w[i] == 0.0f) {
      continue;
    }
    bool found = false;
    for (const float c : result.codebook) {
      found |= w[i] == c;
    }
    EXPECT_TRUE(found) << "weight " << i << " not on the codebook";
  }
}

TEST(WeightSharing, PreservesPrunedZeros) {
  nn::Tensor w = random_matrix(8, 8, 9);
  for (std::size_t i = 0; i < w.numel(); i += 2) {
    w[i] = 0.0f;
  }
  util::Rng rng(3);
  (void)share_weights(w, 4, rng);
  for (std::size_t i = 0; i < w.numel(); i += 2) {
    EXPECT_EQ(w[i], 0.0f);
  }
}

TEST(WeightSharing, MoreClustersLowerError) {
  util::Rng rng_a(4), rng_b(4);
  nn::Tensor w4 = random_matrix(32, 32, 10);
  nn::Tensor w64 = w4;
  const double mse4 = share_weights(w4, 4, rng_a).mse;
  const double mse64 = share_weights(w64, 64, rng_b).mse;
  EXPECT_LT(mse64, mse4);
}

TEST(WeightSharing, AllZeroTensorIsNoOp) {
  nn::Tensor w({4, 4});
  util::Rng rng(5);
  const WeightSharingResult result = share_weights(w, 8, rng);
  EXPECT_EQ(result.dense_bytes, 0u);
  EXPECT_EQ(w.count_nonzero(), 0u);
}

}  // namespace
}  // namespace iprune::core
