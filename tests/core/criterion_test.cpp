#include "core/criterion.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "nn/conv2d.hpp"
#include "nn/activation.hpp"
#include "nn/dense.hpp"

namespace iprune::core {
namespace {

nn::Graph two_layer_graph(util::Rng& rng) {
  nn::Graph g({2, 8, 8});
  auto conv = g.add(std::make_unique<nn::Conv2d>(
                        "conv",
                        nn::Conv2dSpec{.in_channels = 2, .out_channels = 8,
                                       .kernel_h = 3, .kernel_w = 3,
                                       .pad_h = 1, .pad_w = 1},
                        rng),
                    {g.input()});
  auto flat = g.add(std::make_unique<nn::Flatten>("flat"), {conv});
  auto fc = g.add(std::make_unique<nn::Dense>("fc", 8 * 64, 4, rng), {flat});
  g.set_output(fc);
  return g;
}

TEST(Criterion, CollectsStatsPerLayer) {
  util::Rng rng(1);
  nn::Graph g = two_layer_graph(rng);
  engine::EngineConfig cfg;
  auto layers = engine::prunable_layers(g, cfg, device::MemoryConfig{});
  const auto stats =
      collect_layer_stats(layers, device::DeviceConfig::msp430fr5994());
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "conv");
  EXPECT_EQ(stats[0].alive_weights, 8u * 18u);
  EXPECT_EQ(stats[0].acc_outputs, layers[0].acc_outputs());
  EXPECT_GT(stats[0].energy_j, 0.0);
  EXPECT_EQ(stats[0].sensitivity, 0.0);
  EXPECT_EQ(stats[1].index, 1u);
}

TEST(Criterion, EnergyDecreasesWithPruning) {
  util::Rng rng(2);
  nn::Graph g = two_layer_graph(rng);
  engine::EngineConfig cfg;
  auto layers = engine::prunable_layers(g, cfg, device::MemoryConfig{});
  const auto& plan = layers[0].plan;
  const device::DeviceConfig dev = device::DeviceConfig::msp430fr5994();

  const engine::BlockMask full(plan.row_tiles(), plan.k_tiles(), true);
  engine::BlockMask pruned(plan.row_tiles(), plan.k_tiles(), true);
  pruned.set(0, 0, false);
  EXPECT_LT(estimate_layer_energy(plan, pruned, dev),
            estimate_layer_energy(plan, full, dev));
}

TEST(Criterion, EnergyScalesWithDeviceCosts) {
  util::Rng rng(3);
  nn::Graph g = two_layer_graph(rng);
  engine::EngineConfig cfg;
  auto layers = engine::prunable_layers(g, cfg, device::MemoryConfig{});
  const auto& plan = layers[0].plan;
  const engine::BlockMask full(plan.row_tiles(), plan.k_tiles(), true);

  device::DeviceConfig cheap = device::DeviceConfig::msp430fr5994();
  device::DeviceConfig expensive = cheap;
  expensive.dma.read_us_per_byte *= 4.0;
  expensive.rails.nvm_read_w *= 2.0;
  EXPECT_GT(estimate_layer_energy(plan, full, expensive),
            estimate_layer_energy(plan, full, cheap));
}

TEST(Criterion, BiggerLayerCostsMoreEnergy) {
  util::Rng rng(4);
  nn::Graph g = two_layer_graph(rng);
  engine::EngineConfig cfg;
  auto layers = engine::prunable_layers(g, cfg, device::MemoryConfig{});
  const device::DeviceConfig dev = device::DeviceConfig::msp430fr5994();
  // conv does 8*64*18 = 9216 MACs; fc does 4*512 = 2048.
  const auto stats = collect_layer_stats(layers, dev);
  EXPECT_GT(stats[0].energy_j, stats[1].energy_j);
}

}  // namespace
}  // namespace iprune::core
