// End-to-end iterative pruning on a small trained model: the ε threshold,
// the second-chance rule, and the rollback-to-most-compact behaviour.

#include "core/pruner.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "nn/activation.hpp"
#include "nn/dense.hpp"

namespace iprune::core {
namespace {

struct Fixture {
  nn::Graph graph{nn::Shape{4}};
  nn::Tensor train_x, val_x;
  std::vector<int> train_y, val_y;

  Fixture() {
    util::Rng rng(11);
    auto h1 = graph.add(std::make_unique<nn::Dense>("h1", 4, 48, rng),
                        {graph.input()});
    auto r1 = graph.add(std::make_unique<nn::Relu>("r1"), {h1});
    auto h2 = graph.add(std::make_unique<nn::Dense>("h2", 48, 24, rng),
                        {r1});
    auto r2 = graph.add(std::make_unique<nn::Relu>("r2"), {h2});
    auto out = graph.add(std::make_unique<nn::Dense>("out", 24, 3, rng),
                         {r2});
    graph.set_output(out);

    auto fill = [&](nn::Tensor& x, std::vector<int>& y, std::size_t count) {
      x = nn::Tensor({count, 4});
      y.resize(count);
      for (std::size_t i = 0; i < count; ++i) {
        const int cls = static_cast<int>(rng.uniform_index(3));
        for (std::size_t d = 0; d < 4; ++d) {
          const double center = (d == static_cast<std::size_t>(cls)) ? 1.5
                                                                     : -0.5;
          x.at(i, d) = static_cast<float>(center + rng.normal(0, 0.4));
        }
        y[i] = cls;
      }
    };
    fill(train_x, train_y, 400);
    fill(val_x, val_y, 200);

    nn::TrainConfig tc;
    tc.epochs = 12;
    nn::Trainer(graph).train(train_x, train_y, tc);
  }

  PruneConfig config() const {
    PruneConfig cfg;
    cfg.epsilon = 0.02;
    cfg.max_iterations = 5;
    cfg.finetune.epochs = 3;
    cfg.sensitivity.max_samples = 200;
    return cfg;
  }
};

TEST(IterativePruner, PrunesWhileKeepingAccuracy) {
  Fixture f;
  IterativePruner pruner(f.config(), std::make_unique<IPruneAllocator>());
  const PruneOutcome outcome = pruner.run(f.graph, f.train_x, f.train_y,
                                          f.val_x, f.val_y);
  EXPECT_GT(outcome.baseline_accuracy, 0.9);
  EXPECT_GE(outcome.final_accuracy,
            outcome.baseline_accuracy - f.config().epsilon - 1e-9);
  // Real pruning happened.
  auto layers = engine::prunable_layers(f.graph, engine::EngineConfig{},
                                        device::MemoryConfig{});
  std::size_t alive = 0, total = 0;
  for (const auto& l : layers) {
    alive += l.alive_weights();
    total += l.total_weights();
  }
  EXPECT_LT(alive, total);
  EXPECT_EQ(alive, outcome.final_alive_weights);
}

TEST(IterativePruner, HistoryIsConsistent) {
  Fixture f;
  IterativePruner pruner(f.config(), std::make_unique<IPruneAllocator>());
  const PruneOutcome outcome = pruner.run(f.graph, f.train_x, f.train_y,
                                          f.val_x, f.val_y);
  ASSERT_FALSE(outcome.history.empty());
  for (const auto& rec : outcome.history) {
    EXPECT_GE(rec.gamma, 0.0);  // recovery-only rally iterations use 0
    EXPECT_LE(rec.gamma, 0.4 + 1e-9);
    if (rec.gamma > 0.0) {
      EXPECT_EQ(rec.layer_ratios.size(), 3u);
      EXPECT_EQ(rec.sensitivities.size(), 3u);
    }
    EXPECT_LE(rec.alive_weights, outcome.history.front().alive_weights);
  }
  // Strikes counted consistently with the records.
  std::size_t strikes = 0;
  for (const auto& rec : outcome.history) {
    strikes += rec.strike ? 1 : 0;
  }
  EXPECT_EQ(strikes, outcome.strikes);
}

TEST(IterativePruner, SecondChanceStopsAfterTwoStrikes) {
  Fixture f;
  // Impossible threshold: every iteration is a strike, so the loop must
  // stop after exactly strikes_allowed iterations and roll back fully.
  PruneConfig cfg = f.config();
  cfg.epsilon = -1.0;  // any drop (even zero) counts as a strike
  cfg.max_iterations = 10;
  IterativePruner pruner(cfg, std::make_unique<IPruneAllocator>());
  const PruneOutcome outcome = pruner.run(f.graph, f.train_x, f.train_y,
                                          f.val_x, f.val_y);
  EXPECT_EQ(outcome.history.size(), cfg.strikes_allowed);
  EXPECT_EQ(outcome.strikes, cfg.strikes_allowed);
  // Rolled back to the unpruned state.
  EXPECT_DOUBLE_EQ(outcome.final_accuracy, outcome.baseline_accuracy);
  auto layers = engine::prunable_layers(f.graph, engine::EngineConfig{},
                                        device::MemoryConfig{});
  for (const auto& l : layers) {
    EXPECT_EQ(l.alive_weights(), l.total_weights());
  }
}

TEST(IterativePruner, MaxIterationsBoundsTheLoop) {
  Fixture f;
  PruneConfig cfg = f.config();
  cfg.max_iterations = 2;
  cfg.epsilon = 1.0;  // never strikes
  IterativePruner pruner(cfg, std::make_unique<IPruneAllocator>());
  const PruneOutcome outcome = pruner.run(f.graph, f.train_x, f.train_y,
                                          f.val_x, f.val_y);
  EXPECT_EQ(outcome.history.size(), 2u);
}

TEST(IterativePruner, FinalStateMatchesReportedCriterion) {
  Fixture f;
  IterativePruner pruner(f.config(), std::make_unique<IPruneAllocator>());
  const PruneOutcome outcome = pruner.run(f.graph, f.train_x, f.train_y,
                                          f.val_x, f.val_y);
  auto layers = engine::prunable_layers(f.graph, engine::EngineConfig{},
                                        device::MemoryConfig{});
  std::size_t acc_outputs = 0, macs = 0;
  for (const auto& l : layers) {
    acc_outputs += l.acc_outputs();
    macs += l.macs();
  }
  EXPECT_EQ(acc_outputs, outcome.final_acc_outputs);
  EXPECT_EQ(macs, outcome.final_macs);
}

TEST(IterativePruner, NullAllocatorRejected) {
  Fixture f;
  EXPECT_THROW(IterativePruner(f.config(), nullptr), std::invalid_argument);
}

TEST(IterativePruner, GraphWithoutPrunableLayersRejected) {
  PruneConfig cfg;
  IterativePruner pruner(cfg, std::make_unique<IPruneAllocator>());
  nn::Graph g({4});
  auto flat = g.add(std::make_unique<nn::Flatten>("f"), {g.input()});
  g.set_output(flat);
  nn::Tensor x({4, 4});
  const std::vector<int> y = {0, 0, 0, 0};
  EXPECT_THROW(pruner.run(g, x, y, x, y), std::invalid_argument);
}

}  // namespace
}  // namespace iprune::core
