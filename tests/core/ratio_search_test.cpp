#include "core/ratio_search.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace iprune::core {
namespace {

std::vector<LayerStats> make_stats(
    std::initializer_list<std::tuple<std::size_t, std::size_t, double>>
        rows) {
  // (alive_weights, acc_outputs, sensitivity)
  std::vector<LayerStats> stats;
  std::size_t index = 0;
  for (const auto& [weights, outputs, sens] : rows) {
    LayerStats s;
    s.index = index;
    s.name = "layer" + std::to_string(index++);
    s.alive_weights = weights;
    s.total_weights = weights;
    s.acc_outputs = outputs;
    s.sensitivity = sens;
    s.energy_j = static_cast<double>(outputs) * 1e-9;
    stats.push_back(s);
  }
  return stats;
}

double budget_of(const std::vector<LayerStats>& stats,
                 const std::vector<double>& ratios) {
  double total = 0.0;
  for (std::size_t i = 0; i < stats.size(); ++i) {
    total += ratios[i] * static_cast<double>(stats[i].alive_weights);
  }
  return total;
}

double total_weights(const std::vector<LayerStats>& stats) {
  double total = 0.0;
  for (const auto& s : stats) {
    total += static_cast<double>(s.alive_weights);
  }
  return total;
}

TEST(ScaleToBudget, UniformPreferenceGivesUniformRatios) {
  const auto stats = make_stats({{100, 10, 0}, {300, 30, 0}});
  const auto ratios =
      scale_to_budget(stats, {1.0, 1.0}, 0.2, 0.9);
  EXPECT_NEAR(ratios[0], 0.2, 1e-9);
  EXPECT_NEAR(ratios[1], 0.2, 1e-9);
}

TEST(ScaleToBudget, MeetsBudgetExactlyWhenUncapped) {
  const auto stats = make_stats({{100, 10, 0}, {300, 30, 0}, {50, 5, 0}});
  const auto ratios = scale_to_budget(stats, {1.0, 2.0, 0.5}, 0.3, 0.9);
  EXPECT_NEAR(budget_of(stats, ratios), 0.3 * total_weights(stats), 1e-6);
}

TEST(ScaleToBudget, CapBindsAndRedistributes) {
  const auto stats = make_stats({{100, 10, 0}, {1000, 30, 0}});
  // Preference slams layer 0, which caps at 0.5; the remainder must land
  // on layer 1.
  const auto ratios = scale_to_budget(stats, {100.0, 1.0}, 0.2, 0.5);
  EXPECT_NEAR(ratios[0], 0.5, 1e-9);
  EXPECT_NEAR(budget_of(stats, ratios), 0.2 * total_weights(stats), 1e-6);
  EXPECT_GT(ratios[1], 0.0);
}

TEST(ScaleToBudget, AllRatiosWithinBounds) {
  const auto stats = make_stats({{10, 1, 0}, {20, 2, 0}, {30, 3, 0}});
  const auto ratios = scale_to_budget(stats, {5.0, 0.0, 1.0}, 0.4, 0.6);
  for (const double r : ratios) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 0.6 + 1e-12);
  }
}

TEST(IPruneOverallRatio, FollowsGuidelineOne) {
  // 4 layers; layer 2 has the most accelerator outputs. Sensitivity
  // ranking (desc): layer0 (.5), layer2 (.3), layer1 (.1), layer3 (.05)
  // -> layer2 has rank 2 -> Γ = 2 * Γ̂ / 4.
  const auto stats = make_stats({{100, 50, 0.5},
                                 {100, 40, 0.1},
                                 {100, 90, 0.3},
                                 {100, 10, 0.05}});
  IPruneAllocator alloc;
  EXPECT_NEAR(alloc.overall_ratio(stats, 0.4), 2.0 * 0.4 / 4.0, 1e-9);
}

TEST(IPruneOverallRatio, SensitiveHotLayerGivesSmallGamma) {
  // The hottest layer is also the most sensitive -> rank 1 -> Γ̂/n.
  const auto stats = make_stats({{100, 90, 0.9},
                                 {100, 10, 0.1},
                                 {100, 20, 0.0}});
  IPruneAllocator alloc;
  EXPECT_NEAR(alloc.overall_ratio(stats, 0.4), 0.4 / 3.0, 1e-9);
}

TEST(IPruneOverallRatio, InsensitiveHotLayerGivesLargeGamma) {
  const auto stats = make_stats({{100, 90, 0.0},
                                 {100, 10, 0.5},
                                 {100, 20, 0.3}});
  IPruneAllocator alloc;
  EXPECT_NEAR(alloc.overall_ratio(stats, 0.4), 0.4, 1e-9);
}

TEST(IPruneAllocate, MeetsBudget) {
  const auto stats = make_stats({{1000, 500, 0.1},
                                 {2000, 100, 0.0},
                                 {500, 900, 0.2}});
  IPruneAllocator alloc;
  util::Rng rng(1);
  const auto ratios = alloc.allocate(stats, 0.25, rng);
  EXPECT_NEAR(budget_of(stats, ratios), 0.25 * total_weights(stats),
              0.25 * total_weights(stats) * 0.02);
  for (const double r : ratios) {
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, alloc.annealing().max_layer_ratio + 1e-9);
  }
}

TEST(IPruneAllocate, PrefersHighOutputInsensitiveLayers) {
  // Layer 0: many outputs per weight, insensitive. Layer 1: few outputs,
  // sensitive. SA should prune layer 0 harder.
  const auto stats = make_stats({{1000, 5000, 0.0},
                                 {1000, 200, 0.5}});
  IPruneAllocator alloc;
  util::Rng rng(2);
  const auto ratios = alloc.allocate(stats, 0.2, rng);
  EXPECT_GT(ratios[0], ratios[1]);
}

TEST(IPruneAllocate, SuperlinearPenaltyProtectsSensitiveLayer) {
  // Layer 0 has the most outputs per weight but is highly sensitive; the
  // superlinear risk term must keep SA from slamming it to the cap even
  // though its output payoff is the largest.
  const auto stats = make_stats({{500, 5000, 0.60},
                                 {5000, 4000, 0.01}});
  IPruneAllocator alloc;
  util::Rng rng(3);
  const auto ratios = alloc.allocate(stats, 0.2, rng);
  EXPECT_LT(ratios[0], alloc.annealing().max_layer_ratio - 1e-9);
  EXPECT_GT(ratios[1], 0.0);
}

TEST(WPruneObjective, NameAndByteDrivenAllocation) {
  AnnealingConfig cfg;
  cfg.objective = AnnealingConfig::Objective::kNvmWriteBytes;
  IPruneAllocator wprune(cfg);
  EXPECT_STREQ(wprune.name(), "wPrune");

  // Layer 0 heavy in *bytes* (psum-heavy), layer 1 heavy in output count
  // alone: the byte objective must prefer pruning layer 0.
  auto stats = make_stats({{1000, 1000, 0.0}, {1000, 1200, 0.0}});
  stats[0].nvm_write_bytes = 50000;
  stats[1].nvm_write_bytes = 8000;
  util::Rng rng(7);
  const auto ratios = wprune.allocate(stats, 0.2, rng);
  EXPECT_GT(ratios[0], ratios[1]);
}

TEST(IPruneAllocate, DeterministicGivenSeed) {
  const auto stats = make_stats({{1000, 500, 0.1},
                                 {2000, 100, 0.0},
                                 {500, 900, 0.2}});
  IPruneAllocator alloc;
  util::Rng a(5), b(5);
  EXPECT_EQ(alloc.allocate(stats, 0.3, a), alloc.allocate(stats, 0.3, b));
}

TEST(IPruneAllocate, HandlesSingleLayerAndEmpty) {
  IPruneAllocator alloc;
  util::Rng rng(6);
  const auto one = make_stats({{100, 10, 0.1}});
  const auto ratios = alloc.allocate(one, 0.3, rng);
  ASSERT_EQ(ratios.size(), 1u);
  EXPECT_NEAR(ratios[0], 0.3, 1e-9);
  EXPECT_TRUE(alloc.allocate({}, 0.3, rng).empty());
  EXPECT_EQ(alloc.overall_ratio({}, 0.4), 0.0);
}

}  // namespace
}  // namespace iprune::core
