#include "core/sensitivity.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "nn/activation.hpp"
#include "nn/dense.hpp"
#include "nn/trainer.hpp"

namespace iprune::core {
namespace {

/// Trained two-layer MLP on separable blobs; layer "critical" carries all
/// of the signal, layer "redundant" is a wide over-parameterized block.
struct Fixture {
  nn::Graph graph{nn::Shape{2}};
  nn::Tensor x;
  std::vector<int> y;
  std::vector<engine::PrunableLayer> layers;

  Fixture() {
    util::Rng rng(3);
    auto h = graph.add(std::make_unique<nn::Dense>("hidden", 2, 32, rng),
                       {graph.input()});
    auto r = graph.add(std::make_unique<nn::Relu>("r"), {h});
    auto o = graph.add(std::make_unique<nn::Dense>("out", 32, 2, rng), {r});
    graph.set_output(o);

    x = nn::Tensor({300, 2});
    y.resize(300);
    for (std::size_t i = 0; i < 300; ++i) {
      const bool cls = rng.bernoulli(0.5);
      x.at(i, 0) =
          (cls ? 1.5f : -1.5f) + static_cast<float>(rng.normal(0, 0.3));
      x.at(i, 1) = static_cast<float>(rng.normal(0, 0.3));
      y[i] = cls ? 1 : 0;
    }
    nn::TrainConfig tc;
    tc.epochs = 15;
    nn::Trainer(graph).train(x, y, tc);
    layers = engine::prunable_layers(graph, engine::EngineConfig{},
                                     device::MemoryConfig{});
  }
};

TEST(Sensitivity, ProbeRestoresTheLayer) {
  Fixture f;
  const nn::Tensor before_w = *f.layers[0].weight;
  const nn::Tensor before_m = *f.layers[0].mask;
  nn::Trainer trainer(f.graph);
  const double baseline = trainer.evaluate(f.x, f.y).accuracy;

  SensitivityConfig cfg;
  cfg.probe_ratio = 0.5;
  (void)probe_layer_sensitivity(f.graph, f.layers[0], f.x, f.y, baseline,
                                cfg);
  EXPECT_TRUE(f.layers[0].weight->equals(before_w));
  EXPECT_TRUE(f.layers[0].mask->equals(before_m));
  EXPECT_NEAR(trainer.evaluate(f.x, f.y).accuracy, baseline, 1e-12);
}

TEST(Sensitivity, HeavyProbeHurtsMoreThanLightProbe) {
  Fixture f;
  nn::Trainer trainer(f.graph);
  const double baseline = trainer.evaluate(f.x, f.y).accuracy;
  SensitivityConfig light;
  light.probe_ratio = 0.05;
  SensitivityConfig heavy;
  heavy.probe_ratio = 0.95;
  const double light_drop = probe_layer_sensitivity(
      f.graph, f.layers[0], f.x, f.y, baseline, light);
  const double heavy_drop = probe_layer_sensitivity(
      f.graph, f.layers[0], f.x, f.y, baseline, heavy);
  EXPECT_GE(heavy_drop, light_drop);
  EXPECT_GT(heavy_drop, 0.05) << "removing ~all weights must hurt";
}

TEST(Sensitivity, DropsAreNonNegative) {
  Fixture f;
  SensitivityConfig cfg;
  const auto drops =
      analyze_sensitivities(f.graph, f.layers, f.x, f.y, cfg);
  ASSERT_EQ(drops.size(), f.layers.size());
  for (const double d : drops) {
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(Sensitivity, SampleCapLimitsWork) {
  Fixture f;
  SensitivityConfig cfg;
  cfg.max_samples = 10;  // must not crash or read out of range
  const auto drops =
      analyze_sensitivities(f.graph, f.layers, f.x, f.y, cfg);
  EXPECT_EQ(drops.size(), 2u);
}

TEST(Sensitivity, AnalysisLeavesModelUnchanged) {
  Fixture f;
  nn::Trainer trainer(f.graph);
  const double before = trainer.evaluate(f.x, f.y).accuracy;
  SensitivityConfig cfg;
  (void)analyze_sensitivities(f.graph, f.layers, f.x, f.y, cfg);
  EXPECT_NEAR(trainer.evaluate(f.x, f.y).accuracy, before, 1e-12);
}

}  // namespace
}  // namespace iprune::core
