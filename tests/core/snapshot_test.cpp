#include "core/snapshot.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "nn/dense.hpp"

namespace iprune::core {
namespace {

nn::Graph make_graph(std::uint64_t seed) {
  util::Rng rng(seed);
  nn::Graph g({3});
  auto fc = g.add(std::make_unique<nn::Dense>("fc", 3, 2, rng),
                  {g.input()});
  g.set_output(fc);
  return g;
}

TEST(Snapshot, RestoresValuesAndMasks) {
  nn::Graph g = make_graph(1);
  const GraphSnapshot snap = take_snapshot(g);

  auto& fc = dynamic_cast<nn::Dense&>(g.layer(1));
  const float original = fc.weight().at(0, 0);
  fc.weight().at(0, 0) = 99.0f;
  fc.weight_mask().at(1, 1) = 0.0f;

  restore_snapshot(g, snap);
  EXPECT_EQ(fc.weight().at(0, 0), original);
  EXPECT_EQ(fc.weight_mask().at(1, 1), 1.0f);
}

TEST(Snapshot, IndependentOfLaterMutation) {
  nn::Graph g = make_graph(2);
  auto& fc = dynamic_cast<nn::Dense&>(g.layer(1));
  fc.weight().at(0, 0) = 5.0f;
  const GraphSnapshot snap = take_snapshot(g);
  fc.weight().at(0, 0) = 7.0f;
  EXPECT_EQ(snap.values[0].at(0, 0), 5.0f);
}

TEST(Snapshot, RejectsForeignGraph) {
  nn::Graph a = make_graph(3);
  const GraphSnapshot snap = take_snapshot(a);

  util::Rng rng(4);
  nn::Graph b({3});
  auto fc1 = b.add(std::make_unique<nn::Dense>("fc1", 3, 2, rng),
                   {b.input()});
  auto fc2 = b.add(std::make_unique<nn::Dense>("fc2", 2, 2, rng), {fc1});
  b.set_output(fc2);
  EXPECT_THROW(restore_snapshot(b, snap), std::invalid_argument);
}

TEST(Snapshot, RestoredGraphComputesIdentically) {
  nn::Graph g = make_graph(5);
  nn::Tensor x({1, 3}, {1, 2, 3});
  const nn::Tensor before = g.forward(x);
  const GraphSnapshot snap = take_snapshot(g);
  auto& fc = dynamic_cast<nn::Dense&>(g.layer(1));
  fc.weight().fill(0.0f);
  restore_snapshot(g, snap);
  EXPECT_TRUE(g.forward(x).equals(before));
}

}  // namespace
}  // namespace iprune::core
