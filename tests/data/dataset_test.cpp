#include "data/dataset.hpp"

#include <gtest/gtest.h>

#include <set>

namespace iprune::data {
namespace {

Dataset make_dataset(std::size_t count) {
  Dataset d;
  d.num_classes = 3;
  d.inputs = nn::Tensor({count, 2});
  d.labels.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    d.inputs.at(i, 0) = static_cast<float>(i);
    d.inputs.at(i, 1) = static_cast<float>(i) * 10.0f;
    d.labels[i] = static_cast<int>(i % 3);
  }
  return d;
}

TEST(Dataset, SampleShapeDropsLeadingDim) {
  const Dataset d = make_dataset(5);
  EXPECT_EQ(d.sample_shape(), (nn::Shape{2}));
  EXPECT_EQ(d.size(), 5u);
}

TEST(Split, PartitionsAllSamples) {
  const Dataset d = make_dataset(100);
  util::Rng rng(1);
  const Split s = split_dataset(d, 0.8, rng);
  EXPECT_EQ(s.train.size(), 80u);
  EXPECT_EQ(s.val.size(), 20u);
  EXPECT_EQ(s.train.num_classes, 3u);
}

TEST(Split, KeepsInputLabelPairsTogether) {
  const Dataset d = make_dataset(50);
  util::Rng rng(2);
  const Split s = split_dataset(d, 0.5, rng);
  for (const Dataset* part : {&s.train, &s.val}) {
    for (std::size_t i = 0; i < part->size(); ++i) {
      const auto original = static_cast<std::size_t>(part->inputs.at(i, 0));
      EXPECT_EQ(part->labels[i], static_cast<int>(original % 3));
      EXPECT_FLOAT_EQ(part->inputs.at(i, 1),
                      static_cast<float>(original) * 10.0f);
    }
  }
}

TEST(Split, NoSampleAppearsTwice) {
  const Dataset d = make_dataset(40);
  util::Rng rng(3);
  const Split s = split_dataset(d, 0.6, rng);
  std::set<float> seen;
  for (const Dataset* part : {&s.train, &s.val}) {
    for (std::size_t i = 0; i < part->size(); ++i) {
      EXPECT_TRUE(seen.insert(part->inputs.at(i, 0)).second);
    }
  }
  EXPECT_EQ(seen.size(), 40u);
}

TEST(Split, RejectsDegenerateFractions) {
  const Dataset d = make_dataset(10);
  util::Rng rng(4);
  EXPECT_THROW(split_dataset(d, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(split_dataset(d, 1.0, rng), std::invalid_argument);
}

TEST(ClassHistogram, CountsPerClass) {
  const Dataset d = make_dataset(9);
  const auto hist = class_histogram(d);
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], 3u);
  EXPECT_EQ(hist[1], 3u);
  EXPECT_EQ(hist[2], 3u);
}

}  // namespace
}  // namespace iprune::data
