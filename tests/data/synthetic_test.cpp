#include "data/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace iprune::data {
namespace {

struct GeneratorCase {
  const char* name;
  Dataset (*make)(const SyntheticConfig&);
  nn::Shape sample_shape;
  std::size_t classes;
};

class SyntheticGenerators : public ::testing::TestWithParam<GeneratorCase> {};

TEST_P(SyntheticGenerators, ShapesAndLabels) {
  const GeneratorCase& c = GetParam();
  SyntheticConfig config;
  config.samples = 200;
  const Dataset d = c.make(config);
  EXPECT_EQ(d.size(), 200u);
  EXPECT_EQ(d.sample_shape(), c.sample_shape);
  EXPECT_EQ(d.num_classes, c.classes);
  for (const int label : d.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(static_cast<std::size_t>(label), c.classes);
  }
}

TEST_P(SyntheticGenerators, DeterministicForSameSeed) {
  const GeneratorCase& c = GetParam();
  SyntheticConfig config;
  config.samples = 50;
  const Dataset a = c.make(config);
  const Dataset b = c.make(config);
  EXPECT_TRUE(a.inputs.equals(b.inputs));
  EXPECT_EQ(a.labels, b.labels);
}

TEST_P(SyntheticGenerators, DifferentSeedsDiffer) {
  const GeneratorCase& c = GetParam();
  SyntheticConfig a_cfg;
  a_cfg.samples = 50;
  SyntheticConfig b_cfg = a_cfg;
  b_cfg.seed = a_cfg.seed + 1;
  const Dataset a = c.make(a_cfg);
  const Dataset b = c.make(b_cfg);
  EXPECT_FALSE(a.inputs.equals(b.inputs));
}

TEST_P(SyntheticGenerators, ClassesAreRoughlyBalanced) {
  const GeneratorCase& c = GetParam();
  SyntheticConfig config;
  config.samples = 2000;
  const Dataset d = c.make(config);
  const auto hist = class_histogram(d);
  const double expected =
      static_cast<double>(config.samples) / static_cast<double>(c.classes);
  for (const std::size_t count : hist) {
    EXPECT_GT(static_cast<double>(count), expected * 0.6);
    EXPECT_LT(static_cast<double>(count), expected * 1.4);
  }
}

TEST_P(SyntheticGenerators, ValuesAreFinite) {
  const GeneratorCase& c = GetParam();
  SyntheticConfig config;
  config.samples = 20;
  const Dataset d = c.make(config);
  for (std::size_t i = 0; i < d.inputs.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(d.inputs[i]));
  }
}

TEST_P(SyntheticGenerators, ClassesAreSeparatedAboveNoise) {
  // Same-class samples must be more similar than cross-class samples on
  // average — otherwise the task is unlearnable and the prune-retrain loop
  // cannot exercise accuracy recovery.
  const GeneratorCase& c = GetParam();
  SyntheticConfig config;
  config.samples = 300;
  config.noise = 0.1f;
  const Dataset d = c.make(config);
  const std::size_t elems = d.inputs.numel() / d.size();

  auto distance = [&](std::size_t i, std::size_t j) {
    double sum = 0.0;
    for (std::size_t e = 0; e < elems; ++e) {
      const double diff =
          d.inputs[i * elems + e] - d.inputs[j * elems + e];
      sum += diff * diff;
    }
    return sum;
  };

  double same = 0.0, cross = 0.0;
  std::size_t same_n = 0, cross_n = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    for (std::size_t j = i + 1; j < 100; ++j) {
      if (d.labels[i] == d.labels[j]) {
        same += distance(i, j);
        ++same_n;
      } else {
        cross += distance(i, j);
        ++cross_n;
      }
    }
  }
  ASSERT_GT(same_n, 0u);
  ASSERT_GT(cross_n, 0u);
  EXPECT_LT(same / static_cast<double>(same_n),
            0.8 * cross / static_cast<double>(cross_n));
}

INSTANTIATE_TEST_SUITE_P(
    All, SyntheticGenerators,
    ::testing::Values(
        GeneratorCase{"image", &make_image_dataset, {3, 32, 32}, 10},
        GeneratorCase{"har", &make_har_dataset, {3, 1, 128}, 6},
        GeneratorCase{"speech", &make_speech_dataset, {1, 49, 10}, 10}),
    [](const ::testing::TestParamInfo<GeneratorCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace iprune::data
