#include "device/crc16.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <string_view>

#include "engine/integrity.hpp"

namespace iprune::device {
namespace {

std::uint16_t crc_of(std::string_view text) {
  return crc16_ccitt(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

// Published CRC-16/CCITT-FALSE check values (poly 0x1021, init 0xFFFF,
// no reflection, no xorout) — the variant the MSP430 CRC module computes.
TEST(Crc16, PublishedCheckVectors) {
  EXPECT_EQ(crc_of("123456789"), 0x29B1);
  EXPECT_EQ(crc_of("A"), 0xB915);
  EXPECT_EQ(crc_of(""), 0xFFFF);  // init value: empty message
}

TEST(Crc16, StreamingMatchesOneShot) {
  const std::string_view text = "123456789";
  Crc16 crc;
  for (char c : text) {
    const std::uint8_t byte = static_cast<std::uint8_t>(c);
    crc.update(std::span<const std::uint8_t>(&byte, 1));
  }
  EXPECT_EQ(crc.value(), crc_of(text));
}

TEST(Crc16, SeededContinuationMatchesConcatenation) {
  const std::string_view head = "12345";
  const std::string_view tail = "6789";
  const std::uint16_t partial = crc_of(head);
  const std::uint16_t full = crc16_ccitt(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(tail.data()), tail.size()),
      partial);
  EXPECT_EQ(full, 0x29B1);
}

// Appending the CRC MSB-first makes the CRC of the extended message zero —
// the residue property the progress-record validation relies on.
TEST(Crc16, AppendedCrcYieldsZeroResidue) {
  std::array<std::uint8_t, 11> message = {'1', '2', '3', '4', '5', '6',
                                          '7', '8', '9', 0, 0};
  const std::uint16_t crc =
      crc16_ccitt(std::span<const std::uint8_t>(message.data(), 9));
  message[9] = static_cast<std::uint8_t>(crc >> 8);
  message[10] = static_cast<std::uint8_t>(crc);
  EXPECT_EQ(crc16_ccitt(std::span<const std::uint8_t>(message)), 0x0000);
}

TEST(Crc16, DetectsEverySingleBitFlipInARecord) {
  const auto record = engine::encode_progress_record(0xDEAD1234);
  ASSERT_TRUE(engine::decode_progress_record(record).has_value());
  for (std::size_t byte = 0; byte < record.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto flipped = record;
      flipped[byte] = static_cast<std::uint8_t>(flipped[byte] ^ (1u << bit));
      EXPECT_FALSE(engine::decode_progress_record(flipped).has_value())
          << "flip at byte " << byte << " bit " << bit << " undetected";
    }
  }
}

TEST(ProgressRecord, EncodeDecodeRoundTrip) {
  for (std::uint32_t counter : {0u, 1u, 255u, 65536u, 0xFFFFFFFFu}) {
    const auto record = engine::encode_progress_record(counter);
    const auto decoded = engine::decode_progress_record(record);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, counter);
  }
}

// Torn-write truncation at every byte offset of a record: a prefix of the
// new record over the old one must never validate as the new counter
// (the CRC tail arrives last, so partial writes are rejected), except the
// complete 6-byte write.
TEST(ProgressRecord, TornPrefixOverOldRecordNeverValidatesAsNew) {
  const auto old_record = engine::encode_progress_record(41);
  const auto new_record = engine::encode_progress_record(42);
  for (std::size_t keep = 0; keep < new_record.size(); ++keep) {
    auto torn = old_record;
    std::memcpy(torn.data(), new_record.data(), keep);
    const auto decoded = engine::decode_progress_record(torn);
    if (decoded.has_value()) {
      // A mixed record may accidentally validate, but never as the new
      // counter with a torn (incomplete) write.
      EXPECT_NE(*decoded, 42u) << "torn write of " << keep
                               << " bytes validated as the new record";
    }
  }
}

// The canonical 4-byte commit-record scenario from the issue: torn
// truncation at every byte offset of a 4-byte counter inside the record.
TEST(ProgressRecord, TornCounterOverZeroedSlotDetected) {
  const auto record = engine::encode_progress_record(7);
  for (std::size_t keep = 0; keep < record.size(); ++keep) {
    std::array<std::uint8_t, engine::kProgressRecordBytes> slot{};
    std::memcpy(slot.data(), record.data(), keep);
    const auto decoded = engine::decode_progress_record(slot);
    if (keep < record.size()) {
      // All-zero tail: only a fully landed record may decode to 7.
      if (decoded.has_value()) {
        EXPECT_NE(*decoded, 7u);
      }
    }
  }
  EXPECT_EQ(engine::decode_progress_record(record), 7u);
}

}  // namespace
}  // namespace iprune::device
