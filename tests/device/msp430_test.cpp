#include "device/msp430.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "power/supply.hpp"

namespace iprune::device {
namespace {

Msp430Device continuous_device() {
  return Msp430Device(DeviceConfig::msp430fr5994(),
                      power::SupplyPresets::continuous());
}

TEST(Msp430, DmaReadAdvancesClockByModelLatency) {
  Msp430Device dev = continuous_device();
  const DeviceConfig& cfg = dev.config();
  ASSERT_TRUE(dev.dma_read(100));
  EXPECT_DOUBLE_EQ(dev.now_us(),
                   cfg.dma.invocation_us + 100 * cfg.dma.read_us_per_byte);
  EXPECT_EQ(dev.stats().nvm_bytes_read, 100u);
  EXPECT_EQ(dev.stats().dma_commands, 1u);
}

TEST(Msp430, WriteLatencyTaggedAsNvmWrite) {
  Msp430Device dev = continuous_device();
  ASSERT_TRUE(dev.dma_write(64));
  EXPECT_GT(dev.stats().tag_us(CostTag::kNvmWrite), 0.0);
  EXPECT_EQ(dev.stats().tag_us(CostTag::kNvmRead), 0.0);
  EXPECT_EQ(dev.stats().nvm_bytes_written, 64u);
}

TEST(Msp430, LeaOpCountsMacs) {
  Msp430Device dev = continuous_device();
  ASSERT_TRUE(dev.lea_op(256));
  EXPECT_EQ(dev.stats().macs, 256u);
  EXPECT_EQ(dev.stats().lea_invocations, 1u);
  const DeviceConfig& cfg = dev.config();
  EXPECT_DOUBLE_EQ(dev.now_us(),
                   cfg.lea.invoke_us + 256 * cfg.lea.mac_us);
}

TEST(Msp430, EnergyAccumulates) {
  Msp430Device dev = continuous_device();
  ASSERT_TRUE(dev.dma_write(100));
  const double e1 = dev.stats().energy_j;
  EXPECT_GT(e1, 0.0);
  ASSERT_TRUE(dev.lea_op(100));
  EXPECT_GT(dev.stats().energy_j, e1);
}

TEST(Msp430, ContinuousPowerNeverFails) {
  Msp430Device dev = continuous_device();
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(dev.dma_write(512));
  }
  EXPECT_EQ(dev.stats().power_failures, 0u);
  EXPECT_EQ(dev.vm_epoch(), 0u);
}

TEST(Msp430, WeakPowerCausesFailuresAndRecovery) {
  Msp430Device dev(DeviceConfig::msp430fr5994(),
                   power::SupplyPresets::weak());
  std::size_t failures = 0;
  for (int i = 0; i < 20000 && failures == 0; ++i) {
    if (!dev.dma_write(64)) {
      ++failures;
    }
  }
  ASSERT_GT(failures, 0u) << "weak supply should brown out eventually";
  EXPECT_EQ(dev.stats().power_failures, failures);
  EXPECT_EQ(dev.vm_epoch(), failures);
  EXPECT_GT(dev.stats().off_time_us, 0.0);
  EXPECT_GT(dev.stats().tag_us(CostTag::kReboot), 0.0);
}

TEST(Msp430, FailedOpCanBeRetriedAfterRecharge) {
  Msp430Device dev(DeviceConfig::msp430fr5994(),
                   power::SupplyPresets::weak());
  for (int i = 0; i < 100000; ++i) {
    if (!dev.dma_write(64)) {
      // The recharged buffer must allow the retry to succeed.
      EXPECT_TRUE(dev.dma_write(64));
      return;
    }
  }
  FAIL() << "never saw a power failure";
}

TEST(Msp430, OversizedOperationThrows) {
  // One op bigger than the whole energy buffer can never complete.
  Msp430Device dev(DeviceConfig::msp430fr5994(),
                   power::SupplyPresets::weak());
  EXPECT_THROW((void)dev.dma_write(20 * 1024 * 1024), std::runtime_error);
}

TEST(Msp430, PipelinedJobExposesMaxOfComputeAndWrite) {
  Msp430Device dev = continuous_device();
  const DeviceConfig& cfg = dev.config();
  // Write-dominated job.
  ASSERT_TRUE(dev.pipelined_job(4, 8, 0));
  const double write_us =
      cfg.dma.invocation_us + 8 * cfg.dma.write_us_per_byte;
  const double lea_us = cfg.lea.invoke_us + 4 * cfg.lea.mac_us;
  ASSERT_GT(write_us, lea_us);
  EXPECT_DOUBLE_EQ(dev.now_us(), write_us);
  EXPECT_DOUBLE_EQ(dev.stats().tag_us(CostTag::kNvmWrite), write_us);
  EXPECT_DOUBLE_EQ(dev.stats().tag_us(CostTag::kLea), 0.0);
}

TEST(Msp430, PipelinedJobComputeDominatedTagsLea) {
  Msp430Device dev = continuous_device();
  ASSERT_TRUE(dev.pipelined_job(200, 2, 0));
  EXPECT_GT(dev.stats().tag_us(CostTag::kLea), 0.0);
  EXPECT_EQ(dev.stats().tag_us(CostTag::kNvmWrite), 0.0);
}

TEST(Msp430, PipelinedJobWithoutMacsSkipsLea) {
  Msp430Device dev = continuous_device();
  ASSERT_TRUE(dev.pipelined_job(0, 8, 4));
  EXPECT_EQ(dev.stats().lea_invocations, 0u);
  EXPECT_EQ(dev.stats().macs, 0u);
}

TEST(Msp430, ResetStatsClears) {
  Msp430Device dev = continuous_device();
  ASSERT_TRUE(dev.dma_write(10));
  dev.reset_stats();
  EXPECT_EQ(dev.stats().nvm_bytes_written, 0u);
  EXPECT_EQ(dev.stats().energy_j, 0.0);
  // The clock is NOT reset (it is the device's lifetime).
  EXPECT_GT(dev.now_us(), 0.0);
}

TEST(Msp430, DescribeMentionsKeyNumbers) {
  const std::string desc = describe(DeviceConfig::msp430fr5994());
  EXPECT_NE(desc.find("8 KB"), std::string::npos);
  EXPECT_NE(desc.find("512 KB"), std::string::npos);
}

}  // namespace
}  // namespace iprune::device
