#include "device/nvm.hpp"

#include <gtest/gtest.h>

namespace iprune::device {
namespace {

TEST(Nvm, AllocatorHandsOutDisjointRegions) {
  Nvm nvm(1024);
  const Address a = nvm.allocate(100);
  const Address b = nvm.allocate(50);
  EXPECT_GE(b, a + 100);
  EXPECT_EQ(nvm.capacity(), 1024u);
  EXPECT_LE(nvm.allocated(), 1024u);
}

TEST(Nvm, AllocationsAreTwoByteAligned) {
  Nvm nvm(1024);
  (void)nvm.allocate(3);
  const Address b = nvm.allocate(2);
  EXPECT_EQ(b % 2, 0u);
}

TEST(Nvm, ExhaustionThrows) {
  Nvm nvm(64);
  (void)nvm.allocate(60);
  EXPECT_THROW(nvm.allocate(8), std::runtime_error);
}

TEST(Nvm, ResetReclaimsAndZeroes) {
  Nvm nvm(64);
  const Address a = nvm.allocate(8);
  nvm.write_i32(a, 0x12345678);
  nvm.reset();
  EXPECT_EQ(nvm.allocated(), 0u);
  const Address b = nvm.allocate(8);
  EXPECT_EQ(nvm.read_i32(b), 0);
}

TEST(Nvm, TypedAccessorsRoundTrip) {
  Nvm nvm(64);
  const Address a = nvm.allocate(16);
  nvm.write_i16(a, -12345);
  nvm.write_i32(a + 4, -7654321);
  nvm.write_u32(a + 8, 0xDEADBEEF);
  EXPECT_EQ(nvm.read_i16(a), -12345);
  EXPECT_EQ(nvm.read_i32(a + 4), -7654321);
  EXPECT_EQ(nvm.read_u32(a + 8), 0xDEADBEEFu);
}

TEST(Nvm, BulkReadWriteRoundTrip) {
  Nvm nvm(128);
  const Address a = nvm.allocate(8);
  const std::uint8_t src[4] = {1, 2, 3, 4};
  nvm.write(a, src);
  std::uint8_t dst[4] = {};
  nvm.read(a, dst);
  EXPECT_EQ(dst[0], 1);
  EXPECT_EQ(dst[3], 4);
}

TEST(Nvm, OutOfRangeAccessThrows) {
  Nvm nvm(16);
  EXPECT_THROW((void)nvm.read_i16(15), std::out_of_range);
  EXPECT_THROW(nvm.write_i32(14, 1), std::out_of_range);
  EXPECT_NO_THROW(nvm.write_i16(14, 1));
}

TEST(Nvm, DataPersistsAcrossManyWrites) {
  Nvm nvm(4096);
  const Address a = nvm.allocate(4096);
  for (std::size_t i = 0; i < 2048; ++i) {
    nvm.write_i16(a + i * 2, static_cast<std::int16_t>(i - 1024));
  }
  for (std::size_t i = 0; i < 2048; ++i) {
    EXPECT_EQ(nvm.read_i16(a + i * 2), static_cast<std::int16_t>(i - 1024));
  }
}

}  // namespace
}  // namespace iprune::device
