#include "device/nvm.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "device/corruption.hpp"

namespace iprune::device {
namespace {

constexpr std::size_t kSizeMax = std::numeric_limits<std::size_t>::max();

TEST(Nvm, AllocatorHandsOutDisjointRegions) {
  Nvm nvm(1024);
  const Address a = nvm.allocate(100);
  const Address b = nvm.allocate(50);
  EXPECT_GE(b, a + 100);
  EXPECT_EQ(nvm.capacity(), 1024u);
  EXPECT_LE(nvm.allocated(), 1024u);
}

TEST(Nvm, AllocationsAreTwoByteAligned) {
  Nvm nvm(1024);
  (void)nvm.allocate(3);
  const Address b = nvm.allocate(2);
  EXPECT_EQ(b % 2, 0u);
}

TEST(Nvm, ExhaustionThrows) {
  Nvm nvm(64);
  (void)nvm.allocate(60);
  EXPECT_THROW(nvm.allocate(8), std::runtime_error);
}

TEST(Nvm, ResetReclaimsAndZeroes) {
  Nvm nvm(64);
  const Address a = nvm.allocate(8);
  nvm.write_i32(a, 0x12345678);
  nvm.reset();
  EXPECT_EQ(nvm.allocated(), 0u);
  const Address b = nvm.allocate(8);
  EXPECT_EQ(nvm.read_i32(b), 0);
}

TEST(Nvm, TypedAccessorsRoundTrip) {
  Nvm nvm(64);
  const Address a = nvm.allocate(16);
  nvm.write_i16(a, -12345);
  nvm.write_i32(a + 4, -7654321);
  nvm.write_u32(a + 8, 0xDEADBEEF);
  EXPECT_EQ(nvm.read_i16(a), -12345);
  EXPECT_EQ(nvm.read_i32(a + 4), -7654321);
  EXPECT_EQ(nvm.read_u32(a + 8), 0xDEADBEEFu);
}

TEST(Nvm, BulkReadWriteRoundTrip) {
  Nvm nvm(128);
  const Address a = nvm.allocate(8);
  const std::uint8_t src[4] = {1, 2, 3, 4};
  nvm.write(a, src);
  std::uint8_t dst[4] = {};
  nvm.read(a, dst);
  EXPECT_EQ(dst[0], 1);
  EXPECT_EQ(dst[3], 4);
}

TEST(Nvm, OutOfRangeAccessThrows) {
  Nvm nvm(16);
  EXPECT_THROW((void)nvm.read_i16(15), std::out_of_range);
  EXPECT_THROW(nvm.write_i32(14, 1), std::out_of_range);
  EXPECT_NO_THROW(nvm.write_i16(14, 1));
}

TEST(Nvm, DataPersistsAcrossManyWrites) {
  Nvm nvm(4096);
  const Address a = nvm.allocate(4096);
  for (std::size_t i = 0; i < 2048; ++i) {
    nvm.write_i16(a + i * 2, static_cast<std::int16_t>(i - 1024));
  }
  for (std::size_t i = 0; i < 2048; ++i) {
    EXPECT_EQ(nvm.read_i16(a + i * 2), static_cast<std::int16_t>(i - 1024));
  }
}

// Regression: `addr + bytes` used to wrap around SIZE_MAX inside the
// bounds check, turning a wildly out-of-range access into an in-range one.
TEST(Nvm, BoundsCheckNearSizeMaxDoesNotWrap) {
  Nvm nvm(64);
  std::uint8_t buf[4] = {};
  EXPECT_THROW(nvm.read(kSizeMax - 1, buf), std::out_of_range);
  EXPECT_THROW(nvm.read(kSizeMax - 3, buf), std::out_of_range);
  EXPECT_THROW(nvm.write(kSizeMax, {buf, 1}), std::out_of_range);
  EXPECT_THROW(nvm.write_i32(kSizeMax - 2, 1), std::out_of_range);
  EXPECT_THROW((void)nvm.read_u32(kSizeMax - 2), std::out_of_range);
}

// Regression: the 2-byte alignment round-up `(bytes + 1) & ~1` used to
// wrap SIZE_MAX to 0 and "succeed" with a zero-byte allocation.
TEST(Nvm, AllocateNearSizeMaxThrowsInsteadOfWrapping) {
  Nvm nvm(64);
  EXPECT_THROW(nvm.allocate(kSizeMax), std::runtime_error);
  EXPECT_THROW(nvm.allocate(kSizeMax - 1), std::runtime_error);
  EXPECT_THROW(nvm.allocate(65), std::runtime_error);
  EXPECT_EQ(nvm.allocated(), 0u);
  EXPECT_NO_THROW(nvm.allocate(64));
}

TEST(WriteBatch, TracksPartsAndTotalBytes) {
  WriteBatch batch;
  EXPECT_TRUE(batch.empty());
  batch.push_i16(10, -5);
  batch.push_i32(20, 123456);
  batch.push_u32(30, 99u);
  EXPECT_EQ(batch.total_bytes(), 10u);
  EXPECT_FALSE(batch.empty());
  batch.clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.total_bytes(), 0u);
}

TEST(WriteBatch, CoalescesContiguousPushes) {
  WriteBatch batch;
  batch.push_i16(10, 1);
  batch.push_i16(12, 2);  // contiguous with the previous part
  batch.push_i16(20, 3);  // gap: new part
  EXPECT_EQ(batch.parts(), 2u);
  EXPECT_EQ(batch.total_bytes(), 6u);
}

TEST(WriteBatch, ForPrefixTruncatesTheStraddlingPart) {
  WriteBatch batch;
  const std::uint8_t a[4] = {1, 2, 3, 4};
  const std::uint8_t b[4] = {5, 6, 7, 8};
  batch.push_bytes(0, a);
  batch.push_bytes(100, b);

  std::vector<std::pair<std::size_t, std::size_t>> seen;  // (addr, len)
  batch.for_prefix(6, [&](std::size_t addr,
                          std::span<const std::uint8_t> bytes) {
    seen.emplace_back(addr, bytes.size());
  });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], std::make_pair(std::size_t{0}, std::size_t{4}));
  EXPECT_EQ(seen[1], std::make_pair(std::size_t{100}, std::size_t{2}));

  seen.clear();
  batch.for_prefix(0, [&](std::size_t addr,
                          std::span<const std::uint8_t> bytes) {
    seen.emplace_back(addr, bytes.size());
  });
  EXPECT_TRUE(seen.empty());
}

TEST(CorruptionModel, WriteFaultsAreDeterministicPerSeed) {
  CorruptionConfig cfg;
  cfg.seed = 11;
  cfg.write_ber = 0.01;

  const auto run = [&](std::size_t chunk) {
    Nvm nvm(4096);
    CorruptionModel model(cfg);
    nvm.set_corruption(&model);
    const Address a = nvm.allocate(4096);
    std::vector<std::uint8_t> zeros(chunk, 0);
    for (std::size_t off = 0; off < 4096; off += chunk) {
      nvm.write(a + off, zeros);
    }
    nvm.set_corruption(nullptr);
    std::vector<std::uint8_t> out(4096);
    nvm.read(a, out);
    return out;
  };

  // Identical fault positions regardless of access chunking.
  const auto bytewise = run(1);
  EXPECT_EQ(bytewise, run(64));
  EXPECT_EQ(bytewise, run(4096));

  std::size_t flipped = 0;
  for (std::uint8_t byte : bytewise) {
    flipped += static_cast<std::size_t>(byte != 0);
  }
  EXPECT_GT(flipped, 0u);      // ~327 expected bit flips
  EXPECT_LT(flipped, 1500u);   // far below saturation
}

TEST(CorruptionModel, ReadFaultsAreTransient) {
  CorruptionConfig cfg;
  cfg.seed = 3;
  cfg.read_ber = 0.5;
  Nvm nvm(64);
  CorruptionModel model(cfg);
  const Address a = nvm.allocate(64);
  nvm.write_u32(a, 0xAABBCCDDu);
  nvm.set_corruption(&model);
  std::uint32_t corrupted = nvm.read_u32(a);
  // 32 bits at BER 0.5: astronomically unlikely to read back clean.
  EXPECT_NE(corrupted, 0xAABBCCDDu);
  EXPECT_GT(model.read_flips(), 0u);
  nvm.set_corruption(nullptr);
  EXPECT_EQ(nvm.read_u32(a), 0xAABBCCDDu);  // the cell kept its value
}

TEST(CorruptionModel, WindowConfinesBerFaults) {
  CorruptionConfig cfg;
  cfg.seed = 5;
  cfg.write_ber = 0.2;
  cfg.window_begin = 100;
  cfg.window_end = 200;
  Nvm nvm(1024);
  CorruptionModel model(cfg);
  nvm.set_corruption(&model);
  const Address a = nvm.allocate(1024);
  std::vector<std::uint8_t> zeros(1024, 0);
  nvm.write(a, zeros);
  nvm.set_corruption(nullptr);
  std::vector<std::uint8_t> out(1024);
  nvm.read(a, out);
  std::size_t inside = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const bool in_window = a + i >= 100 && a + i < 200;
    if (!in_window) {
      EXPECT_EQ(out[i], 0) << "BER fault escaped the window at " << i;
    } else {
      inside += static_cast<std::size_t>(out[i] != 0);
    }
  }
  EXPECT_GT(inside, 0u);
}

TEST(CorruptionModel, StuckCellForcesStoreAndLoad) {
  CorruptionConfig cfg;
  cfg.stuck.push_back({/*addr=*/8, /*bit=*/0, /*value=*/true});
  cfg.stuck.push_back({/*addr=*/9, /*bit=*/7, /*value=*/false});
  Nvm nvm(64);
  CorruptionModel model(cfg);
  nvm.set_corruption(&model);
  const Address a = nvm.allocate(16);
  ASSERT_EQ(a, 0u);
  nvm.write_i16(8, 0);
  EXPECT_EQ(nvm.peek(8) & 1, 1);  // stored with the bit forced on
  nvm.write_i16(8, static_cast<std::int16_t>(0xFFFF));
  EXPECT_EQ(nvm.peek(9) & 0x80, 0);
  // The read path forces the bits too, even for untouched cells.
  std::uint8_t raw[2] = {};
  nvm.read(8, raw);
  EXPECT_EQ(raw[0] & 1, 1);
  EXPECT_EQ(raw[1] & 0x80, 0);
  EXPECT_GT(model.stuck_hits(), 0u);
  nvm.set_corruption(nullptr);
}

TEST(CorruptionModel, PeekBypassesReadCorruption) {
  CorruptionConfig cfg;
  cfg.seed = 9;
  cfg.read_ber = 1.0;
  Nvm nvm(64);
  CorruptionModel model(cfg);
  const Address a = nvm.allocate(4);
  nvm.write(a, std::vector<std::uint8_t>{0x5A});
  nvm.set_corruption(&model);
  EXPECT_EQ(nvm.peek(a), 0x5A);  // raw cell, no read-path faults
  std::uint8_t corrupted[1];
  nvm.read(a, corrupted);
  EXPECT_EQ(corrupted[0], 0xA5);  // BER 1.0 flips every bit
  nvm.set_corruption(nullptr);
}

TEST(CorruptionModel, RejectsInvalidConfig) {
  CorruptionConfig bad_ber;
  bad_ber.write_ber = 1.5;
  EXPECT_THROW(CorruptionModel{bad_ber}, std::invalid_argument);
  CorruptionConfig bad_bit;
  bad_bit.stuck.push_back({0, /*bit=*/8, true});
  EXPECT_THROW(CorruptionModel{bad_bit}, std::invalid_argument);
}

}  // namespace
}  // namespace iprune::device
