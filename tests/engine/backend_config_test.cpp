// BackendConfig preset round-trips, make_backend construction semantics,
// and the functional backend's no-power contract (docs/backends.md).

#include <gtest/gtest.h>

#include <stdexcept>

#include "device/nvm.hpp"
#include "engine/backend.hpp"
#include "power/supply.hpp"

namespace iprune {
namespace {

using engine::Backend;
using engine::BackendConfig;
using engine::BackendKind;

TEST(BackendConfig, PresetsRoundTripThroughDescribeParse) {
  for (const BackendConfig& cfg :
       {BackendConfig::msp430_fram(), BackendConfig::functional(),
        BackendConfig::reram(), BackendConfig::stt_mram()}) {
    const BackendConfig reparsed = BackendConfig::parse(cfg.describe());
    EXPECT_EQ(reparsed, cfg) << cfg.describe();
    // Byte round-trip of the canonical token itself.
    EXPECT_EQ(reparsed.describe(), cfg.describe());
  }
}

TEST(BackendConfig, UnknownPresetMessageIsPinned) {
  try {
    BackendConfig::parse("fram2000");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "backend: unknown preset 'fram2000'");
  }
}

TEST(BackendConfig, PresetsAreDistinct) {
  const BackendConfig presets[] = {
      BackendConfig::msp430_fram(), BackendConfig::functional(),
      BackendConfig::reram(), BackendConfig::stt_mram()};
  for (std::size_t i = 0; i < std::size(presets); ++i) {
    for (std::size_t j = i + 1; j < std::size(presets); ++j) {
      EXPECT_NE(presets[i], presets[j])
          << presets[i].describe() << " vs " << presets[j].describe();
    }
  }
}

TEST(BackendConfig, EqualityIsSensitiveToCostConstants) {
  BackendConfig a = BackendConfig::msp430_fram();
  BackendConfig b = a;
  EXPECT_EQ(a, b);
  b.device.dma.write_us_per_byte *= 2.0;
  EXPECT_NE(a, b);
}

TEST(MakeBackend, BuildsTheDeclaredKind) {
  EXPECT_EQ(engine::make_backend(BackendConfig::msp430_fram())->kind(),
            BackendKind::kCycle);
  EXPECT_EQ(engine::make_backend(BackendConfig::functional())->kind(),
            BackendKind::kFunctional);
  EXPECT_EQ(engine::make_backend(BackendConfig::reram())->kind(),
            BackendKind::kCustom);
  EXPECT_EQ(engine::make_backend(BackendConfig::stt_mram())->kind(),
            BackendKind::kCustom);
}

TEST(MakeBackend, CustomBackendCarriesSubstitutedConstants) {
  const std::unique_ptr<Backend> backend =
      engine::make_backend(BackendConfig::reram());
  EXPECT_EQ(backend->config().dma.read_us_per_byte, 0.1);
  EXPECT_EQ(backend->config().dma.write_us_per_byte, 1.0);
  EXPECT_EQ(backend->spec().preset, "reram");
  // Custom backends keep the full cycle-class power model.
  EXPECT_NE(backend->power(), nullptr);
}

TEST(FunctionalBackend, HasNoPowerModelAndNeverFails) {
  const std::unique_ptr<Backend> backend =
      engine::make_backend(BackendConfig::functional());
  EXPECT_EQ(backend->power(), nullptr);
  EXPECT_EQ(backend->now_us(), 0.0);
  EXPECT_EQ(backend->vm_epoch(), 0u);

  EXPECT_TRUE(backend->dma_read(64));
  EXPECT_TRUE(backend->dma_write(64));
  EXPECT_TRUE(backend->lea_op(100));
  EXPECT_TRUE(backend->cpu_work(1000));
  EXPECT_TRUE(backend->pipelined_job(100, 64, 10));
  // The clock never advances, whatever the traffic.
  EXPECT_EQ(backend->now_us(), 0.0);
  // Traffic is still accounted so work-volume reasoning survives.
  EXPECT_EQ(backend->stats().nvm_bytes_read, 64u);
  EXPECT_EQ(backend->stats().nvm_bytes_written, 128u);
  EXPECT_EQ(backend->stats().macs, 200u);
}

TEST(FunctionalBackend, StagedCommitsLandWhole) {
  const std::unique_ptr<Backend> backend =
      engine::make_backend(BackendConfig::functional());
  const device::Address addr = backend->nvm().allocate(8);

  device::WriteBatch batch;
  const std::uint8_t payload[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  batch.push_bytes(addr, payload);
  ASSERT_TRUE(backend->dma_commit(batch, 8));
  EXPECT_EQ(backend->last_staged_kept(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(backend->nvm().peek(addr + i), payload[i]);
  }
}

}  // namespace
}  // namespace iprune
