// Differential backend equivalence (docs/backends.md): the functional
// backend must produce BIT-IDENTICAL logits to the cycle-approximate
// oracle for every model x preservation mode x sparsity point. The
// functional backend skips the entire timing/energy/brown-out machinery,
// so this pins the one property that makes it usable in search loops:
// lowering, quantization, and the fixed-point pipeline are shared code
// paths and the device model only ever decides WHEN values move, never
// WHAT they are (under continuous power).

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/block_pruner.hpp"
#include "engine/backend.hpp"
#include "engine/deploy.hpp"
#include "engine/engine.hpp"
#include "fault/testbed.hpp"
#include "nn/activation.hpp"
#include "nn/dense.hpp"
#include "util/rng.hpp"

namespace iprune {
namespace {

using engine::BackendConfig;
using engine::PreservationMode;

constexpr std::size_t kSamples = 3;

/// Third testbed model beyond the fault-harness pair: a dense-only MLP
/// (flatten + three FC layers with a standalone ReLU between each), so
/// the sweep covers a graph with no convolution at all.
nn::Graph make_mlp_graph(util::Rng& rng) {
  nn::Graph g({1, 4, 6});
  auto flat = g.add(std::make_unique<nn::Flatten>("flatten"), {g.input()});
  auto fc1 = g.add(std::make_unique<nn::Dense>("fc1", 24, 16, rng), {flat});
  auto r1 = g.add(std::make_unique<nn::Relu>("relu1"), {fc1});
  auto fc2 = g.add(std::make_unique<nn::Dense>("fc2", 16, 10, rng), {r1});
  auto r2 = g.add(std::make_unique<nn::Relu>("relu2"), {fc2});
  auto fc3 = g.add(std::make_unique<nn::Dense>("fc3", 10, 4, rng), {r2});
  g.set_output(fc3);
  return g;
}

nn::Graph build_model(int model, util::Rng& rng) {
  switch (model) {
    case 0:
      return fault::make_tiny_graph(rng);
    case 1:
      return fault::make_multipath_graph(rng);
    default:
      return make_mlp_graph(rng);
  }
}

struct RunOutput {
  std::vector<std::vector<float>> logits;
  std::size_t macs = 0;
  std::size_t acc_outputs = 0;
  std::size_t nvm_bytes_written = 0;
};

/// One full deploy + inference pass against `backend_cfg`. Model, masks,
/// calibration, and samples are all regenerated from the same seed, so
/// two calls differ ONLY in the backend they execute against.
RunOutput run_with(const BackendConfig& backend_cfg, int model,
                   PreservationMode mode, double sparsity) {
  util::Rng rng(41 + model);
  nn::Graph graph = build_model(model, rng);
  const nn::Tensor calibration = fault::make_batch(rng, graph, 4);
  const nn::Tensor samples = fault::make_batch(rng, graph, kSamples);

  engine::EngineConfig config;
  config.mode = mode;
  if (sparsity > 0.0) {
    // Block pruning is deterministic (RMS-ranked), so both backends see
    // the identical mask without threading state between runs.
    std::vector<engine::PrunableLayer> layers =
        engine::prunable_layers(graph, config, backend_cfg.device.memory);
    for (engine::PrunableLayer& layer : layers) {
      core::prune_layer(layer, sparsity, core::Granularity::kBlock);
    }
  }

  std::unique_ptr<engine::Backend> backend = engine::make_backend(backend_cfg);
  engine::DeployedModel deployed(graph, config, *backend, calibration);
  engine::IntermittentEngine eng(deployed, *backend);

  RunOutput out;
  for (std::size_t i = 0; i < kSamples; ++i) {
    const engine::InferenceResult r =
        eng.run(fault::slice_sample(samples, i));
    EXPECT_TRUE(r.stats.completed);
    out.logits.push_back(r.logits);
    out.macs += r.stats.macs;
    out.acc_outputs += r.stats.acc_outputs;
    out.nvm_bytes_written += r.stats.nvm_bytes_written;
  }
  return out;
}

void expect_bit_identical(const RunOutput& cycle, const RunOutput& fast) {
  ASSERT_EQ(cycle.logits.size(), fast.logits.size());
  for (std::size_t i = 0; i < cycle.logits.size(); ++i) {
    ASSERT_EQ(cycle.logits[i].size(), fast.logits[i].size());
    EXPECT_EQ(std::memcmp(cycle.logits[i].data(), fast.logits[i].data(),
                          cycle.logits[i].size() * sizeof(float)),
              0)
        << "logits diverge at sample " << i;
  }
  EXPECT_EQ(cycle.macs, fast.macs);
  EXPECT_EQ(cycle.acc_outputs, fast.acc_outputs);
  EXPECT_EQ(cycle.nvm_bytes_written, fast.nvm_bytes_written);
}

struct SweepPoint {
  int model;
  PreservationMode mode;
  double sparsity;
};

std::string sweep_name(const ::testing::TestParamInfo<SweepPoint>& info) {
  const char* models[] = {"Tiny", "Multipath", "Mlp"};
  const char* modes[] = {"Immediate", "Task", "Accumulate"};
  std::string name = models[info.param.model];
  name += modes[static_cast<int>(info.param.mode)];
  name += info.param.sparsity > 0.0 ? "Sparse" : "Dense";
  return name;
}

class BackendEquivalence : public ::testing::TestWithParam<SweepPoint> {};

TEST_P(BackendEquivalence, FunctionalMatchesCycleBitExactly) {
  const SweepPoint p = GetParam();
  const RunOutput cycle =
      run_with(BackendConfig::msp430_fram(), p.model, p.mode, p.sparsity);
  const RunOutput fast =
      run_with(BackendConfig::functional(), p.model, p.mode, p.sparsity);
  expect_bit_identical(cycle, fast);
}

std::vector<SweepPoint> sweep_points() {
  const PreservationMode modes[] = {PreservationMode::kAccumulateInVm,
                                    PreservationMode::kImmediate,
                                    PreservationMode::kTaskAtomic};
  std::vector<SweepPoint> points;
  for (int model = 0; model < 3; ++model) {
    for (const PreservationMode mode : modes) {
      for (const double sparsity : {0.0, 0.4}) {
        points.push_back({model, mode, sparsity});
      }
    }
  }
  return points;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BackendEquivalence,
                         ::testing::ValuesIn(sweep_points()), sweep_name);

// The custom (memory-technology) backends substitute cost constants only:
// values must stay bit-identical to the oracle even as latency/energy
// move. This is what makes bench_backend_matrix a pure cost experiment.
TEST(BackendEquivalenceCustom, MemoryTechnologyPresetsPreserveValues) {
  for (const BackendConfig& cfg :
       {BackendConfig::reram(), BackendConfig::stt_mram()}) {
    const RunOutput oracle = run_with(BackendConfig::msp430_fram(), 0,
                                      PreservationMode::kImmediate, 0.4);
    const RunOutput custom =
        run_with(cfg, 0, PreservationMode::kImmediate, 0.4);
    expect_bit_identical(oracle, custom);
  }
}

// Same deployment, same backend object, repeated inference on one sample:
// the functional backend must be as deterministic as the oracle (its Nvm
// carries psum scratch state between runs just like real FRAM would).
TEST(BackendEquivalenceCustom, FunctionalRepeatedInferenceIsStable) {
  util::Rng rng(41);
  nn::Graph graph = fault::make_tiny_graph(rng);
  const nn::Tensor calibration = fault::make_batch(rng, graph, 4);
  const nn::Tensor samples = fault::make_batch(rng, graph, 1);

  engine::EngineConfig config;
  std::unique_ptr<engine::Backend> backend =
      engine::make_backend(BackendConfig::functional());
  engine::DeployedModel deployed(graph, config, *backend, calibration);
  engine::IntermittentEngine eng(deployed, *backend);

  const nn::Tensor sample = fault::slice_sample(samples, 0);
  const engine::InferenceResult first = eng.run(sample);
  ASSERT_TRUE(first.stats.completed);
  for (int i = 0; i < 3; ++i) {
    const engine::InferenceResult again = eng.run(sample);
    ASSERT_TRUE(again.stats.completed);
    EXPECT_EQ(std::memcmp(first.logits.data(), again.logits.data(),
                          first.logits.size() * sizeof(float)),
              0);
  }
}

}  // namespace
}  // namespace iprune
