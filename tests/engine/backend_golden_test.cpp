// Cycle-backend golden digests. Each digest folds the logit bytes AND the
// full timing/energy/traffic ledger of two inferences, so it pins the
// cycle-approximate oracle bit-for-bit: latency formula order, power-rail
// accounting, recovery re-execution counts — everything. The table was
// captured from the engine BEFORE the Backend seam was introduced, which
// is the refactor's behavior-preservation proof: the CycleBackend path
// must reproduce the direct-device engine exactly.
//
// A legitimate cost-model change must re-capture this table (see
// docs/backends.md) — treat any unplanned drift here as a bug.

#include <gtest/gtest.h>

#include <cstdint>

#include "engine/backend.hpp"
#include "engine/deploy.hpp"
#include "engine/engine.hpp"
#include "fault/testbed.hpp"
#include "power/energy_buffer.hpp"
#include "power/supply.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace iprune {
namespace {

using engine::PreservationMode;

std::uint64_t run_digest(int model, PreservationMode mode, bool weak_supply,
                         bool integrity) {
  util::Rng rng(model == 0 ? 7 : 9);
  nn::Graph graph = model == 0 ? fault::make_tiny_graph(rng)
                               : fault::make_multipath_graph(rng);
  const nn::Tensor calibration = fault::make_batch(rng, graph, 4);
  const nn::Tensor samples = fault::make_batch(rng, graph, 2);

  power::BufferConfig buffer;
  if (weak_supply) {
    // Small enough to force organic outages on each model, large enough
    // that every task-atomic task still fits in one power cycle.
    buffer.capacitance_f = model == 0 ? 16e-6 : 30e-6;
  }
  std::unique_ptr<engine::Backend> backend = engine::make_backend(
      engine::BackendConfig::msp430_fram(),
      weak_supply ? power::SupplyPresets::weak()
                  : power::SupplyPresets::continuous(),
      buffer);

  engine::EngineConfig config;
  config.mode = mode;
  if (integrity) {
    config.integrity.protect_progress = true;
    config.integrity.seal_regions = true;
    config.integrity.scrub_on_boot = true;
  }
  engine::DeployedModel deployed(graph, config, *backend, calibration);
  engine::IntermittentEngine eng(deployed, *backend);

  util::Fnv1a digest;
  for (std::size_t i = 0; i < 2; ++i) {
    const engine::InferenceResult r =
        eng.run(fault::slice_sample(samples, i));
    digest.fold_f32(r.logits.data(), r.logits.size());
    digest.fold(&r.stats.latency_s, sizeof(double));
    digest.fold(&r.stats.energy_j, sizeof(double));
    digest.fold_u64(r.stats.power_failures);
    digest.fold_u64(r.stats.nvm_bytes_read);
    digest.fold_u64(r.stats.nvm_bytes_written);
    digest.fold_u64(r.stats.macs);
    digest.fold_u64(r.stats.acc_outputs);
    digest.fold_u64(r.stats.preserved_outputs);
  }
  return digest.value();
}

struct GoldenRow {
  int model;  // 0 = tiny, 1 = multipath
  PreservationMode mode;
  bool weak_supply;  // weak harvest + shrunken buffer (organic outages)
  bool integrity;    // full integrity layer armed
  std::uint64_t digest;
};

// Captured pre-refactor (direct Msp430Device engine). The weak-supply
// tiny task/accumulate rows coincide with their continuous-supply rows:
// at 16 uF those modes complete without an outage, and a failure-free
// timeline is supply-independent by design.
const GoldenRow kGolden[] = {
    {0, PreservationMode::kImmediate, false, false, 0x037256c67c06f721ull},
    {0, PreservationMode::kImmediate, true, false, 0xc866c1b95c526eccull},
    {0, PreservationMode::kTaskAtomic, false, false, 0xcb8b00519c437881ull},
    {0, PreservationMode::kTaskAtomic, true, false, 0xcb8b00519c437881ull},
    {0, PreservationMode::kAccumulateInVm, false, false,
     0xf9d0fc752d52b729ull},
    {0, PreservationMode::kAccumulateInVm, true, false,
     0xf9d0fc752d52b729ull},
    {0, PreservationMode::kImmediate, true, true, 0xe102b801c912f320ull},
    {1, PreservationMode::kImmediate, false, false, 0x06502d67a0d906e2ull},
    {1, PreservationMode::kImmediate, true, false, 0xafc82841f642e732ull},
    {1, PreservationMode::kTaskAtomic, false, false, 0x64b7c89105692eceull},
    {1, PreservationMode::kTaskAtomic, true, false, 0xac064dd80db9225full},
    {1, PreservationMode::kAccumulateInVm, false, false,
     0x393e5bf778b2343aull},
    {1, PreservationMode::kAccumulateInVm, true, false,
     0x51997001f61284eeull},
    {1, PreservationMode::kImmediate, true, true, 0x906392f6c470f4acull},
};

TEST(BackendGolden, CycleBackendMatchesPreRefactorDigests) {
  for (const GoldenRow& row : kGolden) {
    EXPECT_EQ(run_digest(row.model, row.mode, row.weak_supply, row.integrity),
              row.digest)
        << "model=" << row.model << " mode=" << static_cast<int>(row.mode)
        << " weak=" << row.weak_supply << " integrity=" << row.integrity;
  }
}

// The weak-supply rows must actually exercise the outage machinery —
// otherwise the table silently degenerates to a continuous-power pin.
TEST(BackendGolden, WeakSupplyRowsExperiencePowerFailures) {
  util::Rng rng(7);
  nn::Graph graph = fault::make_tiny_graph(rng);
  const nn::Tensor calibration = fault::make_batch(rng, graph, 4);
  const nn::Tensor samples = fault::make_batch(rng, graph, 2);

  power::BufferConfig buffer;
  buffer.capacitance_f = 16e-6;
  std::unique_ptr<engine::Backend> backend =
      engine::make_backend(engine::BackendConfig::msp430_fram(),
                           power::SupplyPresets::weak(), buffer);

  engine::EngineConfig config;
  config.mode = PreservationMode::kImmediate;
  engine::DeployedModel deployed(graph, config, *backend, calibration);
  engine::IntermittentEngine eng(deployed, *backend);

  std::size_t failures = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    const engine::InferenceResult r =
        eng.run(fault::slice_sample(samples, i));
    ASSERT_TRUE(r.stats.completed);
    failures += r.stats.power_failures;
  }
  EXPECT_GT(failures, 0u);
}

}  // namespace
}  // namespace iprune
