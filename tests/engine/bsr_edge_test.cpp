// BSR edge cases and psum-ordering pins. The structural half exercises
// BsrMatrix::build degenerate shapes (empty row tile, a single full-dense
// block, the maximum block count on edge-padded plans). The engine half
// pins the partial-sum accumulation order: a pruned (skipped) block must
// contribute exactly what a present-but-zero block contributes — nothing —
// so prune-skip logits are bit-identical to dense-with-zeroed-weights
// logits, under every preservation mode. The optimized gather/psum paths
// in engine.cpp must never break this.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "engine/bsr.hpp"
#include "engine/engine.hpp"
#include "nn/dense.hpp"
#include "power/supply.hpp"
#include "util/rng.hpp"

namespace iprune {
namespace {

using engine::BlockMask;
using engine::BsrMatrix;
using engine::EngineConfig;
using engine::PreservationMode;
using engine::TilePlan;

TilePlan two_by_two_plan() {
  TilePlan plan;
  plan.rows = 8;
  plan.cols = 4;
  plan.k = 24;
  plan.br = 4;
  plan.bk = 12;
  plan.bc = 4;
  return plan;
}

nn::QTensor random_quantized(const TilePlan& plan, std::uint64_t seed) {
  util::Rng rng(seed);
  nn::Tensor dense({plan.rows, plan.k});
  for (std::size_t i = 0; i < dense.numel(); ++i) {
    dense[i] = static_cast<float>(rng.normal());
  }
  return nn::quantize_q15(dense);
}

TEST(BsrEdge, EmptyRowTileHasEmptySlotRange) {
  const TilePlan plan = two_by_two_plan();
  BlockMask mask(plan.row_tiles(), plan.k_tiles(), false);
  mask.set(0, 0, true);
  mask.set(0, 1, true);
  // Row tile 1 entirely pruned.
  const nn::QTensor dense = random_quantized(plan, 11);
  const BsrMatrix bsr = BsrMatrix::build(dense, mask, plan);
  EXPECT_EQ(bsr.nnz_blocks(), plan.k_tiles());
  EXPECT_EQ(bsr.row_begin(1), bsr.row_end(1)) << "empty row tile";
  EXPECT_EQ(bsr.row_end(1), bsr.nnz_blocks())
      << "trailing empty row still closes the row_ptr array";
  // Reconstructing must zero the pruned rows.
  const nn::QTensor back = bsr.to_dense(plan, dense.scale);
  for (std::size_t r = plan.br; r < plan.rows; ++r) {
    for (std::size_t kk = 0; kk < plan.k; ++kk) {
      EXPECT_EQ(back.data[r * plan.k + kk], 0) << r << "," << kk;
    }
  }
}

TEST(BsrEdge, SingleFullDenseBlock) {
  // The whole matrix is exactly one block: the smallest legal BSR.
  TilePlan plan;
  plan.rows = 4;
  plan.cols = 4;
  plan.k = 12;
  plan.br = 4;
  plan.bk = 12;
  plan.bc = 4;
  ASSERT_EQ(1u, plan.row_tiles());
  ASSERT_EQ(1u, plan.k_tiles());
  const BlockMask mask(1, 1, true);
  const nn::QTensor dense = random_quantized(plan, 12);
  const BsrMatrix bsr = BsrMatrix::build(dense, mask, plan);
  EXPECT_EQ(1u, bsr.nnz_blocks());
  EXPECT_EQ(plan.br * plan.bk, bsr.block_elems());
  EXPECT_EQ(0u, bsr.row_begin(0));
  EXPECT_EQ(1u, bsr.row_end(0));
  EXPECT_EQ(0u, bsr.col(0));
  ASSERT_EQ(std::vector<std::uint32_t>({0, 1}), bsr.row_ptr());
  // A full single block stores the dense values verbatim.
  const std::int16_t* block = bsr.block(0);
  for (std::size_t i = 0; i < bsr.block_elems(); ++i) {
    EXPECT_EQ(dense.data[i], block[i]) << "elem " << i;
  }
}

TEST(BsrEdge, MaxBlockCountOnEdgePaddedPlan) {
  // Ragged extents (rows 4+2, k 12+3) with a full mask: every tile alive,
  // nnz_blocks hits the row_tiles*k_tiles maximum, and within each row
  // tile the k-tile indices come out strictly ascending — the order the
  // engine's psum chain walks them.
  TilePlan plan;
  plan.rows = 6;
  plan.cols = 3;
  plan.k = 15;
  plan.br = 4;
  plan.bk = 12;
  plan.bc = 4;
  const BlockMask mask(plan.row_tiles(), plan.k_tiles(), true);
  nn::QTensor dense;
  dense.shape = {plan.rows, plan.k};
  dense.scale = 1.0f;
  dense.data.assign(plan.rows * plan.k, 3);
  const BsrMatrix bsr = BsrMatrix::build(dense, mask, plan);
  EXPECT_EQ(plan.row_tiles() * plan.k_tiles(), bsr.nnz_blocks());
  for (std::size_t rt = 0; rt < plan.row_tiles(); ++rt) {
    ASSERT_EQ(plan.k_tiles(), bsr.row_end(rt) - bsr.row_begin(rt));
    for (std::uint32_t slot = bsr.row_begin(rt); slot + 1 < bsr.row_end(rt);
         ++slot) {
      EXPECT_LT(bsr.col(slot), bsr.col(slot + 1))
          << "k-tile order within row tile " << rt;
    }
  }
  // Edge padding: the last block's out-of-extent elements are zero.
  const std::int16_t* last = bsr.block(bsr.nnz_blocks() - 1);
  EXPECT_EQ(3, last[0]);                    // real element
  EXPECT_EQ(0, last[plan.bk - 1]);          // k padding
  EXPECT_EQ(0, last[3 * plan.bk]);          // row padding
}

// ---------------------------------------------------------------------
// Engine psum-ordering pins (Dense 24 -> 8 lowers to a 2x2 block grid
// under the default EngineConfig: br=4, bk=12).

struct DenseEngineFixture {
  nn::Graph graph{nn::Shape{24}};
  nn::Tensor calib;
  nn::Tensor sample;

  DenseEngineFixture() {
    util::Rng rng(21);
    auto fc = graph.add(std::make_unique<nn::Dense>("fc", 24, 8, rng),
                        {graph.input()});
    graph.set_output(fc);
    calib = nn::Tensor({16, 24});
    for (std::size_t i = 0; i < calib.numel(); ++i) {
      calib[i] = static_cast<float>(rng.normal(0.0, 0.5));
    }
    sample = nn::Tensor({24});
    for (std::size_t i = 0; i < sample.numel(); ++i) {
      sample[i] = static_cast<float>(rng.normal(0.0, 0.5));
    }
  }

  nn::Dense& fc() { return dynamic_cast<nn::Dense&>(graph.layer(1)); }

  std::vector<float> run(PreservationMode mode) {
    EngineConfig config;
    config.mode = mode;
    device::Msp430Device device(
        device::DeviceConfig::msp430fr5994(),
        std::make_unique<power::ConstantSupply>(
            power::SupplyPresets::kContinuousW),
        power::BufferConfig{});
    engine::DeployedModel model(graph, config, device, calib);
    engine::IntermittentEngine eng(model, device);
    const auto result = eng.run(sample);
    EXPECT_TRUE(result.stats.completed);
    return result.logits;
  }
};

void expect_bit_equal(const std::vector<float>& a,
                      const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)))
      << what;
}

TEST(BsrEdge, PruneSkipBitIdenticalToDenseZeroWeights) {
  // Model A: second k-tile pruned through the mask (blocks skipped).
  DenseEngineFixture pruned;
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t kk = 12; kk < 24; ++kk) {
      pruned.fc().weight_mask().at(r, kk) = 0.0f;
    }
  }
  pruned.fc().apply_mask();

  // Model B: identical weights (zeroed directly), mask left full, so the
  // same blocks stay alive and the engine multiplies explicit zeros.
  DenseEngineFixture dense_zero;
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t kk = 12; kk < 24; ++kk) {
      dense_zero.fc().weight().at(r, kk) = 0.0f;
    }
  }

  for (const PreservationMode mode :
       {PreservationMode::kImmediate, PreservationMode::kTaskAtomic,
        PreservationMode::kAccumulateInVm}) {
    expect_bit_equal(pruned.run(mode), dense_zero.run(mode),
                     "skipped blocks must contribute exactly zero psum");
  }
}

TEST(BsrEdge, PreservationModesAgreeBitExactlyOnPrunedModel) {
  // All three psum-preservation strategies must walk the same block order
  // and land on identical bits, including with a dead block in the chain.
  DenseEngineFixture f;
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t kk = 0; kk < 12; ++kk) {
      f.fc().weight_mask().at(r, kk) = 0.0f;
    }
  }
  f.fc().apply_mask();

  const auto imm = f.run(PreservationMode::kImmediate);
  const auto task = f.run(PreservationMode::kTaskAtomic);
  const auto acc = f.run(PreservationMode::kAccumulateInVm);
  expect_bit_equal(imm, task, "immediate vs task-atomic");
  expect_bit_equal(imm, acc, "immediate vs accumulate-in-vm");
}

TEST(BsrEdge, FullyPrunedRowTileYieldsBiasOnlyOutputs) {
  // Rows 0..3 lose every weight: their BSR row tile is empty, and the
  // engine output for those classes must be the (requantized) bias alone.
  DenseEngineFixture f;
  const std::vector<float> baseline = f.run(PreservationMode::kImmediate);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t kk = 0; kk < 24; ++kk) {
      f.fc().weight_mask().at(r, kk) = 0.0f;
    }
  }
  f.fc().apply_mask();
  const auto logits = f.run(PreservationMode::kImmediate);
  ASSERT_EQ(8u, logits.size());
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(logits[c], f.fc().bias()[c], 0.02)
        << "empty-row output " << c << " should be bias-only";
  }
  // Untouched rows keep their original values (independent row tiles;
  // tolerance covers the recalibrated requantization scale).
  for (std::size_t c = 4; c < 8; ++c) {
    EXPECT_NEAR(logits[c], baseline[c], 0.02) << "row " << c;
  }
}

}  // namespace
}  // namespace iprune
