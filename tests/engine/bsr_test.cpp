#include "engine/bsr.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace iprune::engine {
namespace {

TilePlan small_plan() {
  TilePlan plan;
  plan.rows = 8;
  plan.cols = 4;
  plan.k = 24;
  plan.br = 4;
  plan.bk = 12;
  plan.bc = 4;
  return plan;
}

nn::QTensor random_quantized(const TilePlan& plan, std::uint64_t seed) {
  util::Rng rng(seed);
  nn::Tensor dense({plan.rows, plan.k});
  for (std::size_t i = 0; i < dense.numel(); ++i) {
    dense[i] = static_cast<float>(rng.normal());
  }
  return nn::quantize_q15(dense);
}

TEST(Bsr, FullMaskKeepsEveryBlock) {
  const TilePlan plan = small_plan();
  const BlockMask mask(plan.row_tiles(), plan.k_tiles(), true);
  const nn::QTensor dense = random_quantized(plan, 1);
  const BsrMatrix bsr = BsrMatrix::build(dense, mask, plan);
  EXPECT_EQ(bsr.nnz_blocks(), plan.row_tiles() * plan.k_tiles());
  EXPECT_EQ(bsr.block_elems(), plan.br * plan.bk);
  EXPECT_EQ(bsr.row_begin(0), 0u);
  EXPECT_EQ(bsr.row_end(plan.row_tiles() - 1), bsr.nnz_blocks());
}

TEST(Bsr, RoundTripsThroughToDense) {
  const TilePlan plan = small_plan();
  BlockMask mask(plan.row_tiles(), plan.k_tiles(), true);
  mask.set(0, 1, false);
  nn::QTensor dense = random_quantized(plan, 2);
  // Zero the masked block so the round trip is exact.
  for (std::size_t r = 0; r < plan.br; ++r) {
    for (std::size_t kk = plan.bk; kk < 2 * plan.bk; ++kk) {
      dense.data[r * plan.k + kk] = 0;
    }
  }
  const BsrMatrix bsr = BsrMatrix::build(dense, mask, plan);
  EXPECT_EQ(bsr.nnz_blocks(), plan.row_tiles() * plan.k_tiles() - 1);
  const nn::QTensor back = bsr.to_dense(plan, dense.scale);
  EXPECT_EQ(back.data, dense.data);
}

TEST(Bsr, ColumnIndicesIdentifyKTiles) {
  const TilePlan plan = small_plan();
  BlockMask mask(plan.row_tiles(), plan.k_tiles(), false);
  mask.set(1, 1, true);
  const nn::QTensor dense = random_quantized(plan, 3);
  const BsrMatrix bsr = BsrMatrix::build(dense, mask, plan);
  ASSERT_EQ(bsr.nnz_blocks(), 1u);
  EXPECT_EQ(bsr.row_begin(0), bsr.row_end(0));  // row 0 empty
  EXPECT_EQ(bsr.col(bsr.row_begin(1)), 1u);
}

TEST(Bsr, DeviceBytesCountValuesAndIndices) {
  const TilePlan plan = small_plan();
  const BlockMask mask(plan.row_tiles(), plan.k_tiles(), true);
  const nn::QTensor dense = random_quantized(plan, 4);
  const BsrMatrix bsr = BsrMatrix::build(dense, mask, plan);
  const std::size_t expected =
      bsr.nnz_blocks() * plan.br * plan.bk * 2  // int16 values
      + bsr.nnz_blocks() * 2                    // uint16 col indices
      + (plan.row_tiles() + 1) * 2;             // uint16 row pointers
  EXPECT_EQ(bsr.device_bytes(), expected);
}

TEST(Bsr, PruningShrinksDeviceBytes) {
  const TilePlan plan = small_plan();
  const nn::QTensor dense = random_quantized(plan, 5);
  const BlockMask full(plan.row_tiles(), plan.k_tiles(), true);
  BlockMask half(plan.row_tiles(), plan.k_tiles(), true);
  half.set(0, 0, false);
  half.set(1, 1, false);
  EXPECT_LT(BsrMatrix::build(dense, half, plan).device_bytes(),
            BsrMatrix::build(dense, full, plan).device_bytes());
}

TEST(Bsr, RaggedEdgeBlocksZeroPadded) {
  TilePlan plan;
  plan.rows = 6;  // ragged: 4 + 2
  plan.cols = 1;
  plan.k = 15;  // ragged: 12 + 3
  plan.br = 4;
  plan.bk = 12;
  plan.bc = 1;
  nn::QTensor dense;
  dense.shape = {6, 15};
  dense.scale = 1.0f;
  dense.data.assign(90, 7);
  const BlockMask mask(plan.row_tiles(), plan.k_tiles(), true);
  const BsrMatrix bsr = BsrMatrix::build(dense, mask, plan);
  // Last block (rt=1, kt=1) holds rows 4..5 x k 12..14 = real 2x3 extent
  // inside a padded 4x12 block.
  const std::int16_t* block = bsr.block(bsr.nnz_blocks() - 1);
  EXPECT_EQ(block[0], 7);                  // (r=0, kk=0) real
  EXPECT_EQ(block[3], 0);                  // (r=0, kk=3) padding
  EXPECT_EQ(block[2 * plan.bk], 0);        // (r=2, ...) padding row
  const nn::QTensor back = bsr.to_dense(plan, 1.0f);
  EXPECT_EQ(back.data, dense.data);
}

TEST(Bsr, ShapeMismatchThrows) {
  const TilePlan plan = small_plan();
  const BlockMask mask(plan.row_tiles(), plan.k_tiles(), true);
  nn::QTensor wrong;
  wrong.shape = {4, 4};
  wrong.data.assign(16, 0);
  EXPECT_THROW(BsrMatrix::build(wrong, mask, plan), std::invalid_argument);
}

}  // namespace
}  // namespace iprune::engine
