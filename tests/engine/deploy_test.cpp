// Deployment/NVM-layout checks: region accounting, aliasing, quantized
// weight placement, and scale propagation.

#include "engine/deploy.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "power/supply.hpp"

namespace iprune::engine {
namespace {

struct Fixture {
  nn::Graph graph{nn::Shape{2, 4, 4}};
  device::Msp430Device device{device::DeviceConfig::msp430fr5994(),
                              power::SupplyPresets::continuous()};
  nn::Tensor calib{nn::Shape{4, 2, 4, 4}};

  Fixture() {
    util::Rng rng(21);
    auto conv = graph.add(std::make_unique<nn::Conv2d>(
                              "conv",
                              nn::Conv2dSpec{.in_channels = 2,
                                             .out_channels = 3,
                                             .kernel_h = 3, .kernel_w = 3,
                                             .pad_h = 1, .pad_w = 1},
                              rng),
                          {graph.input()});
    auto relu = graph.add(std::make_unique<nn::Relu>("relu"), {conv});
    auto flat = graph.add(std::make_unique<nn::Flatten>("flat"), {relu});
    auto fc = graph.add(std::make_unique<nn::Dense>("fc", 48, 5, rng),
                        {flat});
    graph.set_output(fc);
    for (std::size_t i = 0; i < calib.numel(); ++i) {
      calib[i] = static_cast<float>((static_cast<int>(i % 17) - 8)) * 0.1f;
    }
  }
};

TEST(Deploy, AllocatesWithinNvm) {
  Fixture f;
  DeployedModel model(f.graph, EngineConfig{}, f.device, f.calib);
  EXPECT_LE(f.device.nvm().allocated(), f.device.nvm().capacity());
  EXPECT_GT(model.model_bytes(), 0u);
}

TEST(Deploy, ModelBytesEqualsSumOfGemmDeployments) {
  Fixture f;
  DeployedModel model(f.graph, EngineConfig{}, f.device, f.calib);
  std::size_t expected = 0;
  for (nn::NodeId id = 0; id < model.lowered().nodes.size(); ++id) {
    if (model.node(id).gemm != nullptr) {
      expected += model.node(id).gemm->device_bytes();
    }
  }
  EXPECT_EQ(model.model_bytes(), expected);
}

TEST(Deploy, AliasNodesShareBuffers) {
  Fixture f;
  DeployedModel model(f.graph, EngineConfig{}, f.device, f.calib);
  // relu (folded -> alias of conv) and flatten (alias of relu).
  EXPECT_EQ(model.node(2).buffer, model.node(1).buffer);
  EXPECT_EQ(model.node(3).buffer, model.node(2).buffer);
  // Distinct nodes otherwise.
  EXPECT_NE(model.node(1).buffer, model.node(0).buffer);
  EXPECT_NE(model.node(4).buffer, model.node(1).buffer);
}

TEST(Deploy, WeightsLandInNvmMatchingBsr) {
  Fixture f;
  DeployedModel model(f.graph, EngineConfig{}, f.device, f.calib);
  const NodeDeployment& nd = model.node(1);  // conv
  ASSERT_NE(nd.gemm, nullptr);
  const GemmDeployment& gd = *nd.gemm;
  for (std::size_t i = 0; i < gd.bsr.values().size(); ++i) {
    EXPECT_EQ(f.device.nvm().read_i16(gd.values_addr + i * 2),
              gd.bsr.values()[i]);
  }
  for (std::size_t i = 0; i < gd.bias_q.size(); ++i) {
    EXPECT_EQ(f.device.nvm().read_i32(gd.bias_addr + i * 4), gd.bias_q[i]);
  }
}

TEST(Deploy, ScalesArePositiveAndPropagated) {
  Fixture f;
  DeployedModel model(f.graph, EngineConfig{}, f.device, f.calib);
  for (nn::NodeId id = 0; id < model.lowered().nodes.size(); ++id) {
    EXPECT_GT(model.node(id).scale, 0.0f) << "node " << id;
  }
  EXPECT_EQ(model.input_scale(), model.node(0).scale);
  EXPECT_EQ(model.output_scale(), model.node(4).scale);
  // Folded relu / flatten inherit the conv scale.
  EXPECT_EQ(model.node(2).scale, model.node(1).scale);
  EXPECT_EQ(model.node(3).scale, model.node(1).scale);
}

TEST(Deploy, PrunedModelAllocatesFewerWeightBytes) {
  Fixture unpruned;
  DeployedModel full(unpruned.graph, EngineConfig{}, unpruned.device,
                     unpruned.calib);

  Fixture pruned;
  auto& conv = dynamic_cast<nn::Conv2d&>(pruned.graph.layer(1));
  // Kill a whole (row-tile, k-tile) block: all rows, first 12 k entries
  // (one channel alone would leave its block partially alive).
  for (std::size_t r = 0; r < conv.weight().dim(0); ++r) {
    for (std::size_t kk = 0; kk < 12; ++kk) {
      conv.weight_mask().at(r, kk) = 0.0f;
    }
  }
  conv.apply_mask();
  DeployedModel sparse(pruned.graph, EngineConfig{}, pruned.device,
                       pruned.calib);
  EXPECT_LT(sparse.model_bytes(), full.model_bytes());
  EXPECT_LT(sparse.total_macs(), full.total_macs());
}

TEST(Deploy, RejectsOversizedModel) {
  // A graph whose activations exceed 512 KB must fail deployment loudly.
  util::Rng rng(22);
  nn::Graph g({64, 64, 64});  // 256K elements -> 512 KB activations alone
  auto conv = g.add(std::make_unique<nn::Conv2d>(
                        "conv",
                        nn::Conv2dSpec{.in_channels = 64,
                                       .out_channels = 64, .kernel_h = 1,
                                       .kernel_w = 1},
                        rng),
                    {g.input()});
  g.set_output(conv);
  device::Msp430Device dev(device::DeviceConfig::msp430fr5994(),
                           power::SupplyPresets::continuous());
  nn::Tensor calib({1, 64, 64, 64});
  EXPECT_THROW(DeployedModel(g, EngineConfig{}, dev, calib),
               std::runtime_error);
}

TEST(Deploy, LayoutIsValidAndRegionsRecorded) {
  Fixture f;
  DeployedModel model(f.graph, EngineConfig{}, f.device, f.calib);
  EXPECT_EQ(model.validate_layout(f.device.nvm()), "");
  // progress + 3 real buffers (input, conv, fc) + 4 conv arrays + 4 fc
  // arrays + psum scratch.
  EXPECT_GE(model.regions().size(), 10u);
  std::size_t total = 0;
  for (const auto& region : model.regions()) {
    EXPECT_GT(region.bytes, 0u) << region.label;
    total += region.bytes;
  }
  EXPECT_LE(total, f.device.nvm().capacity());
}

TEST(Deploy, TotalsMatchPrunableLayerSums) {
  Fixture f;
  DeployedModel model(f.graph, EngineConfig{}, f.device, f.calib);
  const auto layers = prunable_layers(f.graph, EngineConfig{},
                                      f.device.config().memory);
  std::size_t macs = 0, outputs = 0;
  for (const auto& l : layers) {
    macs += l.macs();
    outputs += l.acc_outputs();
  }
  EXPECT_EQ(model.total_macs(), macs);
  EXPECT_EQ(model.total_acc_outputs(), outputs);
}

}  // namespace
}  // namespace iprune::engine
