// Property sweep over engine/tile/power configurations: for every
// combination, intermittent execution must (a) produce logits identical
// to the continuous-power reference, (b) report accelerator outputs equal
// to the analytic criterion, and (c) be fully deterministic.

#include <gtest/gtest.h>

#include <memory>

#include "engine/engine.hpp"
#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/pool.hpp"
#include "power/supply.hpp"

namespace iprune {
namespace {

struct EngineParams {
  std::size_t max_k_per_op;
  std::size_t block_rows;
  double power_w;
  double capacitance_f;
};

void PrintTo(const EngineParams& p, std::ostream* os) {
  *os << "bk" << p.max_k_per_op << "_br" << p.block_rows << "_"
      << p.power_w * 1e3 << "mW_" << p.capacitance_f * 1e6 << "uF";
}

nn::Graph make_graph() {
  util::Rng rng(7);
  nn::Graph g({2, 6, 6});
  auto c1 = g.add(std::make_unique<nn::Conv2d>(
                      "c1",
                      nn::Conv2dSpec{.in_channels = 2, .out_channels = 5,
                                     .kernel_h = 3, .kernel_w = 3,
                                     .pad_h = 1, .pad_w = 1},
                      rng),
                  {g.input()});
  auto r1 = g.add(std::make_unique<nn::Relu>("r1"), {c1});
  auto p1 = g.add(std::make_unique<nn::MaxPool2d>("p1",
                                                  nn::PoolSpec{2, 2, 2}),
                  {r1});
  auto flat = g.add(std::make_unique<nn::Flatten>("flat"), {p1});
  auto fc = g.add(std::make_unique<nn::Dense>("fc", 5 * 9, 4, rng), {flat});
  g.set_output(fc);
  return g;
}

nn::Tensor make_sample() {
  util::Rng rng(9);
  nn::Tensor s({2, 6, 6});
  for (std::size_t i = 0; i < s.numel(); ++i) {
    s[i] = static_cast<float>(rng.normal(0.0, 0.4));
  }
  return s;
}

class EngineProperties : public ::testing::TestWithParam<EngineParams> {};

TEST_P(EngineProperties, CorrectCountedAndDeterministic) {
  const EngineParams& p = GetParam();
  nn::Graph graph = make_graph();
  util::Rng rng(11);
  nn::Tensor calib({6, 2, 6, 6});
  for (std::size_t i = 0; i < calib.numel(); ++i) {
    calib[i] = static_cast<float>(rng.normal(0.0, 0.4));
  }
  const nn::Tensor sample = make_sample();

  engine::EngineConfig cfg;
  cfg.max_k_per_op = p.max_k_per_op;
  cfg.block_rows = p.block_rows;

  // Continuous-power reference logits.
  std::vector<float> reference;
  {
    device::Msp430Device dev(device::DeviceConfig::msp430fr5994(),
                             power::SupplyPresets::continuous());
    engine::DeployedModel model(graph, cfg, dev, calib);
    engine::IntermittentEngine eng(model, dev);
    reference = eng.run(sample).logits;
  }

  power::BufferConfig buffer;
  buffer.capacitance_f = p.capacitance_f;
  auto run_once = [&]() {
    device::Msp430Device dev(
        device::DeviceConfig::msp430fr5994(),
        std::make_unique<power::ConstantSupply>(p.power_w), buffer);
    engine::DeployedModel model(graph, cfg, dev, calib);
    engine::IntermittentEngine eng(model, dev);
    auto result = eng.run(sample);
    EXPECT_EQ(result.stats.acc_outputs, model.total_acc_outputs());
    return result;
  };

  const auto a = run_once();
  const auto b = run_once();
  ASSERT_TRUE(a.stats.completed);

  // (a) power failures never change the computed result.
  ASSERT_EQ(a.logits.size(), reference.size());
  for (std::size_t c = 0; c < reference.size(); ++c) {
    EXPECT_FLOAT_EQ(a.logits[c], reference[c]) << "class " << c;
  }
  // (c) full determinism, including timing.
  EXPECT_EQ(a.logits, b.logits);
  EXPECT_DOUBLE_EQ(a.stats.latency_s, b.stats.latency_s);
  EXPECT_EQ(a.stats.power_failures, b.stats.power_failures);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineProperties,
    ::testing::Values(
        EngineParams{12, 4, 8e-3, 100e-6},
        EngineParams{12, 4, 4e-3, 100e-6},
        EngineParams{4, 4, 4e-3, 100e-6},
        EngineParams{24, 2, 8e-3, 100e-6},
        EngineParams{12, 8, 4e-3, 47e-6},
        EngineParams{2, 1, 8e-3, 47e-6},
        EngineParams{48, 4, 4e-3, 220e-6},
        EngineParams{12, 4, 2e-3, 100e-6}),
    [](const ::testing::TestParamInfo<EngineParams>& info) {
      return "bk" + std::to_string(info.param.max_k_per_op) + "_br" +
             std::to_string(info.param.block_rows) + "_uW" +
             std::to_string(static_cast<int>(info.param.power_w * 1e6)) +
             "_uF" +
             std::to_string(
                 static_cast<int>(info.param.capacitance_f * 1e6));
    });

}  // namespace
}  // namespace iprune
