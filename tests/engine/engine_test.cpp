// End-to-end engine correctness: the intermittent engine must produce the
// same results as the float graph (up to quantization), and — the key
// intermittent-computing invariant — identical results with and without
// power failures.

#include <gtest/gtest.h>

#include <memory>

#include "data/synthetic.hpp"
#include "engine/engine.hpp"
#include "nn/activation.hpp"
#include "nn/concat.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/pool.hpp"
#include "nn/trainer.hpp"
#include "power/supply.hpp"

namespace iprune {
namespace {

using engine::EngineConfig;
using engine::PreservationMode;

/// Small multi-path model covering every lowered node kind: conv, pool,
/// fire-style concat, dense, folded and standalone ReLU, flatten.
nn::Graph make_test_graph(util::Rng& rng) {
  nn::Graph g({2, 8, 8});
  auto conv1 = g.add(std::make_unique<nn::Conv2d>(
                         "conv1",
                         nn::Conv2dSpec{.in_channels = 2, .out_channels = 6,
                                        .kernel_h = 3, .kernel_w = 3,
                                        .pad_h = 1, .pad_w = 1},
                         rng),
                     {g.input()});
  auto relu1 = g.add(std::make_unique<nn::Relu>("relu1"), {conv1});
  auto pool = g.add(std::make_unique<nn::MaxPool2d>("pool",
                                                    nn::PoolSpec{2, 2, 2}),
                    {relu1});
  auto b1 = g.add(std::make_unique<nn::Conv2d>(
                      "branch1x1",
                      nn::Conv2dSpec{.in_channels = 6, .out_channels = 4,
                                     .kernel_h = 1, .kernel_w = 1},
                      rng),
                  {pool});
  auto b1r = g.add(std::make_unique<nn::Relu>("branch1x1_relu"), {b1});
  auto b3 = g.add(std::make_unique<nn::Conv2d>(
                      "branch3x3",
                      nn::Conv2dSpec{.in_channels = 6, .out_channels = 4,
                                     .kernel_h = 3, .kernel_w = 3,
                                     .pad_h = 1, .pad_w = 1},
                      rng),
                  {pool});
  auto b3r = g.add(std::make_unique<nn::Relu>("branch3x3_relu"), {b3});
  auto cat = g.add(std::make_unique<nn::Concat>("concat"), {b1r, b3r});
  auto avg = g.add(std::make_unique<nn::AvgPool2d>("avg",
                                                   nn::PoolSpec{2, 2, 2}),
                   {cat});
  auto flat = g.add(std::make_unique<nn::Flatten>("flatten"), {avg});
  auto fc = g.add(std::make_unique<nn::Dense>("fc", 8 * 2 * 2, 5, rng),
                  {flat});
  g.set_output(fc);
  return g;
}

nn::Tensor make_input_batch(util::Rng& rng, std::size_t count) {
  nn::Tensor batch({count, 2, 8, 8});
  for (std::size_t i = 0; i < batch.numel(); ++i) {
    batch[i] = static_cast<float>(rng.normal(0.0, 0.5));
  }
  return batch;
}

nn::Tensor slice_sample(const nn::Tensor& batch, std::size_t index) {
  nn::Shape shape = batch.shape();
  shape.erase(shape.begin());
  nn::Tensor sample(shape);
  const std::size_t elems = sample.numel();
  for (std::size_t i = 0; i < elems; ++i) {
    sample[i] = batch[index * elems + i];
  }
  return sample;
}

device::Msp430Device make_device(double power_w,
                                 power::BufferConfig buffer = {}) {
  return device::Msp430Device(
      device::DeviceConfig::msp430fr5994(),
      std::make_unique<power::ConstantSupply>(power_w), buffer);
}

class EngineCorrectness : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<util::Rng>(99);
    graph_ = std::make_unique<nn::Graph>(make_test_graph(*rng_));
    calib_ = make_input_batch(*rng_, 16);
  }

  std::unique_ptr<util::Rng> rng_;
  std::unique_ptr<nn::Graph> graph_;
  nn::Tensor calib_;
};

TEST_F(EngineCorrectness, MatchesFloatGraphUnderContinuousPower) {
  auto device = make_device(power::SupplyPresets::kContinuousW);
  EngineConfig config;
  engine::DeployedModel model(*graph_, config, device, calib_);
  engine::IntermittentEngine eng(model, device);

  const nn::Tensor batch = make_input_batch(*rng_, 4);
  const nn::Tensor float_logits = graph_->forward(batch);
  for (std::size_t n = 0; n < 4; ++n) {
    const auto result = eng.run(slice_sample(batch, n));
    ASSERT_TRUE(result.stats.completed);
    ASSERT_EQ(result.logits.size(), 5u);
    // Same argmax and close values (quantization-limited).
    std::size_t engine_best = 0, float_best = 0;
    for (std::size_t c = 1; c < 5; ++c) {
      if (result.logits[c] > result.logits[engine_best]) {
        engine_best = c;
      }
      if (float_logits.at(n, c) > float_logits.at(n, float_best)) {
        float_best = c;
      }
    }
    EXPECT_EQ(engine_best, float_best) << "sample " << n;
    for (std::size_t c = 0; c < 5; ++c) {
      EXPECT_NEAR(result.logits[c], float_logits.at(n, c), 0.08)
          << "sample " << n << " class " << c;
    }
  }
}

TEST_F(EngineCorrectness, IntermittentResultsIdenticalToContinuous) {
  // The defining invariant of intermittent inference: power failures must
  // not change the computed result, only the latency.
  EngineConfig config;

  auto continuous = make_device(power::SupplyPresets::kContinuousW);
  engine::DeployedModel model_c(*graph_, config, continuous, calib_);
  engine::IntermittentEngine eng_c(model_c, continuous);

  auto weak = make_device(power::SupplyPresets::kWeakW);
  engine::DeployedModel model_w(*graph_, config, weak, calib_);
  engine::IntermittentEngine eng_w(model_w, weak);

  const nn::Tensor batch = make_input_batch(*rng_, 3);
  for (std::size_t n = 0; n < 3; ++n) {
    const auto sample = slice_sample(batch, n);
    const auto r_cont = eng_c.run(sample);
    const auto r_weak = eng_w.run(sample);
    ASSERT_TRUE(r_cont.stats.completed);
    ASSERT_TRUE(r_weak.stats.completed);
    EXPECT_GT(r_weak.stats.power_failures, 0u)
        << "weak power should cause failures";
    ASSERT_EQ(r_cont.logits.size(), r_weak.logits.size());
    for (std::size_t c = 0; c < r_cont.logits.size(); ++c) {
      EXPECT_FLOAT_EQ(r_cont.logits[c], r_weak.logits[c])
          << "sample " << n << " class " << c;
    }
    EXPECT_GT(r_weak.stats.latency_s, r_cont.stats.latency_s);
    EXPECT_GT(r_weak.stats.off_s, 0.0);
  }
}

TEST_F(EngineCorrectness, AccOutputStatsMatchAnalyticCriterion) {
  auto device = make_device(power::SupplyPresets::kContinuousW);
  EngineConfig config;
  engine::DeployedModel model(*graph_, config, device, calib_);
  engine::IntermittentEngine eng(model, device);

  const auto result = eng.run(slice_sample(calib_, 0));
  EXPECT_EQ(result.stats.acc_outputs, model.total_acc_outputs())
      << "engine-measured accelerator outputs must equal the analytic "
         "criterion (single source of truth)";
}

TEST_F(EngineCorrectness, PrunedBlocksAreSkippedAndReduceWork) {
  // Zero out a block-aligned region of branch3x3's mask and check both
  // results-consistency and that accelerator outputs shrink.
  auto& conv = dynamic_cast<nn::Conv2d&>(graph_->layer(6));
  ASSERT_EQ(conv.name(), "branch3x3");

  EngineConfig config;
  auto device_full = make_device(power::SupplyPresets::kContinuousW);
  engine::DeployedModel full(*graph_, config, device_full, calib_);
  const std::size_t outputs_full = full.total_acc_outputs();

  // Prune the second k-block of every row.
  const auto plans = engine::prunable_layers(
      *graph_, config, device_full.config().memory);
  const engine::TilePlan* plan = nullptr;
  for (const auto& p : plans) {
    if (p.name == "branch3x3") {
      plan = &p.plan;
    }
  }
  ASSERT_NE(plan, nullptr);
  ASSERT_GE(plan->k_tiles(), 2u);
  for (std::size_t r = 0; r < conv.weight().dim(0); ++r) {
    for (std::size_t kk = plan->bk; kk < 2 * plan->bk; ++kk) {
      conv.weight_mask().at(r, kk) = 0.0f;
    }
  }
  conv.apply_mask();

  auto device_pruned = make_device(power::SupplyPresets::kContinuousW);
  engine::DeployedModel pruned(*graph_, config, device_pruned, calib_);
  EXPECT_LT(pruned.total_acc_outputs(), outputs_full);
  EXPECT_LT(pruned.model_bytes(), full.model_bytes());

  // Engine output still matches the (masked) float graph.
  engine::IntermittentEngine eng(pruned, device_pruned);
  const nn::Tensor batch = make_input_batch(*rng_, 2);
  const nn::Tensor float_logits = graph_->forward(batch);
  const auto result = eng.run(slice_sample(batch, 0));
  ASSERT_TRUE(result.stats.completed);
  for (std::size_t c = 0; c < 5; ++c) {
    EXPECT_NEAR(result.logits[c], float_logits.at(0, c), 0.08);
  }
  EXPECT_EQ(result.stats.acc_outputs, pruned.total_acc_outputs());
}

TEST_F(EngineCorrectness, AccumulateModeMatchesImmediateMode) {
  EngineConfig immediate;
  immediate.mode = PreservationMode::kImmediate;
  EngineConfig accumulate;
  accumulate.mode = PreservationMode::kAccumulateInVm;

  auto dev_imm = make_device(power::SupplyPresets::kContinuousW);
  engine::DeployedModel model_imm(*graph_, immediate, dev_imm, calib_);
  engine::IntermittentEngine eng_imm(model_imm, dev_imm);

  auto dev_acc = make_device(power::SupplyPresets::kContinuousW);
  engine::DeployedModel model_acc(*graph_, accumulate, dev_acc, calib_);
  engine::IntermittentEngine eng_acc(model_acc, dev_acc);

  const auto sample = slice_sample(calib_, 1);
  const auto r_imm = eng_imm.run(sample);
  const auto r_acc = eng_acc.run(sample);
  ASSERT_TRUE(r_imm.stats.completed);
  ASSERT_TRUE(r_acc.stats.completed);
  for (std::size_t c = 0; c < r_imm.logits.size(); ++c) {
    EXPECT_FLOAT_EQ(r_imm.logits[c], r_acc.logits[c]);
  }
  // The motivating observation (Fig. 2): immediate preservation writes far
  // more NVM bytes and its exposed latency is write-dominated.
  EXPECT_GT(r_imm.stats.nvm_bytes_written, 5 * r_acc.stats.nvm_bytes_written);
  EXPECT_GT(r_imm.stats.nvm_write_s, r_imm.stats.lea_s);
  EXPECT_LT(r_acc.stats.nvm_write_s, r_acc.stats.nvm_read_s + r_acc.stats.lea_s);
}

TEST_F(EngineCorrectness, AccumulateModeCannotTerminateUnderWeakPower) {
  // The paper's motivation for progress preservation: accumulating in VM
  // restarts from scratch on every power failure and never finishes.
  EngineConfig accumulate;
  accumulate.mode = PreservationMode::kAccumulateInVm;

  // This test graph is tiny, so first measure the energy of one inference
  // and size the capacitor such that a whole inference cannot fit in one
  // power cycle (as real models cannot) while individual operations and
  // the reboot still can.
  double full_energy_j = 0.0;
  {
    auto probe_dev = make_device(power::SupplyPresets::kContinuousW);
    engine::DeployedModel probe_model(*graph_, accumulate, probe_dev, calib_);
    engine::IntermittentEngine probe_eng(probe_model, probe_dev);
    full_energy_j = probe_eng.run(slice_sample(calib_, 0)).stats.energy_j;
  }
  power::BufferConfig small_buffer;
  const double usable_target = full_energy_j * 0.5;
  small_buffer.capacitance_f =
      usable_target /
      (0.5 * (small_buffer.v_on * small_buffer.v_on -
              small_buffer.v_off * small_buffer.v_off));
  ASSERT_GT(usable_target, 10e-6)
      << "test graph too small to exercise nontermination";
  auto device = make_device(power::SupplyPresets::kWeakW, small_buffer);
  engine::DeployedModel model(*graph_, accumulate, device, calib_);
  engine::IntermittentEngine eng(model, device);
  eng.max_restarts = 8;

  const auto result = eng.run(slice_sample(calib_, 0));
  EXPECT_FALSE(result.stats.completed);
  EXPECT_GE(result.stats.restarts, 8u);
}

TEST_F(EngineCorrectness, TaskAtomicModeMatchesImmediateResults) {
  // SONIC/TAILS-style task preservation must compute identical results to
  // HAWAII-style per-job preservation, under both continuous and weak
  // power, while writing fewer progress-indicator bytes.
  EngineConfig immediate;
  immediate.mode = PreservationMode::kImmediate;
  EngineConfig task;
  task.mode = PreservationMode::kTaskAtomic;

  const auto sample = slice_sample(calib_, 2);

  auto run_mode = [&](const EngineConfig& cfg, double power_w) {
    auto dev = make_device(power_w);
    engine::DeployedModel model(*graph_, cfg, dev, calib_);
    engine::IntermittentEngine eng(model, dev);
    return eng.run(sample);
  };

  const auto imm_cont = run_mode(immediate,
                                 power::SupplyPresets::kContinuousW);
  const auto task_cont = run_mode(task, power::SupplyPresets::kContinuousW);
  // Task mode preserves so much less that this tiny graph finishes within
  // one standard buffer charge; shrink the capacitor so failures occur.
  power::BufferConfig small_buffer;
  small_buffer.capacitance_f = 22e-6;
  const auto task_weak = [&] {
    auto dev = make_device(power::SupplyPresets::kWeakW, small_buffer);
    engine::DeployedModel model(*graph_, task, dev, calib_);
    engine::IntermittentEngine eng(model, dev);
    return eng.run(sample);
  }();

  ASSERT_TRUE(task_cont.stats.completed);
  ASSERT_TRUE(task_weak.stats.completed);
  for (std::size_t c = 0; c < imm_cont.logits.size(); ++c) {
    EXPECT_FLOAT_EQ(task_cont.logits[c], imm_cont.logits[c]) << c;
    EXPECT_FLOAT_EQ(task_weak.logits[c], imm_cont.logits[c]) << c;
  }
  // Same accelerator outputs, fewer indicator writes -> fewer NVM bytes.
  EXPECT_EQ(task_cont.stats.acc_outputs, imm_cont.stats.acc_outputs);
  EXPECT_LT(task_cont.stats.nvm_bytes_written,
            imm_cont.stats.nvm_bytes_written);
  // Under weak power the inference duty-cycles yet still completes.
  // (Whether any failure lands mid-task — and thus re-executes jobs —
  // depends on where the buffer empties; bench_ablation_preservation
  // shows the re-execution cost at workload scale.)
  EXPECT_GT(task_weak.stats.power_failures, 0u);
}

TEST_F(EngineCorrectness, ImmediateModeLosesAtMostOneJobPerFailure) {
  EngineConfig config;
  auto dev = make_device(power::SupplyPresets::kWeakW);
  engine::DeployedModel model(*graph_, config, dev, calib_);
  engine::IntermittentEngine eng(model, dev);
  const auto result = eng.run(slice_sample(calib_, 0));
  ASSERT_TRUE(result.stats.completed);
  ASSERT_GT(result.stats.power_failures, 0u);
  EXPECT_LE(result.stats.reexecuted_jobs, result.stats.power_failures)
      << "HAWAII-style preservation re-executes at most the single "
         "interrupted job per power failure";
}

TEST_F(EngineCorrectness, PerNodeLatencyCoversTotal) {
  auto device = make_device(power::SupplyPresets::kContinuousW);
  EngineConfig config;
  engine::DeployedModel model(*graph_, config, device, calib_);
  engine::IntermittentEngine eng(model, device);
  const auto result = eng.run(slice_sample(calib_, 0));
  ASSERT_FALSE(result.per_node.empty());
  double total = 0.0;
  for (const auto& node : result.per_node) {
    EXPECT_GT(node.latency_s, 0.0) << node.name;
    total += node.latency_s;
  }
  // Per-node time plus the input load accounts for the whole inference.
  EXPECT_LE(total, result.stats.latency_s + 1e-12);
  EXPECT_GT(total, result.stats.latency_s * 0.9);
  // Alias nodes (folded relu, flatten) are not listed.
  for (const auto& node : result.per_node) {
    EXPECT_EQ(node.name.find("flatten"), std::string::npos);
  }
}

TEST_F(EngineCorrectness, ModelFitsNvmBudget) {
  auto device = make_device(power::SupplyPresets::kContinuousW);
  EngineConfig config;
  engine::DeployedModel model(*graph_, config, device, calib_);
  EXPECT_LE(device.nvm().allocated(), device.nvm().capacity());
  EXPECT_GT(model.model_bytes(), 0u);
}

}  // namespace
}  // namespace iprune
