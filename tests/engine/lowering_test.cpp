#include "engine/lowering.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "nn/activation.hpp"
#include "nn/concat.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/pool.hpp"

namespace iprune::engine {
namespace {

nn::Graph conv_relu_fc(util::Rng& rng) {
  nn::Graph g({2, 6, 6});
  auto conv = g.add(std::make_unique<nn::Conv2d>(
                        "conv",
                        nn::Conv2dSpec{.in_channels = 2, .out_channels = 4,
                                       .kernel_h = 3, .kernel_w = 3,
                                       .pad_h = 1, .pad_w = 1},
                        rng),
                    {g.input()});
  auto relu = g.add(std::make_unique<nn::Relu>("relu"), {conv});
  auto pool = g.add(std::make_unique<nn::MaxPool2d>("pool",
                                                    nn::PoolSpec{2, 2, 2}),
                    {relu});
  auto flat = g.add(std::make_unique<nn::Flatten>("flat"), {pool});
  auto fc = g.add(std::make_unique<nn::Dense>("fc", 4 * 3 * 3, 5, rng),
                  {flat});
  g.set_output(fc);
  return g;
}

TEST(Lowering, KindsAssignedCorrectly) {
  util::Rng rng(1);
  nn::Graph g = conv_relu_fc(rng);
  EngineConfig cfg;
  const LoweredGraph lowered = lower_graph(g, cfg, device::MemoryConfig{});
  ASSERT_EQ(lowered.nodes.size(), 6u);
  EXPECT_EQ(lowered.at(0).kind, LoweredKind::kAlias);   // input
  EXPECT_EQ(lowered.at(1).kind, LoweredKind::kGemmConv);
  EXPECT_EQ(lowered.at(2).kind, LoweredKind::kAlias);   // folded relu
  EXPECT_TRUE(lowered.at(1).relu_folded);
  EXPECT_EQ(lowered.at(3).kind, LoweredKind::kMaxPool);
  EXPECT_EQ(lowered.at(4).kind, LoweredKind::kAlias);   // flatten
  EXPECT_EQ(lowered.at(5).kind, LoweredKind::kGemmDense);
  EXPECT_FALSE(lowered.at(5).relu_folded);
}

TEST(Lowering, ConvGeometryCaptured) {
  util::Rng rng(2);
  nn::Graph g = conv_relu_fc(rng);
  EngineConfig cfg;
  const LoweredGraph lowered = lower_graph(g, cfg, device::MemoryConfig{});
  const ConvGeometry& geo = lowered.at(1).conv;
  EXPECT_EQ(geo.in_c, 2u);
  EXPECT_EQ(geo.in_h, 6u);
  EXPECT_EQ(geo.out_h, 6u);
  EXPECT_EQ(geo.pad_h, 1u);
  const TilePlan& plan = lowered.at(1).plan;
  EXPECT_EQ(plan.rows, 4u);
  EXPECT_EQ(plan.cols, 36u);
  EXPECT_EQ(plan.k, 18u);
}

TEST(Lowering, ReluFoldDisabledByConfig) {
  util::Rng rng(3);
  nn::Graph g = conv_relu_fc(rng);
  EngineConfig cfg;
  cfg.fold_relu = false;
  const LoweredGraph lowered = lower_graph(g, cfg, device::MemoryConfig{});
  EXPECT_EQ(lowered.at(2).kind, LoweredKind::kCopyRelu);
  EXPECT_FALSE(lowered.at(1).relu_folded);
}

TEST(Lowering, ReluNotFoldedWhenProducerHasOtherConsumers) {
  // conv output feeds both the relu and a concat: the raw value is
  // observable, so folding would be wrong.
  util::Rng rng(4);
  nn::Graph g({1, 4, 4});
  auto conv = g.add(std::make_unique<nn::Conv2d>(
                        "conv",
                        nn::Conv2dSpec{.in_channels = 1, .out_channels = 2,
                                       .kernel_h = 1, .kernel_w = 1},
                        rng),
                    {g.input()});
  auto relu = g.add(std::make_unique<nn::Relu>("relu"), {conv});
  auto cat = g.add(std::make_unique<nn::Concat>("cat"), {conv, relu});
  g.set_output(cat);
  EngineConfig cfg;
  const LoweredGraph lowered = lower_graph(g, cfg, device::MemoryConfig{});
  EXPECT_EQ(lowered.at(relu).kind, LoweredKind::kCopyRelu);
  EXPECT_FALSE(lowered.at(conv).relu_folded);
  EXPECT_EQ(lowered.at(cat).kind, LoweredKind::kCopyConcat);
}

TEST(Lowering, PrunableLayersExposeWeightsAndMasks) {
  util::Rng rng(5);
  nn::Graph g = conv_relu_fc(rng);
  EngineConfig cfg;
  auto layers = prunable_layers(g, cfg, device::MemoryConfig{});
  ASSERT_EQ(layers.size(), 2u);
  EXPECT_EQ(layers[0].name, "conv");
  EXPECT_TRUE(layers[0].is_conv);
  EXPECT_EQ(layers[1].name, "fc");
  EXPECT_FALSE(layers[1].is_conv);
  EXPECT_EQ(layers[0].total_weights(), 4u * 18u);
  EXPECT_EQ(layers[0].alive_weights(), layers[0].total_weights());

  // Masks are live pointers into the graph.
  layers[1].mask->at(0, 0) = 0.0f;
  auto& fc = dynamic_cast<nn::Dense&>(g.layer(5));
  EXPECT_EQ(fc.weight_mask().at(0, 0), 0.0f);
}

TEST(Lowering, CalibrationScalesFollowAbsMax) {
  util::Rng rng(6);
  nn::Graph g = conv_relu_fc(rng);
  EngineConfig cfg;
  const LoweredGraph lowered = lower_graph(g, cfg, device::MemoryConfig{});
  nn::Tensor batch({4, 2, 6, 6});
  for (std::size_t i = 0; i < batch.numel(); ++i) {
    batch[i] = static_cast<float>((i % 13)) * 0.1f - 0.6f;
  }
  const CalibrationTable table = calibrate(g, lowered, batch);
  ASSERT_EQ(table.node_scale.size(), 6u);
  EXPECT_NEAR(table.scale(0), batch.abs_max() / 32767.0f, 1e-9);
  // Pool and aliases inherit their input's scale.
  EXPECT_EQ(table.scale(2), table.scale(1));  // folded relu alias
  EXPECT_EQ(table.scale(3), table.scale(2));  // max pool
  EXPECT_EQ(table.scale(4), table.scale(3));  // flatten
  for (const float s : table.node_scale) {
    EXPECT_GT(s, 0.0f);
  }
}

TEST(Lowering, GemmSummariesMatchLayerShapes) {
  util::Rng rng(7);
  nn::Graph g = conv_relu_fc(rng);
  EngineConfig cfg;
  auto layers = prunable_layers(g, cfg, device::MemoryConfig{});
  // conv: R=4, S=36, K=18 -> MACs 2592; fc: R=5, S=1, K=36 -> 180.
  EXPECT_EQ(layers[0].macs(), 4u * 36u * 18u);
  EXPECT_EQ(layers[1].macs(), 5u * 36u);
  EXPECT_EQ(layers[0].acc_outputs(),
            4u * 36u * layers[0].plan.k_tiles());
}

}  // namespace
}  // namespace iprune::engine
