// Randomized structural testing: generate random small DAGs (conv / pool
// / fc / fire-style concat in random shapes), deploy them, and require
// the quantized intermittent engine to agree with the float graph and to
// survive weak power bit-identically. Catches lowering bugs that
// hand-written architectures miss (ragged tiles, odd strides, unusual
// channel counts).

#include <gtest/gtest.h>

#include <memory>

#include "engine/engine.hpp"
#include "nn/activation.hpp"
#include "nn/concat.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/pool.hpp"
#include "power/supply.hpp"

namespace iprune {
namespace {

/// Build a random conv stack (optionally with a fire-style fork) ending
/// in a dense classifier. Shapes stay small so the whole sweep is fast.
nn::Graph random_graph(util::Rng& rng) {
  const std::size_t in_c = 1 + rng.uniform_index(3);
  const std::size_t side = 6 + 2 * rng.uniform_index(3);  // 6, 8, 10
  nn::Graph g({in_c, side, side});
  nn::NodeId x = g.input();
  std::size_t channels = in_c;
  std::size_t h = side, w = side;

  const std::size_t conv_count = 1 + rng.uniform_index(2);
  for (std::size_t i = 0; i < conv_count; ++i) {
    const std::size_t out_c = 2 + rng.uniform_index(5);
    const std::size_t kernel = rng.bernoulli(0.5) ? 3 : 1;
    const std::size_t pad = kernel / 2;
    x = g.add(std::make_unique<nn::Conv2d>(
                  "conv" + std::to_string(i),
                  nn::Conv2dSpec{.in_channels = channels,
                                 .out_channels = out_c,
                                 .kernel_h = kernel, .kernel_w = kernel,
                                 .pad_h = pad, .pad_w = pad},
                  rng),
              {x});
    if (rng.bernoulli(0.7)) {
      x = g.add(std::make_unique<nn::Relu>("relu" + std::to_string(i)),
                {x});
    }
    channels = out_c;
  }

  if (rng.bernoulli(0.5) && h >= 4) {
    x = g.add(std::make_unique<nn::MaxPool2d>("pool", nn::PoolSpec{2, 2, 2}),
              {x});
    h /= 2;
    w /= 2;
  }

  if (rng.bernoulli(0.4)) {  // fire-style fork
    const std::size_t e = 2 + rng.uniform_index(3);
    auto b1 = g.add(std::make_unique<nn::Conv2d>(
                        "b1",
                        nn::Conv2dSpec{.in_channels = channels,
                                       .out_channels = e, .kernel_h = 1,
                                       .kernel_w = 1},
                        rng),
                    {x});
    auto b2 = g.add(std::make_unique<nn::Conv2d>(
                        "b2",
                        nn::Conv2dSpec{.in_channels = channels,
                                       .out_channels = e, .kernel_h = 3,
                                       .kernel_w = 3, .pad_h = 1,
                                       .pad_w = 1},
                        rng),
                    {x});
    x = g.add(std::make_unique<nn::Concat>("cat"), {b1, b2});
    channels = 2 * e;
  }

  x = g.add(std::make_unique<nn::Flatten>("flat"), {x});
  const std::size_t features = channels * h * w;
  const std::size_t classes = 2 + rng.uniform_index(6);
  x = g.add(std::make_unique<nn::Dense>("fc", features, classes, rng), {x});
  g.set_output(x);
  return g;
}

class RandomGraphs : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomGraphs, EngineMatchesFloatAndSurvivesWeakPower) {
  util::Rng rng(GetParam());
  nn::Graph graph = random_graph(rng);

  const nn::Shape& in_shape = graph.input_shape();
  nn::Tensor calib({6, in_shape[0], in_shape[1], in_shape[2]});
  for (std::size_t i = 0; i < calib.numel(); ++i) {
    calib[i] = static_cast<float>(rng.normal(0.0, 0.5));
  }
  nn::Tensor sample(in_shape);
  for (std::size_t i = 0; i < sample.numel(); ++i) {
    sample[i] = static_cast<float>(rng.normal(0.0, 0.5));
  }

  engine::EngineConfig cfg;
  // Float reference (argmax + tolerance).
  nn::Tensor batch({1, in_shape[0], in_shape[1], in_shape[2]});
  for (std::size_t i = 0; i < sample.numel(); ++i) {
    batch[i] = sample[i];
  }
  const nn::Tensor float_logits = graph.forward(batch);

  auto run_with = [&](std::unique_ptr<power::PowerSupply> supply) {
    device::Msp430Device dev(device::DeviceConfig::msp430fr5994(),
                             std::move(supply));
    engine::DeployedModel model(graph, cfg, dev, calib);
    EXPECT_EQ(model.validate_layout(dev.nvm()), "");
    engine::IntermittentEngine eng(model, dev);
    auto result = eng.run(sample);
    EXPECT_EQ(result.stats.acc_outputs, model.total_acc_outputs());
    return result;
  };

  const auto cont = run_with(power::SupplyPresets::continuous());
  ASSERT_TRUE(cont.stats.completed);
  const float span = float_logits.abs_max();
  for (std::size_t c = 0; c < cont.logits.size(); ++c) {
    EXPECT_NEAR(cont.logits[c], float_logits.at(0, c),
                0.02f * std::max(1.0f, span))
        << "seed " << GetParam() << " class " << c;
  }

  const auto weak = run_with(power::SupplyPresets::weak());
  ASSERT_TRUE(weak.stats.completed);
  EXPECT_EQ(weak.logits, cont.logits)
      << "power failures changed the result (seed " << GetParam() << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGraphs,
                         ::testing::Range<std::uint64_t>(1000, 1016));

}  // namespace
}  // namespace iprune
