#include "engine/tile_plan.hpp"

#include <gtest/gtest.h>

namespace iprune::engine {
namespace {

device::MemoryConfig default_memory() {
  return device::MemoryConfig{};
}

TEST(TilePlan, CeilDivAndExtents) {
  EXPECT_EQ(TilePlan::ceil_div(10, 3), 4u);
  EXPECT_EQ(TilePlan::ceil_div(9, 3), 3u);
  EXPECT_EQ(TilePlan::extent(10, 4, 0), 4u);
  EXPECT_EQ(TilePlan::extent(10, 4, 2), 2u);  // last ragged tile
}

TEST(TilePlan, PlanRespectsConfigCaps) {
  EngineConfig cfg;
  const TilePlan plan = plan_gemm(64, 256, 150, cfg, default_memory());
  EXPECT_EQ(plan.bk, cfg.max_k_per_op);
  EXPECT_EQ(plan.br, cfg.block_rows);
  EXPECT_LE(plan.bc, cfg.max_cols_per_tile);
  EXPECT_GE(plan.bc, 1u);
  EXPECT_LE(plan.vm_bytes_needed(cfg.mode),
            default_memory().vm_bytes - cfg.vm_reserve_bytes);
}

TEST(TilePlan, SmallLayerClampsTiles) {
  EngineConfig cfg;
  const TilePlan plan = plan_gemm(2, 1, 5, cfg, default_memory());
  EXPECT_EQ(plan.br, 2u);
  EXPECT_EQ(plan.bk, 5u);
  EXPECT_EQ(plan.bc, 1u);
  EXPECT_EQ(plan.row_tiles(), 1u);
  EXPECT_EQ(plan.k_tiles(), 1u);
}

TEST(TilePlan, TinyVmShrinksSpatialTile) {
  EngineConfig cfg;
  device::MemoryConfig mem;
  mem.vm_bytes = cfg.vm_reserve_bytes + 600;
  const TilePlan plan = plan_gemm(64, 256, 150, cfg, mem);
  EXPECT_LT(plan.bc, cfg.max_cols_per_tile);
  EXPECT_LE(plan.vm_bytes_needed(cfg.mode), 600u);
}

TEST(TilePlan, ImpossibleVmThrows) {
  EngineConfig cfg;
  device::MemoryConfig mem;
  mem.vm_bytes = cfg.vm_reserve_bytes + 16;  // nothing fits
  EXPECT_THROW(plan_gemm(64, 256, 150, cfg, mem), std::runtime_error);
}

TEST(TilePlan, DegenerateDimensionsThrow) {
  EngineConfig cfg;
  EXPECT_THROW(plan_gemm(0, 1, 1, cfg, default_memory()),
               std::invalid_argument);
}

TEST(TilePlan, RaggedTileArithmeticIsConsistent) {
  EngineConfig cfg;
  const TilePlan plan = plan_gemm(10, 33, 29, cfg, default_memory());
  std::size_t rows = 0;
  for (std::size_t rt = 0; rt < plan.row_tiles(); ++rt) {
    rows += plan.rows_in_tile(rt);
  }
  EXPECT_EQ(rows, plan.rows);
  std::size_t k = 0;
  for (std::size_t kt = 0; kt < plan.k_tiles(); ++kt) {
    k += plan.k_in_tile(kt);
  }
  EXPECT_EQ(k, plan.k);
  std::size_t cols = 0;
  for (std::size_t ct = 0; ct < plan.col_tiles(); ++ct) {
    cols += plan.cols_in_tile(ct);
  }
  EXPECT_EQ(cols, plan.cols);
}

TEST(BlockMask, FromDenseDetectsAliveBlocks) {
  EngineConfig cfg;
  const TilePlan plan = plan_gemm(8, 1, 24, cfg, default_memory());
  nn::Tensor mask({8, 24});
  mask.fill(1.0f);
  // Kill block (rt=1, kt=0): rows 4..7, k 0..11.
  for (std::size_t r = 4; r < 8; ++r) {
    for (std::size_t kk = 0; kk < 12; ++kk) {
      mask.at(r, kk) = 0.0f;
    }
  }
  const BlockMask bm = BlockMask::from_dense(mask, plan);
  EXPECT_TRUE(bm.alive(0, 0));
  EXPECT_TRUE(bm.alive(0, 1));
  EXPECT_FALSE(bm.alive(1, 0));
  EXPECT_TRUE(bm.alive(1, 1));
  EXPECT_EQ(bm.alive_count(), 3u);
  EXPECT_EQ(bm.alive_in_row(1), 1u);
}

TEST(BlockMask, SingleSurvivingWeightKeepsBlockAlive) {
  EngineConfig cfg;
  const TilePlan plan = plan_gemm(4, 1, 12, cfg, default_memory());
  nn::Tensor mask({4, 12});
  mask.fill(0.0f);
  mask.at(2, 5) = 1.0f;
  const BlockMask bm = BlockMask::from_dense(mask, plan);
  EXPECT_TRUE(bm.alive(0, 0));
  EXPECT_EQ(bm.alive_count(), 1u);
}

TEST(Criterion, UnprunedCountMatchesClosedForm) {
  EngineConfig cfg;
  const TilePlan plan = plan_gemm(16, 64, 36, cfg, default_memory());
  const BlockMask full(plan.row_tiles(), plan.k_tiles(), true);
  // Every output gets one write per k-pass: R * S * k_tiles.
  EXPECT_EQ(count_accelerator_outputs(plan, full),
            16u * 64u * plan.k_tiles());
  EXPECT_EQ(count_macs(plan, full), 16u * 64u * 36u);
}

TEST(Criterion, PrunedBlockRemovesOnePassOfOutputs) {
  EngineConfig cfg;
  const TilePlan plan = plan_gemm(16, 64, 36, cfg, default_memory());
  BlockMask mask(plan.row_tiles(), plan.k_tiles(), true);
  mask.set(0, 1, false);
  const std::size_t expected =
      16u * 64u * plan.k_tiles() - plan.rows_in_tile(0) * 64u;
  EXPECT_EQ(count_accelerator_outputs(plan, mask), expected);
}

TEST(Criterion, DeadRowStillCostsBiasFillOutputs) {
  EngineConfig cfg;
  const TilePlan plan = plan_gemm(8, 10, 24, cfg, default_memory());
  BlockMask mask(plan.row_tiles(), plan.k_tiles(), true);
  for (std::size_t kt = 0; kt < plan.k_tiles(); ++kt) {
    mask.set(0, kt, false);
  }
  // Row tile 0 has no compute passes but its outputs are still written
  // once (bias fill), so the count is rows*cols, not zero.
  const std::size_t row0 = plan.rows_in_tile(0) * plan.cols;
  const std::size_t others =
      (plan.rows - plan.rows_in_tile(0)) * plan.cols * plan.k_tiles();
  EXPECT_EQ(count_accelerator_outputs(plan, mask), row0 + others);
  EXPECT_EQ(count_macs(plan, mask),
            (plan.rows - plan.rows_in_tile(0)) * plan.cols * plan.k);
}

TEST(Criterion, WriteBytesUnprunedClosedForm) {
  EngineConfig cfg;
  const TilePlan plan = plan_gemm(16, 64, 36, cfg, default_memory());
  const BlockMask full(plan.row_tiles(), plan.k_tiles(), true);
  // Each output: (k_tiles-1) psum passes of (4+4) bytes plus one final
  // (2+4)-byte pass.
  const std::size_t per_output = (plan.k_tiles() - 1) * 8 + 6;
  EXPECT_EQ(count_nvm_write_bytes(plan, full, 4, 4),
            16u * 64u * per_output);
}

TEST(Criterion, WriteBytesTrackAccOutputsButNotProportionally) {
  EngineConfig cfg;
  const TilePlan plan = plan_gemm(8, 16, 48, cfg, default_memory());
  BlockMask mask(plan.row_tiles(), plan.k_tiles(), true);
  const std::size_t bytes_full = count_nvm_write_bytes(plan, mask, 4, 4);
  const std::size_t outs_full = count_accelerator_outputs(plan, mask);
  mask.set(0, 0, false);
  const std::size_t bytes_pruned = count_nvm_write_bytes(plan, mask, 4, 4);
  const std::size_t outs_pruned = count_accelerator_outputs(plan, mask);
  EXPECT_LT(bytes_pruned, bytes_full);
  EXPECT_LT(outs_pruned, outs_full);
  // A pruned pass removes 8 bytes/output while the average pass costs
  // less than that (the final pass is cheaper) -> ratios differ.
  const double byte_ratio = static_cast<double>(bytes_pruned) / bytes_full;
  const double out_ratio = static_cast<double>(outs_pruned) / outs_full;
  EXPECT_NE(byte_ratio, out_ratio);
}

TEST(Criterion, WriteBytesDeadRowIsBiasFillOnly) {
  EngineConfig cfg;
  const TilePlan plan = plan_gemm(4, 8, 24, cfg, default_memory());
  BlockMask mask(plan.row_tiles(), plan.k_tiles(), false);
  EXPECT_EQ(count_nvm_write_bytes(plan, mask, 4, 4), 4u * 8u * 6u);
}

struct PlanDims {
  std::size_t rows, cols, k;
};

class TilePlanSweep : public ::testing::TestWithParam<PlanDims> {};

TEST_P(TilePlanSweep, VmFitAndCoverageInvariants) {
  const auto [rows, cols, k] = GetParam();
  EngineConfig cfg;
  const TilePlan plan = plan_gemm(rows, cols, k, cfg, default_memory());
  EXPECT_LE(plan.vm_bytes_needed(cfg.mode),
            default_memory().vm_bytes - cfg.vm_reserve_bytes);
  EXPECT_EQ(plan.row_tiles() * plan.k_tiles() > 0, true);
  const BlockMask full(plan.row_tiles(), plan.k_tiles(), true);
  EXPECT_EQ(count_macs(plan, full), rows * cols * k);
  EXPECT_EQ(count_accelerator_outputs(plan, full),
            rows * cols * plan.k_tiles());
}

INSTANTIATE_TEST_SUITE_P(
    Dims, TilePlanSweep,
    ::testing::Values(PlanDims{1, 1, 1}, PlanDims{10, 1, 3150},
                      PlanDims{128, 64, 288}, PlanDims{6, 1, 768},
                      PlanDims{28, 110, 32}, PlanDims{48, 32, 96}));

}  // namespace
}  // namespace iprune::engine
