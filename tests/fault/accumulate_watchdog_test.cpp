// Regression guard for the kAccumulateInVm nontermination path: a forced
// outage denser than one inference must make the engine give up after
// exactly max_restarts restarts with stats.completed == false — never loop
// forever. The injector's event budget acts as the job-count watchdog: if
// the engine ever regressed into an unbounded retry loop, the budget
// throws instead of hanging the test.

#include <gtest/gtest.h>

#include <memory>

#include "engine/engine.hpp"
#include "fault/checker.hpp"
#include "fault/injector.hpp"
#include "fault/testbed.hpp"
#include "power/supply.hpp"

namespace iprune::fault {
namespace {

using engine::PreservationMode;

TEST(AccumulateWatchdog, DenseScheduleStopsAfterExactlyMaxRestarts) {
  util::Rng rng(23);
  nn::Graph graph = make_tiny_graph(rng);
  const nn::Tensor calib = make_batch(rng, graph, 8);
  const nn::Tensor sample = slice_sample(calib, 0);

  // Find how many chargeable events one clean accumulate-mode inference
  // needs, then inject an outage every half-inference: no attempt can
  // ever finish.
  ConsistencyChecker counter(graph, calib);
  const std::uint64_t clean_events =
      counter.count_events(sample, PreservationMode::kAccumulateInVm);
  ASSERT_GT(clean_events, 4u);
  const OutageSchedule dense = OutageSchedule::every_nth(clean_events / 2);

  engine::EngineConfig config;
  config.mode = PreservationMode::kAccumulateInVm;
  device::Msp430Device device(
      device::DeviceConfig::msp430fr5994(),
      std::make_unique<power::ConstantSupply>(
          power::SupplyPresets::kContinuousW));
  engine::DeployedModel model(graph, config, device, calib);

  FaultInjector injector(dense);
  // Watchdog: (max_restarts + 2) interrupted attempts' worth of events,
  // with reboot overhead margin. Exceeding it means unbounded retrying.
  const std::uint64_t budget = (clean_events + 16) * 12;
  injector.set_event_budget(budget);
  device.set_fault_hook(&injector);

  engine::IntermittentEngine eng(model, device);
  eng.max_restarts = 6;

  const engine::InferenceResult result = eng.run(sample);
  EXPECT_FALSE(result.stats.completed);
  EXPECT_EQ(result.stats.restarts, 6u)
      << "nontermination must be reported after exactly max_restarts";
  EXPECT_GE(result.stats.power_failures, 7u);  // initial attempt + restarts
  EXPECT_LT(injector.total_events(), budget);
}

TEST(AccumulateWatchdog, CheckerReportsNonterminationAsFailure) {
  util::Rng rng(23);
  const nn::Graph graph = make_tiny_graph(rng);
  const nn::Tensor calib = make_batch(rng, graph, 8);
  const nn::Tensor sample = slice_sample(calib, 0);

  CheckerConfig config;
  config.max_restarts = 4;
  ConsistencyChecker checker(graph, calib, config);
  const std::uint64_t clean_events =
      checker.count_events(sample, PreservationMode::kAccumulateInVm);

  const ScheduleOutcome outcome =
      checker.check(sample, OutageSchedule::every_nth(clean_events / 2),
                    PreservationMode::kAccumulateInVm);
  EXPECT_FALSE(outcome.passed);
  EXPECT_FALSE(outcome.completed);
  EXPECT_NE(outcome.failure.find("did not complete"), std::string::npos)
      << outcome.to_string();
}

}  // namespace
}  // namespace iprune::fault
