// Exhaustive crash-boundary sweep (the tentpole's core guarantee): on a
// small two-conv model, force a power failure at *every* preserved-output
// write boundary in kImmediate mode and check each interrupted run against
// the continuous-power golden logits.

#include <gtest/gtest.h>

#include "fault/checker.hpp"
#include "fault/testbed.hpp"

namespace iprune::fault {
namespace {

using engine::PreservationMode;

TEST(BoundaryExhaustive, EveryWriteBoundaryFailureRecoversBitIdentical) {
  util::Rng rng(11);
  const nn::Graph graph = make_tiny_graph(rng);
  const nn::Tensor calib = make_batch(rng, graph, 8);
  const nn::Tensor sample = slice_sample(calib, 0);
  ConsistencyChecker checker(graph, calib);

  const std::vector<OutageSchedule> schedules =
      checker.exhaustive_write_schedules(sample,
                                         PreservationMode::kImmediate);
  ASSERT_GT(schedules.size(), 50u)
      << "tiny model should expose a substantive write-boundary domain";

  const CheckReport report = checker.check_schedules(
      sample, schedules, PreservationMode::kImmediate);
  ASSERT_EQ(report.outcomes.size(), schedules.size());
  if (const ScheduleOutcome* fail = report.first_failure()) {
    FAIL() << "first divergent schedule: "
           << checker.shrink(sample, *fail).to_string();
  }

  for (const ScheduleOutcome& outcome : report.outcomes) {
    // passed implies bit-identical logits; additionally pin the HAWAII
    // bound — at most the single interrupted job is re-executed — and
    // that the sweep actually interrupted every run exactly once.
    EXPECT_TRUE(outcome.completed) << outcome.to_string();
    EXPECT_EQ(outcome.injected_outages, 1u) << outcome.to_string();
    EXPECT_GE(outcome.power_failures, 1u) << outcome.to_string();
    EXPECT_LE(outcome.reexecuted_jobs, outcome.power_failures)
        << outcome.to_string();
    EXPECT_EQ(outcome.first_divergence, -1) << outcome.to_string();
  }
}

TEST(BoundaryExhaustive, TaskModeSweepRespectsTaskBound) {
  util::Rng rng(11);
  const nn::Graph graph = make_tiny_graph(rng);
  const nn::Tensor calib = make_batch(rng, graph, 8);
  const nn::Tensor sample = slice_sample(calib, 0);
  ConsistencyChecker checker(graph, calib);

  const std::vector<OutageSchedule> schedules =
      checker.exhaustive_write_schedules(sample,
                                         PreservationMode::kTaskAtomic);
  ASSERT_FALSE(schedules.empty());
  const CheckReport report = checker.check_schedules(
      sample, schedules, PreservationMode::kTaskAtomic);
  if (const ScheduleOutcome* fail = report.first_failure()) {
    FAIL() << "first divergent schedule: "
           << checker.shrink(sample, *fail).to_string();
  }
  for (const ScheduleOutcome& outcome : report.outcomes) {
    EXPECT_LE(outcome.reexecuted_jobs,
              outcome.power_failures * checker.max_task_jobs())
        << outcome.to_string();
  }
}

}  // namespace
}  // namespace iprune::fault
