// Unit tests for the fault-injection layer: schedule round-tripping, the
// injector's event arithmetic, the PowerManager hook, injected-outage
// telemetry, and the consistency checker's golden-run machinery.

#include <gtest/gtest.h>

#include <memory>

#include "device/msp430.hpp"
#include "fault/checker.hpp"
#include "fault/injector.hpp"
#include "fault/testbed.hpp"
#include "power/supply.hpp"
#include "telemetry/sink.hpp"

namespace iprune::fault {
namespace {

using engine::PreservationMode;
using power::FaultPoint;

// --- OutageSchedule ---

TEST(Schedule, DescribeParseRoundTripsEveryMode) {
  const OutageSchedule cases[] = {
      OutageSchedule::none(),
      OutageSchedule::at_events({3, 17, 99}),
      OutageSchedule::every_nth(50, 3),
      OutageSchedule::random(42, 0.01, 8),
      OutageSchedule::random(7, 0.25),
      OutageSchedule::at_write(17),
      OutageSchedule::at_write(17).with_torn_keep(3),
      OutageSchedule::at_write(4).with_torn_random(),
      OutageSchedule::every_nth(50, 3).with_torn_keep(0),
      OutageSchedule::random(42, 0.01, 8).with_torn_random(),
      OutageSchedule::at_events({3, 17}).with_torn_keep(2),
  };
  for (const OutageSchedule& schedule : cases) {
    const std::string text = schedule.describe();
    EXPECT_EQ(OutageSchedule::parse(text), schedule) << text;
  }
}

TEST(Schedule, DescribeUsesCanonicalForms) {
  EXPECT_EQ(OutageSchedule::none().describe(), "none");
  EXPECT_EQ(OutageSchedule::at_events({3, 17, 99}).describe(),
            "fixed:3,17,99");
  EXPECT_EQ(OutageSchedule::every_nth(50, 3).describe(), "every:50;max=3");
  EXPECT_EQ(OutageSchedule::at_write(17).describe(), "write:17");
  EXPECT_EQ(OutageSchedule::at_write(17).with_torn_keep(3).describe(),
            "write:17;torn=keep:3");
  EXPECT_EQ(OutageSchedule::at_write(17).with_torn_random().describe(),
            "write:17;torn=rand");
  EXPECT_EQ(
      OutageSchedule::every_nth(50, 3).with_torn_random().describe(),
      "every:50;torn=rand;max=3");
}

TEST(Schedule, FixedEventsAreSortedAndDeduplicated) {
  const OutageSchedule s = OutageSchedule::at_events({99, 3, 17, 3});
  EXPECT_EQ(s.fixed_events, (std::vector<std::uint64_t>{3, 17, 99}));
}

TEST(Schedule, FactoriesValidateArguments) {
  EXPECT_THROW((void)OutageSchedule::every_nth(0), std::invalid_argument);
  EXPECT_THROW((void)OutageSchedule::random(1, -0.1), std::invalid_argument);
  EXPECT_THROW((void)OutageSchedule::random(1, 1.5), std::invalid_argument);
}

TEST(Schedule, ParseRejectsMalformedInputNamingFragment) {
  for (const char* bad : {"bogus:1", "fixed", "fixed:1,x", "every:0",
                          "random:seed=1", "random:p=0.1;seed=1",
                          "random:seed=1;p=2.0", "write:1;2",
                          "write:1;torn=keep", "write:1;torn=bogus",
                          "write:1;torn=keep:x"}) {
    EXPECT_THROW((void)OutageSchedule::parse(bad), std::invalid_argument)
        << bad;
  }
  try {
    (void)OutageSchedule::parse("fixed:1,oops");
    FAIL() << "expected rejection";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("oops"), std::string::npos)
        << e.what();
  }
}

// --- FaultInjector ---

TEST(Injector, FixedScheduleFiresAtExactGlobalOrdinals) {
  FaultInjector injector(OutageSchedule::at_events({1, 4}));
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(injector.should_fail(FaultPoint::kCpu));
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, true, false, false, true,
                                      false}));
  EXPECT_EQ(injector.total_events(), 6u);
  EXPECT_EQ(injector.injected(), 2u);
  EXPECT_EQ(injector.outage_events(),
            (std::vector<std::uint64_t>{1, 4}));
}

TEST(Injector, AtWriteCountsOnlyNvmWriteEvents) {
  FaultInjector injector(OutageSchedule::at_write(1));
  EXPECT_FALSE(injector.should_fail(FaultPoint::kNvmWrite));  // write 0
  EXPECT_FALSE(injector.should_fail(FaultPoint::kLea));
  EXPECT_FALSE(injector.should_fail(FaultPoint::kCpu));
  EXPECT_TRUE(injector.should_fail(FaultPoint::kNvmWrite));  // write 1
  EXPECT_EQ(injector.write_events(), 2u);
  EXPECT_EQ(injector.events_at(FaultPoint::kLea), 1u);
  // The outage is recorded by its *global* ordinal (3), not the write one.
  EXPECT_EQ(injector.outage_events(), (std::vector<std::uint64_t>{3}));
}

TEST(Injector, EveryNthIsOneBased) {
  FaultInjector injector(OutageSchedule::every_nth(3));
  std::vector<bool> fired;
  for (int i = 0; i < 7; ++i) {
    fired.push_back(injector.should_fail(FaultPoint::kLea));
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false,
                                      true, false}));
}

TEST(Injector, MaxOutagesCapsInjection) {
  FaultInjector injector(OutageSchedule::every_nth(1, 2));
  int injected = 0;
  for (int i = 0; i < 10; ++i) {
    injected += injector.should_fail(FaultPoint::kCpu) ? 1 : 0;
  }
  EXPECT_EQ(injected, 2);
  EXPECT_EQ(injector.injected(), 2u);
}

TEST(Injector, RandomScheduleIsSeedDeterministic) {
  const OutageSchedule schedule = OutageSchedule::random(1234, 0.3);
  FaultInjector a(schedule);
  FaultInjector b(schedule);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.should_fail(FaultPoint::kLea),
              b.should_fail(FaultPoint::kLea))
        << i;
  }
  EXPECT_GT(a.injected(), 0u);
  EXPECT_EQ(a.outage_events(), b.outage_events());
}

TEST(Injector, ResetRewindsCountersAndRngStream) {
  FaultInjector injector(OutageSchedule::random(77, 0.2));
  std::vector<bool> first;
  for (int i = 0; i < 50; ++i) {
    first.push_back(injector.should_fail(FaultPoint::kNvmWrite));
  }
  injector.reset();
  EXPECT_EQ(injector.total_events(), 0u);
  EXPECT_EQ(injector.injected(), 0u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(injector.should_fail(FaultPoint::kNvmWrite), first[i]) << i;
  }
}

TEST(Injector, EventBudgetWatchdogThrows) {
  FaultInjector injector(OutageSchedule::none());
  injector.set_event_budget(3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(injector.should_fail(FaultPoint::kCpu));
  }
  EXPECT_THROW((void)injector.should_fail(FaultPoint::kCpu),
               std::runtime_error);
}

// --- PowerManager hook + device integration ---

TEST(ManagerHook, InjectedOutageDrainsBufferAndCounts) {
  power::PowerManager pm(power::SupplyPresets::continuous(), {});
  FaultInjector injector(OutageSchedule::at_events({2}));
  pm.set_fault_hook(&injector);

  EXPECT_TRUE(pm.consume(0.0, 1e-6, 1e-9, FaultPoint::kCpu));
  EXPECT_TRUE(pm.consume(1e-6, 1e-6, 1e-9, FaultPoint::kCpu));
  EXPECT_FALSE(pm.consume(2e-6, 1e-6, 1e-9, FaultPoint::kNvmWrite));
  EXPECT_TRUE(pm.last_outage_injected());
  EXPECT_EQ(pm.stats().power_failures, 1u);
  EXPECT_EQ(pm.stats().injected_failures, 1u);
  EXPECT_DOUBLE_EQ(pm.buffer().stored_j(), 0.0);
}

TEST(ManagerHook, InjectionEmitsFaultInjectTelemetry) {
  auto device = device::Msp430Device(
      device::DeviceConfig::msp430fr5994(),
      std::make_unique<power::ConstantSupply>(
          power::SupplyPresets::kContinuousW));
  telemetry::RecorderSink recorder;
  device.set_trace_sink(&recorder);
  FaultInjector injector(OutageSchedule::at_events({2}));
  device.set_fault_hook(&injector);

  EXPECT_TRUE(device.dma_read(16));                       // event 0
  EXPECT_TRUE(device.lea_op(8));                          // event 1
  EXPECT_FALSE(device.dma_write(16));                     // event 2: injected
  EXPECT_TRUE(device.dma_write(16));                      // retried, succeeds
  EXPECT_EQ(device.vm_epoch(), 1u);

  std::size_t brownouts = 0;
  std::size_t injects = 0;
  for (const telemetry::Event& event : recorder.events()) {
    if (event.cls == telemetry::EventClass::kBrownOut) {
      ++brownouts;
    }
    if (event.cls == telemetry::EventClass::kFaultInject) {
      ++injects;
      EXPECT_EQ(event.name, fault_point_name(FaultPoint::kNvmWrite));
      EXPECT_EQ(event.seq, 1u);
    }
  }
  EXPECT_EQ(brownouts, 1u);
  EXPECT_EQ(injects, 1u);
}

TEST(ManagerHook, BackToBackRebootInjectionIsSurvivable) {
  // Fail the interrupted op AND the next two reboot attempts; the device
  // must retry the reboot instead of dying.
  auto device = device::Msp430Device(
      device::DeviceConfig::msp430fr5994(),
      std::make_unique<power::ConstantSupply>(
          power::SupplyPresets::kContinuousW));
  FaultInjector injector(OutageSchedule::at_events({0, 1, 2}));
  device.set_fault_hook(&injector);

  EXPECT_FALSE(device.dma_write(16));  // op fails, then 2 reboots fail
  EXPECT_EQ(injector.injected(), 3u);
  EXPECT_EQ(device.vm_epoch(), 3u);
  EXPECT_TRUE(device.dma_write(16));  // clean after the third reboot
}

// --- ConsistencyChecker ---

class CheckerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<util::Rng>(5);
    graph_ = std::make_unique<nn::Graph>(make_tiny_graph(*rng_));
    calib_ = make_batch(*rng_, *graph_, 8);
    sample_ = slice_sample(calib_, 0);
    checker_ = std::make_unique<ConsistencyChecker>(*graph_, calib_);
  }

  std::unique_ptr<util::Rng> rng_;
  std::unique_ptr<nn::Graph> graph_;
  nn::Tensor calib_;
  nn::Tensor sample_;
  std::unique_ptr<ConsistencyChecker> checker_;
};

TEST_F(CheckerFixture, CleanSchedulePassesInBothModes) {
  for (const PreservationMode mode :
       {PreservationMode::kImmediate, PreservationMode::kTaskAtomic}) {
    const ScheduleOutcome outcome =
        checker_->check(sample_, OutageSchedule::none(), mode);
    EXPECT_TRUE(outcome.passed) << outcome.to_string();
    EXPECT_EQ(outcome.injected_outages, 0u);
    EXPECT_EQ(outcome.power_failures, 0u);
  }
}

TEST_F(CheckerFixture, InjectedOutageStillMatchesGolden) {
  const ScheduleOutcome outcome = checker_->check(
      sample_, OutageSchedule::at_write(5), PreservationMode::kImmediate);
  EXPECT_TRUE(outcome.passed) << outcome.to_string();
  EXPECT_EQ(outcome.injected_outages, 1u);
  EXPECT_EQ(outcome.power_failures, 1u);
  EXPECT_LE(outcome.reexecuted_jobs, outcome.power_failures);
}

TEST_F(CheckerFixture, WriteBoundariesAndTaskBoundAreModelDerived) {
  EXPECT_GT(checker_->count_write_boundaries(sample_,
                                             PreservationMode::kImmediate),
            50u);
  EXPECT_GE(checker_->max_task_jobs(), 1u);
  const auto schedules = checker_->exhaustive_write_schedules(
      sample_, PreservationMode::kImmediate);
  EXPECT_EQ(schedules.size(),
            checker_->count_write_boundaries(sample_,
                                             PreservationMode::kImmediate));
}

TEST_F(CheckerFixture, ReproTokenRoundTrips) {
  const ScheduleOutcome outcome = checker_->check(
      sample_, OutageSchedule::every_nth(40, 2),
      PreservationMode::kTaskAtomic);
  EXPECT_EQ(outcome.repro(), "mode=task;schedule=every:40;max=2");
  const std::string token = outcome.repro();
  const std::string sched_key = ";schedule=";
  const std::size_t at = token.find(sched_key);
  ASSERT_NE(at, std::string::npos);
  EXPECT_EQ(parse_preservation_mode(token.substr(5, at - 5)),
            PreservationMode::kTaskAtomic);
  EXPECT_EQ(OutageSchedule::parse(token.substr(at + sched_key.size())),
            outcome.schedule);
}

TEST_F(CheckerFixture, ShrinkMinimizesFailingSchedule) {
  // Manufacture a genuine failure: accumulate-in-VM with zero allowed
  // restarts cannot survive any outage, so a three-outage schedule fails
  // and must shrink to a single ordinal.
  CheckerConfig config;
  config.max_restarts = 0;
  ConsistencyChecker strict(*graph_, calib_, config);
  const ScheduleOutcome failed =
      strict.check(sample_, OutageSchedule::at_events({10, 50, 90}),
                   PreservationMode::kAccumulateInVm);
  ASSERT_FALSE(failed.passed);
  EXPECT_FALSE(failed.completed);
  ASSERT_FALSE(failed.outage_events.empty());

  const ScheduleOutcome minimized = strict.shrink(sample_, failed);
  EXPECT_FALSE(minimized.passed);
  EXPECT_EQ(minimized.schedule.mode, ScheduleMode::kFixed);
  EXPECT_EQ(minimized.schedule.fixed_events.size(), 1u)
      << minimized.to_string();
}

}  // namespace
}  // namespace iprune::fault
