// Differential NVM data-integrity suite: with the integrity layer armed,
// every torn-write / bit-flip / stuck-cell scenario must end consistent,
// recovered, or fail-stopped (never silent); with the layer disarmed the
// same faults demonstrably escape — wrong logits with a clean exit — or
// crash the consistency contract. Plus the zero-corruption overhead
// assertion: arming the layer on a fault-free run adds exactly the
// record-widening bytes, and scrubbing adds exactly the sealed-region
// reads.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "device/msp430.hpp"
#include "engine/deploy.hpp"
#include "engine/engine.hpp"
#include "fault/integrity.hpp"
#include "fault/testbed.hpp"
#include "power/supply.hpp"

namespace iprune::fault {
namespace {

using engine::PreservationMode;

class IntegritySuite : public ::testing::Test {
 protected:
  void SetUp() override {
    util::Rng rng(2023);
    graph_ = std::make_unique<nn::Graph>(make_tiny_graph(rng));
    calib_ = make_batch(rng, *graph_, 8);
    sample_ = slice_sample(calib_, 0);
    checker_ = std::make_unique<IntegrityChecker>(*graph_, calib_);
  }

  std::vector<CorruptionScenario> torn_sweep(bool protect) const {
    const std::uint64_t boundaries = checker_->count_write_boundaries(
        sample_, PreservationMode::kImmediate, protect);
    return IntegrityChecker::torn_commit_sweep(boundaries, /*stride=*/5,
                                               {1, 3});
  }

  std::unique_ptr<nn::Graph> graph_;
  nn::Tensor calib_;
  nn::Tensor sample_;
  std::unique_ptr<IntegrityChecker> checker_;
};

// The tentpole guarantee: under protection, every torn-commit schedule in
// the sweep produces logits bit-identical to the golden run (verdicts
// kConsistent/kRecovered only — a tear that loses the progress record
// rolls back and re-executes).
TEST_F(IntegritySuite, ProtectedTornSweepIsBitIdenticalToGolden) {
  const auto sweep = torn_sweep(/*protect=*/true);
  ASSERT_GT(sweep.size(), 10u);
  const IntegrityReport report = checker_->check_scenarios(
      sample_, sweep, PreservationMode::kImmediate, /*protect=*/true);
  ASSERT_EQ(report.outcomes.size(), sweep.size());
  EXPECT_EQ(report.count(IntegrityVerdict::kSilent), 0u)
      << report.first(IntegrityVerdict::kSilent)->to_string();
  EXPECT_EQ(report.count(IntegrityVerdict::kCrashed), 0u)
      << report.first(IntegrityVerdict::kCrashed)->to_string();
  EXPECT_EQ(report.count(IntegrityVerdict::kDetected), 0u)
      << "torn commits must recover, not fail-stop";
  EXPECT_LE(report.exit_code(), 1);
  // The sweep must actually exercise the rollback path.
  EXPECT_GT(report.count(IntegrityVerdict::kRecovered), 0u);
}

TEST_F(IntegritySuite, ProtectedTornSweepSurvivesTaskAtomicMode) {
  const auto sweep = torn_sweep(/*protect=*/true);
  const IntegrityReport report = checker_->check_scenarios(
      sample_, sweep, PreservationMode::kTaskAtomic, /*protect=*/true);
  EXPECT_EQ(report.count(IntegrityVerdict::kSilent), 0u);
  EXPECT_EQ(report.count(IntegrityVerdict::kCrashed), 0u);
  EXPECT_LE(report.exit_code(), 1);
}

// With protection disabled the very same sweep must demonstrate at least
// one silent-data-corruption escape — wrong logits, clean completion —
// proving the checker can catch what the CRC layer prevents.
TEST_F(IntegritySuite, UnprotectedTornSweepEscapesSilently) {
  const auto sweep = torn_sweep(/*protect=*/false);
  const IntegrityReport report = checker_->check_scenarios(
      sample_, sweep, PreservationMode::kImmediate, /*protect=*/false);
  EXPECT_GT(report.count(IntegrityVerdict::kSilent) +
                report.count(IntegrityVerdict::kCrashed),
            0u)
      << "torn commits should break the unprotected contract";
  EXPECT_GE(report.count(IntegrityVerdict::kSilent), 1u)
      << "expected at least one silent escape (wrong logits, clean exit)";
  EXPECT_EQ(report.exit_code(), 2);
}

// A stuck cell inside a sealed BSR region: invisible to the dataflow (the
// accelerator reads host-side weights), so only the boot scrub can catch
// it. row_ptr[0] is always 0, so forcing its MSB guarantees the stored
// byte differs from the sealed content.
TEST_F(IntegritySuite, StuckWeightCellIsDetectedByBootScrub) {
  CorruptionScenario s;
  s.label = "stuck(bsr_rowptr)";
  s.stuck.push_back({".bsr_rowptr", /*offset=*/0, /*bit=*/7, true});

  const ScenarioOutcome armed = checker_->check(
      sample_, s, PreservationMode::kImmediate, /*protect=*/true);
  EXPECT_EQ(armed.verdict, IntegrityVerdict::kDetected) << armed.to_string();
  EXPECT_NE(armed.detail.find("scrub"), std::string::npos) << armed.detail;

  // Unprotected: the corruption is latent — the run completes with
  // correct logits because the engine never reads those cells, and
  // nothing ever notices the NVM image is bad. Exactly why the scrub
  // exists.
  const ScenarioOutcome disarmed = checker_->check(
      sample_, s, PreservationMode::kImmediate, /*protect=*/false);
  EXPECT_EQ(disarmed.verdict, IntegrityVerdict::kConsistent)
      << disarmed.to_string();
  EXPECT_GT(disarmed.stuck_hits, 0u);
}

// A stuck cell in an activation buffer corrupts the dataflow itself.
// Without protection this is the canonical silent escape. (Activations
// are not sealed — docs/nvm_integrity.md documents the gap.)
TEST_F(IntegritySuite, StuckActivationCellEscapesSilentlyWhenUnprotected) {
  CorruptionScenario s;
  s.label = "stuck(input act)";
  // Force the high byte of input element 0 to a large value.
  s.stuck.push_back({".ofm", /*offset=*/1, /*bit=*/6, true});
  s.stuck.push_back({".ofm", /*offset=*/1, /*bit=*/3, true});
  s.stuck.push_back({".ofm", /*offset=*/0, /*bit=*/0, true});

  const ScenarioOutcome outcome = checker_->check(
      sample_, s, PreservationMode::kImmediate, /*protect=*/false);
  EXPECT_EQ(outcome.verdict, IntegrityVerdict::kSilent)
      << outcome.to_string();
  EXPECT_GT(outcome.stuck_hits, 0u);
}

// Transient read noise confined to the progress records while outages
// force recovery re-reads: the CRC layer must contain it (roll back,
// re-read, or fail-stop) — never silently diverge.
TEST_F(IntegritySuite, ProgressReadNoiseIsContainedUnderProtection) {
  CorruptionScenario s;
  s.label = "read-noise(progress)";
  s.seed = 7;
  s.read_ber = 0.05;
  s.window_region = "progress";
  s.schedule = OutageSchedule::every_nth(61, 6);

  const ScenarioOutcome outcome = checker_->check(
      sample_, s, PreservationMode::kImmediate, /*protect=*/true);
  EXPECT_NE(outcome.verdict, IntegrityVerdict::kSilent)
      << outcome.to_string();
  EXPECT_NE(outcome.verdict, IntegrityVerdict::kCrashed)
      << outcome.to_string();
  EXPECT_GT(outcome.read_flips, 0u);
}

TEST_F(IntegritySuite, UnknownRegionSpecThrows) {
  CorruptionScenario s;
  s.label = "bad region";
  s.window_region = "no-such-region";
  s.read_ber = 0.01;
  EXPECT_THROW((void)checker_->check(sample_, s,
                                     PreservationMode::kImmediate, true),
               std::invalid_argument);
}

TEST(IntegrityReportTest, ExitCodeMapping) {
  const auto outcome = [](IntegrityVerdict v) {
    ScenarioOutcome o;
    o.verdict = v;
    return o;
  };
  IntegrityReport all_clean;
  all_clean.outcomes = {outcome(IntegrityVerdict::kConsistent)};
  EXPECT_EQ(all_clean.exit_code(), 0);

  IntegrityReport contained;
  contained.outcomes = {outcome(IntegrityVerdict::kConsistent),
                        outcome(IntegrityVerdict::kRecovered),
                        outcome(IntegrityVerdict::kDetected)};
  EXPECT_EQ(contained.exit_code(), 1);
  EXPECT_EQ(contained.count(IntegrityVerdict::kRecovered), 1u);
  EXPECT_EQ(contained.first(IntegrityVerdict::kDetected)->verdict,
            IntegrityVerdict::kDetected);
  EXPECT_EQ(contained.first(IntegrityVerdict::kSilent), nullptr);

  IntegrityReport escaped;
  escaped.outcomes = {outcome(IntegrityVerdict::kRecovered),
                      outcome(IntegrityVerdict::kSilent)};
  EXPECT_EQ(escaped.exit_code(), 2);

  IntegrityReport crashed;
  crashed.outcomes = {outcome(IntegrityVerdict::kCrashed)};
  EXPECT_EQ(crashed.exit_code(), 2);
}

// --- zero-corruption overhead ---

struct OverheadRun {
  std::vector<float> logits;
  engine::InferenceStats stats;
  device::DeviceStats device;
  std::size_t sealed_bytes = 0;  // sum of sealed region payloads
  std::size_t sealed_regions = 0;
};

OverheadRun run_clean(const engine::IntegrityConfig& integrity) {
  util::Rng rng(2023);
  nn::Graph graph = make_tiny_graph(rng);
  const nn::Tensor calib = make_batch(rng, graph, 8);
  const nn::Tensor sample = slice_sample(calib, 0);

  device::Msp430Device device(device::DeviceConfig::msp430fr5994(),
                              power::SupplyPresets::continuous(), {});
  engine::EngineConfig ecfg;
  ecfg.mode = PreservationMode::kImmediate;
  ecfg.integrity = integrity;
  engine::DeployedModel model(graph, ecfg, device, calib);
  engine::IntermittentEngine eng(model, device);

  OverheadRun run;
  const engine::InferenceResult result = eng.run(sample);
  run.logits = result.logits;
  run.stats = result.stats;
  run.device = device.stats();
  for (const auto& r : model.regions()) {
    if (r.sealed) {
      run.sealed_bytes += r.bytes;
      ++run.sealed_regions;
    }
  }
  return run;
}

// Arming the integrity layer on a fault-free run must not change the
// logits and must add NO NVM traffic beyond the documented protocol
// bytes: +2 per commit (6-byte record vs 4-byte counter), +4 at the
// progress init (two records vs one counter), and — only when scrubbing —
// one boot read of each sealed region plus its 2-byte checksum word.
TEST(IntegrityOverhead, ZeroCorruptionConfigsAddOnlyTheChecksumBytes) {
  const OverheadRun base = run_clean({});  // integrity off

  engine::IntegrityConfig protect_only;
  protect_only.protect_progress = true;
  const OverheadRun prot = run_clean(protect_only);

  EXPECT_EQ(prot.logits, base.logits);
  EXPECT_EQ(prot.stats.preserved_outputs, base.stats.preserved_outputs);
  EXPECT_EQ(prot.stats.power_failures, 0u);
  EXPECT_EQ(prot.stats.integrity_rollbacks, 0u);

  const std::size_t commits = base.stats.preserved_outputs;
  EXPECT_EQ(prot.device.nvm_bytes_written,
            base.device.nvm_bytes_written + 2 * commits + 4);
  EXPECT_EQ(prot.device.nvm_bytes_read, base.device.nvm_bytes_read);

  engine::IntegrityConfig full;
  full.protect_progress = true;
  full.seal_regions = true;
  full.scrub_on_boot = true;
  const OverheadRun sealed = run_clean(full);

  EXPECT_EQ(sealed.logits, base.logits);
  EXPECT_GT(sealed.sealed_regions, 0u);
  EXPECT_EQ(sealed.stats.scrub_failures, 0u);
  EXPECT_EQ(sealed.device.nvm_bytes_written,
            prot.device.nvm_bytes_written);
  EXPECT_EQ(sealed.device.nvm_bytes_read,
            base.device.nvm_bytes_read + sealed.sealed_bytes +
                2 * sealed.sealed_regions);
}

}  // namespace
}  // namespace iprune::fault
