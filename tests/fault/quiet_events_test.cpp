// FaultInjector's quiet-window API: quiet_events() must be a sound lower
// bound (no schedule firing, no budget throw inside the window), and
// skip_quiet_events() must leave the injector in exactly the state that
// the equivalent sequence of quiet should_fail() calls would.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "fault/injector.hpp"

namespace iprune::fault {
namespace {

constexpr std::size_t kPoints =
    static_cast<std::size_t>(power::FaultPoint::kPointCount);

/// Drive `count` quiet events through should_fail one by one, asserting
/// none fires. The reference behaviour skip_quiet_events must replicate.
void step_quiet(FaultInjector& injector, std::uint64_t count,
                power::FaultPoint point = power::FaultPoint::kLea) {
  for (std::uint64_t i = 0; i < count; ++i) {
    ASSERT_FALSE(injector.should_fail(point));
  }
}

TEST(QuietEvents, NoneScheduleIsUnboundedlyQuiet) {
  FaultInjector injector(OutageSchedule::none());
  EXPECT_EQ(injector.quiet_events(), FaultInjector::kNoBudget);
}

TEST(QuietEvents, FixedScheduleCountsDownToNextOrdinal) {
  FaultInjector injector(OutageSchedule::at_events({5, 9}));
  EXPECT_EQ(injector.quiet_events(), 5u);  // ordinals 0..4 are quiet
  step_quiet(injector, 5);
  EXPECT_EQ(injector.quiet_events(), 0u);  // ordinal 5 fires
  EXPECT_TRUE(injector.should_fail(power::FaultPoint::kLea));
  EXPECT_EQ(injector.quiet_events(), 3u);  // 6,7,8 quiet; 9 fires
  step_quiet(injector, 3);
  EXPECT_TRUE(injector.should_fail(power::FaultPoint::kLea));
  // Past the last fixed ordinal: quiet forever.
  EXPECT_EQ(injector.quiet_events(), FaultInjector::kNoBudget);
}

TEST(QuietEvents, EveryNthCountsToTheNextMultiple) {
  FaultInjector injector(OutageSchedule::every_nth(4));  // fires at 3,7,11...
  EXPECT_EQ(injector.quiet_events(), 3u);
  step_quiet(injector, 3);
  EXPECT_EQ(injector.quiet_events(), 0u);
  EXPECT_TRUE(injector.should_fail(power::FaultPoint::kCpu));
  EXPECT_EQ(injector.quiet_events(), 3u);
}

TEST(QuietEvents, MaxOutagesExhaustedMeansQuietForever) {
  FaultInjector injector(OutageSchedule::every_nth(2, /*max_outages=*/1));
  step_quiet(injector, 1);
  EXPECT_TRUE(injector.should_fail(power::FaultPoint::kLea));
  EXPECT_EQ(injector.quiet_events(), FaultInjector::kNoBudget);
}

TEST(QuietEvents, RandomScheduleNeverGrantsAWindow) {
  FaultInjector injector(OutageSchedule::random(7, 0.0));
  // Even at p=0 every event consumes an RNG draw, so skipping would
  // desynchronize the stream.
  EXPECT_EQ(injector.quiet_events(), 0u);
}

TEST(QuietEvents, AtWriteQuietOnlyAfterTheTargetWritePassed) {
  FaultInjector injector(OutageSchedule::at_write(1));
  // The next event could be an NVM write, so no window yet.
  EXPECT_EQ(injector.quiet_events(), 0u);
  ASSERT_FALSE(injector.should_fail(power::FaultPoint::kNvmWrite));  // w0
  EXPECT_EQ(injector.quiet_events(), 0u);
  EXPECT_TRUE(injector.should_fail(power::FaultPoint::kNvmWrite));  // w1 fires
  EXPECT_EQ(injector.quiet_events(), FaultInjector::kNoBudget);
}

TEST(QuietEvents, BudgetClampsTheWindow) {
  FaultInjector injector(OutageSchedule::none());
  injector.set_event_budget(10);
  EXPECT_EQ(injector.quiet_events(), 10u);
  step_quiet(injector, 4);
  EXPECT_EQ(injector.quiet_events(), 6u);
  step_quiet(injector, 6);
  EXPECT_EQ(injector.quiet_events(), 0u);
  // The budget-exhausted event must go through should_fail (and throw),
  // never be silently skipped.
  EXPECT_THROW((void)injector.should_fail(power::FaultPoint::kLea),
               std::runtime_error);
}

TEST(QuietEvents, SkipMatchesSteppedStateExactly) {
  const OutageSchedule schedule = OutageSchedule::at_events({100});
  FaultInjector stepped(schedule);
  FaultInjector skipped(schedule);

  // Mixed per-point traffic, stepped one ordinal at a time.
  step_quiet(stepped, 3, power::FaultPoint::kNvmRead);
  step_quiet(stepped, 2, power::FaultPoint::kNvmWrite);
  step_quiet(stepped, 4, power::FaultPoint::kLea);

  std::array<std::uint64_t, kPoints> per_point{};
  per_point[static_cast<std::size_t>(power::FaultPoint::kNvmRead)] = 3;
  per_point[static_cast<std::size_t>(power::FaultPoint::kNvmWrite)] = 2;
  per_point[static_cast<std::size_t>(power::FaultPoint::kLea)] = 4;
  ASSERT_GE(skipped.quiet_events(), 9u);
  skipped.skip_quiet_events(9, per_point.data());

  EXPECT_EQ(skipped.total_events(), stepped.total_events());
  for (std::size_t p = 0; p < kPoints; ++p) {
    const auto point = static_cast<power::FaultPoint>(p);
    EXPECT_EQ(skipped.events_at(point), stepped.events_at(point));
  }
  EXPECT_EQ(skipped.quiet_events(), stepped.quiet_events());

  // Both continue identically: the next firing lands at ordinal 100.
  const std::uint64_t remaining = stepped.quiet_events();
  EXPECT_EQ(remaining, 100u - 9u);
  step_quiet(stepped, remaining);
  step_quiet(skipped, remaining);
  EXPECT_TRUE(stepped.should_fail(power::FaultPoint::kLea));
  EXPECT_TRUE(skipped.should_fail(power::FaultPoint::kLea));
  EXPECT_EQ(stepped.outage_events(), skipped.outage_events());
}

}  // namespace
}  // namespace iprune::fault
