// OutageSchedule::parse error paths. Fleet specs embed schedule strings
// verbatim, so a malformed schedule must fail loudly with a message that
// names both the offending token and the full input — these tests pin the
// exact diagnostics so CLI/CI error output stays greppable.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "fault/schedule.hpp"

namespace iprune::fault {
namespace {

/// Asserts parse(text) throws std::invalid_argument with exactly
/// "OutageSchedule::parse: <why> in \"<text>\"".
void expect_parse_error(const std::string& text, const std::string& why) {
  const std::string expected =
      "OutageSchedule::parse: " + why + " in \"" + text + "\"";
  try {
    (void)OutageSchedule::parse(text);
    FAIL() << "expected parse(\"" << text << "\") to throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()), expected);
  } catch (...) {
    FAIL() << "expected std::invalid_argument for \"" << text << "\"";
  }
}

TEST(ScheduleParseError, MissingColonAfterMode) {
  expect_parse_error("fixed", "missing ':' after mode");
  expect_parse_error("every", "missing ':' after mode");
  // "none" is the only colon-free schedule; anything else needs a mode
  // separator even if it happens to start with a known mode name.
  expect_parse_error("nonee", "missing ':' after mode");
}

TEST(ScheduleParseError, UnknownMode) {
  expect_parse_error("sometimes:3", "unknown mode 'sometimes'");
  expect_parse_error(":3", "unknown mode ''");
  // Mode names are case-sensitive.
  expect_parse_error("Fixed:3", "unknown mode 'Fixed'");
}

TEST(ScheduleParseError, MalformedIntegers) {
  expect_parse_error("every:ten", "expected integer, got 'ten'");
  expect_parse_error("every:", "expected integer, got ''");
  expect_parse_error("every:5x", "trailing characters after integer '5x'");
  // stoull would accept these (wrapping "-5" to 2^64-5, skipping the
  // leading space); the parser must not.
  expect_parse_error("every:-5", "expected integer, got '-5'");
  expect_parse_error("every: 5", "expected integer, got ' 5'");
  expect_parse_error("fixed:3,oops,9", "expected integer, got 'oops'");
  expect_parse_error("write:1 7", "trailing characters after integer '1 7'");
  expect_parse_error("every:99999999999999999999999999",
                     "integer out of range: '99999999999999999999999999'");
}

TEST(ScheduleParseError, MalformedTornModifier) {
  // Empty value, unknown keyword, and a keep spec missing its byte count.
  expect_parse_error("every:50;torn=",
                     "torn takes drop | keep:<bytes> | rand, got ''");
  expect_parse_error("every:50;torn=shred",
                     "torn takes drop | keep:<bytes> | rand, got 'shred'");
  expect_parse_error("every:50;torn=keep",
                     "torn takes drop | keep:<bytes> | rand, got 'keep'");
  expect_parse_error("every:50;torn=keep:", "expected integer, got ''");
  expect_parse_error("every:50;torn=keep:4q",
                     "trailing characters after integer '4q'");
  // torn= must precede max=; in the other order the torn field is no
  // longer trailing and the mode parser sees a surplus field.
  expect_parse_error("every:50;max=3;torn=rand",
                     "every takes a single period");
  // A duplicate torn key: only the trailing one is stripped, the first
  // leaks into the mode's field list.
  expect_parse_error("every:50;torn=rand;torn=rand",
                     "every takes a single period");
}

TEST(ScheduleParseError, MalformedMaxModifier) {
  expect_parse_error("every:50;max=", "expected integer, got ''");
  expect_parse_error("every:50;max=lots", "expected integer, got 'lots'");
  expect_parse_error("write:9;max=1 2",
                     "trailing characters after integer '1 2'");
  // Duplicate max keys: the trailing one is consumed, the first becomes a
  // stray mode field.
  expect_parse_error("every:50;max=1;max=2", "every takes a single period");
}

TEST(ScheduleParseError, OutOfRangeValues) {
  // "every:0" used to leak the every_nth() constructor's message instead
  // of the canonical parse diagnostic; the scenario schema pins the
  // parse-shaped form.
  expect_parse_error("every:0", "period must be >= 1");
}

TEST(ScheduleParseError, WrongFieldArity) {
  expect_parse_error("every:50;60", "every takes a single period");
  expect_parse_error("write:1;2", "write takes a single write ordinal");
  expect_parse_error("fixed:1;2", "fixed takes one comma-separated event list");
}

TEST(ScheduleParseError, RandomKeyErrors) {
  // Missing keys, wrong order, duplicate keys, and empty keys all collapse
  // to the same arity/shape diagnostic.
  expect_parse_error("random:7", "random takes seed=<u64>;p=<prob>");
  expect_parse_error("random:p=0.5;seed=7", "random takes seed=<u64>;p=<prob>");
  expect_parse_error("random:seed=7;seed=8", "random takes seed=<u64>;p=<prob>");
  expect_parse_error("random:seed=7;p=0.5;p=0.6",
                     "random takes seed=<u64>;p=<prob>");
  expect_parse_error("random:;p=0.5", "random takes seed=<u64>;p=<prob>");
  expect_parse_error("random:seed=7;p=1.5",
                     "probability must be in [0, 1], got '1.5'");
  expect_parse_error("random:seed=7;p=-0.1",
                     "probability must be in [0, 1], got '-0.1'");
  expect_parse_error("random:seed=7;p=half",
                     "expected probability, got 'half'");
  expect_parse_error("random:seed=7;p=0.5z",
                     "probability must be in [0, 1], got '0.5z'");
  expect_parse_error("random:seed=x;p=0.5", "expected integer, got 'x'");
}

TEST(ScheduleParseError, WellFormedEdgeCasesStillParse) {
  // Boundary inputs that look suspicious but are legal, pinned here so the
  // error tests above cannot be "fixed" by over-tightening the parser.
  const OutageSchedule empty = OutageSchedule::parse("fixed:");
  EXPECT_EQ(empty.mode, ScheduleMode::kFixed);
  EXPECT_TRUE(empty.fixed_events.empty());

  const OutageSchedule full =
      OutageSchedule::parse("every:50;torn=keep:4;max=3");
  EXPECT_EQ(full.mode, ScheduleMode::kEveryNth);
  EXPECT_EQ(full.every_n, 50u);
  EXPECT_EQ(full.torn, TornMode::kKeep);
  EXPECT_EQ(full.torn_keep, 4u);
  EXPECT_EQ(full.max_outages, 3u);
  EXPECT_EQ(OutageSchedule::parse(full.describe()), full);

  const OutageSchedule drop = OutageSchedule::parse("write:9;torn=drop");
  EXPECT_EQ(drop.torn, TornMode::kDropAll);
}

}  // namespace
}  // namespace iprune::fault
