// Property test: hundreds of seeded-random outage schedules, replayed in
// both intermittent-safe preservation modes through the parallel checker,
// must always terminate and always reproduce the golden logits. The batch
// runs over runtime::parallel_map, whose index-ordered gather makes the
// report identical for any lane count; a failure is shrunk to a minimal
// fixed-ordinal schedule before being reported.

#include <gtest/gtest.h>

#include "fault/checker.hpp"
#include "fault/testbed.hpp"
#include "runtime/thread_pool.hpp"

namespace iprune::fault {
namespace {

using engine::PreservationMode;

constexpr std::size_t kSchedulesPerMode = 200;

class ScheduleProperty : public ::testing::TestWithParam<PreservationMode> {
 protected:
  void SetUp() override {
    util::Rng rng(31);
    graph_ = std::make_unique<nn::Graph>(make_multipath_graph(rng));
    calib_ = make_batch(rng, *graph_, 8);
    sample_ = slice_sample(calib_, 1);
    checker_ = std::make_unique<ConsistencyChecker>(*graph_, calib_);
  }

  static std::vector<OutageSchedule> make_schedules() {
    std::vector<OutageSchedule> schedules;
    schedules.reserve(kSchedulesPerMode);
    for (std::size_t i = 0; i < kSchedulesPerMode; ++i) {
      // Sweep outage densities from "almost never" to "every few jobs";
      // the cap keeps the densest schedules from starving an inference
      // forever (that regime is covered by the watchdog test).
      const double p = 0.001 + 0.06 * static_cast<double>(i % 10) / 9.0;
      schedules.push_back(OutageSchedule::random(1000 + i, p, 48));
    }
    return schedules;
  }

  std::unique_ptr<nn::Graph> graph_;
  nn::Tensor calib_;
  nn::Tensor sample_;
  std::unique_ptr<ConsistencyChecker> checker_;
};

TEST_P(ScheduleProperty, RandomSchedulesAlwaysTerminateAndMatchGolden) {
  const std::vector<OutageSchedule> schedules = make_schedules();
  const CheckReport report =
      checker_->check_schedules(sample_, schedules, GetParam());

  ASSERT_EQ(report.outcomes.size(), kSchedulesPerMode);
  if (const ScheduleOutcome* fail = report.first_failure()) {
    const ScheduleOutcome minimized = checker_->shrink(sample_, *fail);
    FAIL() << report.failed() << " schedules diverged; minimized repro: "
           << minimized.to_string();
  }

  std::uint64_t total_outages = 0;
  for (const ScheduleOutcome& outcome : report.outcomes) {
    EXPECT_TRUE(outcome.completed) << outcome.to_string();
    total_outages += outcome.injected_outages;
  }
  EXPECT_GT(total_outages, kSchedulesPerMode / 2)
      << "the schedule pool should actually exercise outage paths";
}

TEST_P(ScheduleProperty, ReportIsDeterministicAcrossLaneCounts) {
  // Identical fold for 1 lane and the shared pool: the parallel gather
  // must not reorder or perturb outcomes.
  std::vector<OutageSchedule> schedules = make_schedules();
  schedules.resize(24);
  runtime::ThreadPool serial(1);
  const CheckReport a =
      checker_->check_schedules(sample_, schedules, GetParam(), &serial);
  const CheckReport b =
      checker_->check_schedules(sample_, schedules, GetParam());
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].passed, b.outcomes[i].passed) << i;
    EXPECT_EQ(a.outcomes[i].injected_outages, b.outcomes[i].injected_outages)
        << i;
    EXPECT_EQ(a.outcomes[i].power_failures, b.outcomes[i].power_failures)
        << i;
    EXPECT_EQ(a.outcomes[i].outage_events, b.outcomes[i].outage_events)
        << i;
    EXPECT_EQ(a.outcomes[i].to_string(), b.outcomes[i].to_string()) << i;
  }
}

// Torn-write composition: the same seeded schedules, now landing a torn
// prefix of the in-flight commit at every injected outage, must still be
// bit-identical to golden once the CRC-sealed progress records are armed.
// Runs in both preservation modes (kTaskAtomic commits multi-job batches,
// so its torn prefixes cut through whole task payloads).
TEST_P(ScheduleProperty, TornSchedulesStayConsistentUnderProtection) {
  CheckerConfig cfg;
  cfg.engine.integrity.protect_progress = true;
  const ConsistencyChecker protected_checker(*graph_, calib_, cfg);

  std::vector<OutageSchedule> schedules = make_schedules();
  schedules.resize(48);
  for (std::size_t i = 0; i < schedules.size(); ++i) {
    schedules[i] = (i % 2 == 0) ? schedules[i].with_torn_random()
                                : schedules[i].with_torn_keep(i % 5);
  }
  const CheckReport report =
      protected_checker.check_schedules(sample_, schedules, GetParam());
  ASSERT_EQ(report.outcomes.size(), schedules.size());
  if (const ScheduleOutcome* fail = report.first_failure()) {
    FAIL() << report.failed()
           << " torn schedules diverged; first: " << fail->to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    BothModes, ScheduleProperty,
    ::testing::Values(PreservationMode::kImmediate,
                      PreservationMode::kTaskAtomic),
    [](const ::testing::TestParamInfo<PreservationMode>& info) {
      return std::string(preservation_mode_name(info.param));
    });

}  // namespace
}  // namespace iprune::fault
