// Torn-write semantics of staged NVM commits: an injected outage during a
// dma_commit/pipelined_commit lands exactly the hook-chosen byte prefix
// of the WriteBatch (clamped so a tear can never be a complete write),
// while organic brown-outs and successful charges keep the all-or-nothing
// model. Swept across every byte offset of a 4-byte commit record.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "device/msp430.hpp"
#include "fault/injector.hpp"
#include "fault/schedule.hpp"
#include "power/supply.hpp"

namespace iprune::fault {
namespace {

device::Msp430Device make_device() {
  return device::Msp430Device(device::DeviceConfig::msp430fr5994(),
                              power::SupplyPresets::continuous(), {});
}

/// Payload of one "job": 4 data bytes then a 4-byte counter record —
/// the unprotected commit layout, record last.
device::WriteBatch make_commit(device::Address data_addr,
                               device::Address counter_addr,
                               std::uint32_t job) {
  device::WriteBatch batch;
  batch.push_i16(data_addr, static_cast<std::int16_t>(0x1111 * (job + 1)));
  batch.push_i16(data_addr + 2,
                 static_cast<std::int16_t>(0x2222 * (job + 1)));
  batch.push_u32(counter_addr, job);
  return batch;
}

TEST(TornWrite, SuccessfulCommitLandsTheFullBatch) {
  device::Msp430Device dev = make_device();
  const device::Address data = dev.nvm().allocate(4);
  const device::Address counter = dev.nvm().allocate(4);
  const device::WriteBatch batch = make_commit(data, counter, 7);
  ASSERT_TRUE(dev.dma_commit(batch, batch.total_bytes()));
  EXPECT_EQ(dev.nvm().read_i16(data), static_cast<std::int16_t>(0x8888));
  EXPECT_EQ(dev.nvm().read_u32(counter), 7u);
  EXPECT_EQ(dev.stats().nvm_bytes_written, 8u);
}

TEST(TornWrite, DropAllOutageLandsNothing) {
  device::Msp430Device dev = make_device();
  const device::Address data = dev.nvm().allocate(4);
  const device::Address counter = dev.nvm().allocate(4);
  dev.nvm().write_u32(counter, 41);

  FaultInjector injector(OutageSchedule::at_write(0));
  dev.set_fault_hook(&injector);
  const device::WriteBatch batch = make_commit(data, counter, 42);
  ASSERT_FALSE(dev.dma_commit(batch, batch.total_bytes()));
  dev.set_fault_hook(nullptr);

  EXPECT_EQ(dev.nvm().read_i16(data), 0);
  EXPECT_EQ(dev.nvm().read_u32(counter), 41u);  // old record intact
}

// Tear the commit at every byte offset: the first `keep` payload bytes
// land, every later byte keeps its previous cell value. In particular
// every partial prefix of the 4-byte counter record is reachable.
TEST(TornWrite, KeepPrefixLandsExactlyThatManyBytes) {
  for (std::size_t keep = 0; keep <= 8; ++keep) {
    device::Msp430Device dev = make_device();
    const device::Address data = dev.nvm().allocate(4);
    const device::Address counter = dev.nvm().allocate(4);

    // Expected payload bytes of the torn commit, in push order.
    const device::WriteBatch batch =
        make_commit(data, counter, 0x0A0B0C0D);
    std::vector<std::uint8_t> payload;
    batch.for_prefix(batch.total_bytes(),
                     [&](device::Address, std::span<const std::uint8_t> b) {
                       payload.insert(payload.end(), b.begin(), b.end());
                     });
    ASSERT_EQ(payload.size(), 8u);

    FaultInjector injector(
        OutageSchedule::at_write(0).with_torn_keep(keep));
    dev.set_fault_hook(&injector);
    ASSERT_FALSE(dev.dma_commit(batch, batch.total_bytes()));
    dev.set_fault_hook(nullptr);

    // keep is clamped to total-1: a "torn" write is never complete.
    const std::size_t landed = std::min(keep, batch.total_bytes() - 1);
    for (std::size_t i = 0; i < 8; ++i) {
      const device::Address addr = i < 4 ? data + i : counter + (i - 4);
      const std::uint8_t expect = i < landed ? payload[i] : 0;
      EXPECT_EQ(dev.nvm().peek(addr), expect)
          << "keep=" << keep << " byte " << i;
    }
  }
}

TEST(TornWrite, RandomTearIsDeterministicPerSeedAndStrictPrefix) {
  // All-nonzero payload so a landed byte is distinguishable from an
  // untouched (zero) cell.
  const std::uint8_t part_a[4] = {0x11, 0x22, 0x33, 0x44};
  const std::uint8_t part_b[4] = {0x55, 0x66, 0x77, 0x88};
  const auto run = [&](std::uint64_t seed) {
    device::Msp430Device dev = make_device();
    const device::Address a = dev.nvm().allocate(4);
    const device::Address b = dev.nvm().allocate(4);
    device::WriteBatch batch;
    batch.push_bytes(a, part_a);
    batch.push_bytes(b, part_b);
    FaultInjector injector(
        OutageSchedule::random(seed, 1.0, 1).with_torn_random());
    dev.set_fault_hook(&injector);
    EXPECT_FALSE(dev.dma_commit(batch, batch.total_bytes()));
    dev.set_fault_hook(nullptr);
    std::vector<std::uint8_t> out(8);
    for (std::size_t i = 0; i < 8; ++i) {
      out[i] = dev.nvm().peek(i < 4 ? a + i : b + (i - 4));
    }
    return out;
  };
  EXPECT_EQ(run(12), run(12));  // replay-deterministic

  // Strict prefix: once an untouched cell appears, everything after is
  // untouched, and at least the final byte never lands.
  const std::vector<std::uint8_t> torn = run(12);
  bool seen_zero = false;
  for (std::uint8_t byte : torn) {
    if (byte == 0) {
      seen_zero = true;
    } else {
      EXPECT_FALSE(seen_zero) << "non-prefix tear";
    }
  }
  EXPECT_TRUE(seen_zero) << "a torn write must not be complete";
}

TEST(TornWrite, PipelinedCommitTearsTheSameWay) {
  device::Msp430Device dev = make_device();
  const device::Address data = dev.nvm().allocate(4);
  const device::Address counter = dev.nvm().allocate(4);
  FaultInjector injector(OutageSchedule::at_write(0).with_torn_keep(5));
  dev.set_fault_hook(&injector);
  const device::WriteBatch batch = make_commit(data, counter, 3);
  ASSERT_FALSE(
      dev.pipelined_commit(batch, /*macs=*/64, batch.total_bytes(), 10));
  dev.set_fault_hook(nullptr);
  // 4 data bytes + 1 record byte landed.
  EXPECT_NE(dev.nvm().read_i16(data), 0);
  EXPECT_NE(dev.nvm().peek(counter), 0);    // job 3 LSB = 3
  EXPECT_EQ(dev.nvm().peek(counter + 1), 0);
  EXPECT_EQ(dev.nvm().peek(counter + 2), 0);
  EXPECT_EQ(dev.nvm().peek(counter + 3), 0);
}

TEST(TornWrite, RetryAfterTearCompletesTheCommit) {
  device::Msp430Device dev = make_device();
  const device::Address data = dev.nvm().allocate(4);
  const device::Address counter = dev.nvm().allocate(4);
  FaultInjector injector(OutageSchedule::at_write(0).with_torn_keep(6));
  dev.set_fault_hook(&injector);
  const device::WriteBatch batch = make_commit(data, counter, 9);
  ASSERT_FALSE(dev.dma_commit(batch, batch.total_bytes()));
  ASSERT_TRUE(dev.dma_commit(batch, batch.total_bytes()));  // idempotent
  dev.set_fault_hook(nullptr);
  EXPECT_EQ(dev.nvm().read_u32(counter), 9u);
}

}  // namespace
}  // namespace iprune::fault
