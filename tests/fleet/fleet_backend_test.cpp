// The backend= field through the fleet stack: spec round-trip, pinned
// validation messages, resolve() propagation, functional-device runs (no
// power model), batched-cohort eligibility, and the sim-strategy
// regression — scheduler mode must be bit-identical to stepping for
// functional groups, where charge scheduling is a no-op by construction.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "fleet/batched_sim.hpp"
#include "fleet/device_sim.hpp"
#include "fleet/orchestrator.hpp"
#include "fleet/spec.hpp"

namespace iprune::fleet {
namespace {

using engine::BackendConfig;
using engine::BackendKind;

DeviceGroup base_group() {
  DeviceGroup group;
  group.name = "g";
  group.count = 2;
  group.model = ModelKind::kTiny;
  group.power = PowerProfile::continuous();
  return group;
}

TEST(FleetBackend, GroupRoundTripsEveryPreset) {
  for (const BackendConfig& backend :
       {BackendConfig::msp430_fram(), BackendConfig::functional(),
        BackendConfig::reram(), BackendConfig::stt_mram()}) {
    DeviceGroup group = base_group();
    group.backend = backend;
    // describe() emits the full "group: ..." spec line; parse() takes the
    // key=value payload (FleetSpec::parse strips the tag).
    const std::string line = group.describe();
    const DeviceGroup reparsed =
        DeviceGroup::parse(line.substr(std::string("group: ").size()));
    EXPECT_EQ(reparsed, group) << backend.describe();
    EXPECT_EQ(reparsed.describe(), line) << backend.describe();
  }
}

TEST(FleetBackend, DefaultBackendIsOmittedFromDescribe) {
  const DeviceGroup group = base_group();
  EXPECT_EQ(group.describe().find("backend="), std::string::npos);

  DeviceGroup custom = base_group();
  custom.backend = BackendConfig::reram();
  EXPECT_NE(custom.describe().find("backend=reram"), std::string::npos);
}

TEST(FleetBackend, UnknownBackendMessageIsPinned) {
  try {
    DeviceGroup::parse("name=a count=1 backend=tpu");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "fleet spec: unknown backend 'tpu'");
  }
}

TEST(FleetBackend, FunctionalRequiresContinuousSupply) {
  try {
    DeviceGroup::parse("name=a count=1 supply=weak backend=functional");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "fleet spec: group 'a' backend=functional requires "
                 "supply=continuous (no power model)");
  }
}

TEST(FleetBackend, FunctionalForbidsOutageSchedules) {
  try {
    DeviceGroup::parse(
        "name=a count=1 supply=continuous backend=functional "
        "schedule=every:50");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "fleet spec: group 'a' backend=functional cannot take an "
                 "outage schedule");
  }
}

TEST(FleetBackend, ResolvePropagatesBackendToEveryDevice) {
  FleetSpec spec;
  DeviceGroup functional = base_group();
  functional.name = "fast";
  functional.backend = BackendConfig::functional();
  DeviceGroup reram = base_group();
  reram.name = "reram";
  reram.backend = BackendConfig::reram();
  spec.groups = {functional, reram};

  for (const DeviceSpec& d : spec.resolve()) {
    if (d.group == "fast") {
      EXPECT_EQ(d.backend, BackendConfig::functional());
    } else {
      EXPECT_EQ(d.backend, BackendConfig::reram());
    }
  }
}

TEST(FleetBackend, FunctionalDeviceCompletesWithoutPowerTimeline) {
  FleetSpec spec;
  spec.inferences = 3;
  DeviceGroup group = base_group();
  group.backend = BackendConfig::functional();
  spec.groups = {group};

  const std::vector<DeviceSpec> devices = spec.resolve();
  ASSERT_FALSE(devices.empty());
  const DeviceResult result = run_device(devices[0]);
  EXPECT_TRUE(result.completed);
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(result.inferences_done, 3u);
  EXPECT_NE(result.logits_checksum, 0u);
  // No power model: no harvest ledger, no outages, no simulated time.
  EXPECT_EQ(result.power_failures, 0u);
  EXPECT_EQ(result.injected_outages, 0u);
  EXPECT_EQ(result.consumed_j, 0.0);
  EXPECT_EQ(result.harvested_j, 0.0);
  EXPECT_EQ(result.sim_s, 0.0);
  // Work volume is still real.
  EXPECT_GT(result.macs, 0u);
  EXPECT_GT(result.nvm_bytes_written, 0u);
}

TEST(FleetBackend, FunctionalLogitsMatchCycleOracle) {
  FleetSpec spec;
  spec.inferences = 2;
  DeviceGroup group = base_group();
  spec.groups = {group};
  const DeviceResult oracle = run_device(spec.resolve()[0]);

  group.backend = BackendConfig::functional();
  spec.groups = {group};
  const DeviceResult fast = run_device(spec.resolve()[0]);

  ASSERT_TRUE(oracle.completed);
  ASSERT_TRUE(fast.completed);
  EXPECT_EQ(fast.logits_checksum, oracle.logits_checksum);
  EXPECT_EQ(fast.last_logits, oracle.last_logits);
}

TEST(FleetBackend, BatchedEligibilityExcludesFunctionalOnly) {
  FleetSpec spec;
  DeviceGroup group = base_group();
  group.backend = BackendConfig::functional();
  spec.groups = {group};
  for (const DeviceSpec& d : spec.resolve()) {
    EXPECT_FALSE(batched_eligible(d));
  }

  group.backend = BackendConfig::stt_mram();
  spec.groups = {group};
  for (const DeviceSpec& d : spec.resolve()) {
    EXPECT_TRUE(batched_eligible(d));
  }
}

// Satellite regression: SimKind::kScheduler (and kBatched) exist to
// accelerate the *cycle-class* power timeline; for a functional group
// they must be observationally identical to the stepping oracle.
TEST(FleetBackend, SchedulerModeBitIdenticalToSteppingForFunctional) {
  FleetSpec spec;
  spec.inferences = 2;
  DeviceGroup functional = base_group();
  functional.name = "fast";
  functional.count = 4;
  functional.model = ModelKind::kMultipath;
  functional.mode = engine::PreservationMode::kTaskAtomic;
  functional.backend = BackendConfig::functional();
  spec.groups = {functional};

  FleetSpec stepping = spec;
  stepping.sim = SimKind::kStepping;
  FleetSpec scheduler = spec;
  scheduler.sim = SimKind::kScheduler;
  FleetSpec batched = spec;
  batched.sim = SimKind::kBatched;

  const FleetResult ref = FleetOrchestrator(stepping).run();
  const FleetResult sched = FleetOrchestrator(scheduler).run();
  const FleetResult bat = FleetOrchestrator(batched).run();
  ASSERT_EQ(ref.total.completed, 4u);
  EXPECT_EQ(sched.checksum, ref.checksum);
  EXPECT_EQ(bat.checksum, ref.checksum);
}

// A mixed fleet — cycle, custom, and functional groups side by side —
// runs to completion under every sim strategy with identical checksums.
TEST(FleetBackend, MixedBackendFleetIsSimStrategyInvariant) {
  FleetSpec spec;
  spec.inferences = 1;
  DeviceGroup oracle = base_group();
  oracle.name = "oracle";
  oracle.power = PowerProfile::weak();
  DeviceGroup mram = base_group();
  mram.name = "mram";
  mram.backend = BackendConfig::stt_mram();
  mram.power = PowerProfile::strong();
  DeviceGroup fast = base_group();
  fast.name = "fast";
  fast.backend = BackendConfig::functional();
  spec.groups = {oracle, mram, fast};

  FleetSpec stepping = spec;
  stepping.sim = SimKind::kStepping;
  const FleetResult ref = FleetOrchestrator(stepping).run();
  EXPECT_EQ(ref.total.completed, ref.total.devices);

  for (const SimKind sim : {SimKind::kScheduler, SimKind::kBatched}) {
    FleetSpec other = spec;
    other.sim = sim;
    const FleetResult result = FleetOrchestrator(other).run();
    EXPECT_EQ(result.checksum, ref.checksum)
        << sim_kind_name(sim);
  }
}

}  // namespace
}  // namespace iprune::fleet
