// Batched lockstep fleet mode: for every sim kind (stepping oracle,
// event-driven scheduler, batched cohorts) a fleet produces bit-identical
// results — per-device and fleet-wide — across lane counts. The batched
// mode is pure wall-clock optimisation; these tests are its correctness
// gate.

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "fleet/batched_sim.hpp"
#include "fleet/orchestrator.hpp"

namespace iprune::fleet {
namespace {

/// Capture every streamed DeviceResult for field-by-field comparison.
class CaptureGateway final : public MetricsGateway {
 public:
  void on_device(const DeviceResult& result) override {
    devices.push_back(result);
  }
  void on_fleet(const FleetResult&) override {}
  [[nodiscard]] std::string describe() const override { return "capture"; }

  std::vector<DeviceResult> devices;
};

void expect_identical(const DeviceResult& a, const DeviceResult& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.group, b.group);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.deadline_missed, b.deadline_missed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.inferences_done, b.inferences_done);
  // Exact double equality: the timelines must be the same computation,
  // not merely close.
  EXPECT_EQ(a.sim_s, b.sim_s);
  EXPECT_EQ(a.on_s, b.on_s);
  EXPECT_EQ(a.off_s, b.off_s);
  EXPECT_EQ(a.consumed_j, b.consumed_j);
  EXPECT_EQ(a.harvested_j, b.harvested_j);
  EXPECT_EQ(a.wasted_j, b.wasted_j);
  EXPECT_EQ(a.power_failures, b.power_failures);
  EXPECT_EQ(a.injected_outages, b.injected_outages);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.nvm_bytes_read, b.nvm_bytes_read);
  EXPECT_EQ(a.nvm_bytes_written, b.nvm_bytes_written);
  EXPECT_EQ(a.macs, b.macs);
  EXPECT_EQ(a.reexecuted_jobs, b.reexecuted_jobs);
  EXPECT_EQ(a.integrity_rollbacks, b.integrity_rollbacks);
  EXPECT_EQ(a.logits_checksum, b.logits_checksum);
  EXPECT_EQ(a.last_logits, b.last_logits);
  EXPECT_EQ(a.latency_us.count(), b.latency_us.count());
  EXPECT_EQ(a.latency_us.sum(), b.latency_us.sum());
}

FleetSpec test_spec(SimKind sim) {
  // The built-in heterogeneous mix: all harvest profiles, both models,
  // all preservation modes, plus a random-schedule (cohort-ineligible)
  // fault group. 64 devices across batches of 16.
  FleetSpec spec = FleetSpec::example(64);
  spec.inferences = 2;
  spec.batch = 16;
  spec.sim = sim;
  return spec;
}

TEST(FleetBatched, SimKindRoundTripsThroughSpecText) {
  FleetSpec spec = FleetSpec::example(8);
  EXPECT_EQ(spec.sim, SimKind::kStepping);
  // Default stays off the describe() line (older spec files parse
  // unchanged and older binaries can read specs written by this one).
  EXPECT_EQ(spec.describe().find(" sim="), std::string::npos);
  EXPECT_EQ(FleetSpec::parse(spec.describe()), spec);

  spec.sim = SimKind::kBatched;
  EXPECT_NE(spec.describe().find(" sim=batched"), std::string::npos);
  EXPECT_EQ(FleetSpec::parse(spec.describe()), spec);
  spec.sim = SimKind::kScheduler;
  EXPECT_EQ(FleetSpec::parse(spec.describe()), spec);

  EXPECT_THROW(parse_sim_kind("warp"), std::invalid_argument);
  for (const SimKind kind :
       {SimKind::kStepping, SimKind::kScheduler, SimKind::kBatched}) {
    EXPECT_EQ(parse_sim_kind(sim_kind_name(kind)), kind);
  }
}

TEST(FleetBatched, PerDeviceResultsIdenticalAcrossSimKinds) {
  runtime::ThreadPool serial(1);
  CaptureGateway stepping;
  (void)FleetOrchestrator(test_spec(SimKind::kStepping))
      .run(&serial, &stepping);
  ASSERT_EQ(stepping.devices.size(), 64u);

  for (const SimKind sim : {SimKind::kScheduler, SimKind::kBatched}) {
    CaptureGateway capture;
    const FleetResult result =
        FleetOrchestrator(test_spec(sim)).run(&serial, &capture);
    ASSERT_EQ(capture.devices.size(), stepping.devices.size());
    for (std::size_t i = 0; i < capture.devices.size(); ++i) {
      expect_identical(capture.devices[i], stepping.devices[i]);
    }
    // And the digest, which CI compares across whole runs.
    const FleetResult oracle =
        FleetOrchestrator(test_spec(SimKind::kStepping)).run(&serial);
    EXPECT_EQ(result.checksum, oracle.checksum);
  }
}

TEST(FleetBatched, ChecksumStableAcrossLaneCounts) {
  const FleetOrchestrator orchestrator(test_spec(SimKind::kBatched));
  runtime::ThreadPool serial(1);
  const FleetResult reference = orchestrator.run(&serial);
  EXPECT_GT(reference.total.power_failures, 0u);
  for (const std::size_t lanes : {2u, 4u}) {
    runtime::ThreadPool pool(lanes);
    const FleetResult result = orchestrator.run(&pool);
    EXPECT_EQ(result.checksum, reference.checksum) << lanes << " lanes";
    EXPECT_EQ(result.total.events, reference.total.events);
    EXPECT_EQ(result.total.consumed_j, reference.total.consumed_j);
  }
}

TEST(FleetBatched, RunCohortMatchesStandaloneDevices) {
  // Direct unit check, no orchestrator: one eligible group simulated as
  // a cohort must reproduce each member's standalone run exactly.
  FleetSpec spec = test_spec(SimKind::kBatched);
  const std::vector<DeviceSpec> devices = spec.resolve();

  // Pick the first run of >= 3 consecutive eligible same-group devices.
  std::size_t begin = 0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < devices.size() && count < 3; ++i) {
    if (batched_eligible(devices[i]) &&
        (count == 0 || devices[i].group == devices[begin].group)) {
      if (count == 0) {
        begin = i;
      }
      ++count;
    } else {
      count = 0;
    }
  }
  ASSERT_EQ(count, 3u) << "example fleet must contain an eligible cohort";

  const std::vector<DeviceResult> cohort =
      run_cohort(std::span(devices.data() + begin, count));
  ASSERT_EQ(cohort.size(), count);
  for (std::size_t m = 0; m < count; ++m) {
    const DeviceResult standalone = run_device(devices[begin + m]);
    expect_identical(cohort[m], standalone);
  }
  // Distinct per-member weights must yield distinct logits — proof the
  // cohort is not accidentally simulating one device N times.
  EXPECT_NE(cohort[0].logits_checksum, cohort[1].logits_checksum);
  EXPECT_NE(cohort[1].logits_checksum, cohort[2].logits_checksum);
}

TEST(FleetBatched, IneligibleSpecsFallBackAndStillMatch) {
  // Random schedules are re-seeded per device: never lockstep-eligible.
  FleetSpec spec = test_spec(SimKind::kBatched);
  for (const DeviceSpec& d : spec.resolve()) {
    if (d.schedule.mode == fault::ScheduleMode::kRandom) {
      EXPECT_FALSE(batched_eligible(d));
    }
  }
  // Telemetry arms per-device trace sinks — whole fleet falls back, and
  // results still match the stepping oracle (registry included).
  FleetSpec telemetry_spec = test_spec(SimKind::kBatched);
  telemetry_spec.telemetry = true;
  FleetSpec telemetry_oracle = telemetry_spec;
  telemetry_oracle.sim = SimKind::kStepping;
  runtime::ThreadPool serial(1);
  const FleetResult a = FleetOrchestrator(telemetry_spec).run(&serial);
  const FleetResult b = FleetOrchestrator(telemetry_oracle).run(&serial);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.registry.events_seen(), b.registry.events_seen());
  EXPECT_GT(a.registry.events_seen(), 0u);
}

}  // namespace
}  // namespace iprune::fleet
