// The fleet orchestrator's determinism contract: a heterogeneous fleet
// simulated on 1, 2, and 8 lanes produces bit-identical results — fleet
// checksum, every aggregate, the merged telemetry registry, and the
// byte-exact gateway outputs.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "fleet/orchestrator.hpp"

namespace iprune::fleet {
namespace {

FleetSpec test_spec() {
  // All five harvest profiles, both models, all three preservation modes,
  // plus injected outages — small enough for a unit test, heterogeneous
  // enough to catch cross-device interference.
  FleetSpec spec = FleetSpec::example(48);
  spec.inferences = 2;
  spec.telemetry = true;
  spec.batch = 16;  // several batches, so batching is exercised too
  return spec;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void expect_equal(const GroupStats& a, const GroupStats& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.devices, b.devices);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.deadline_missed, b.deadline_missed);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.inferences, b.inferences);
  EXPECT_EQ(a.power_failures, b.power_failures);
  EXPECT_EQ(a.injected_outages, b.injected_outages);
  EXPECT_EQ(a.events, b.events);
  // Bit-equality on the summed doubles, not approximate equality: the
  // fold order is fixed, so the sums must be the exact same value.
  EXPECT_EQ(a.harvested_j, b.harvested_j);
  EXPECT_EQ(a.consumed_j, b.consumed_j);
  EXPECT_EQ(a.wasted_j, b.wasted_j);
  EXPECT_EQ(a.on_s, b.on_s);
  EXPECT_EQ(a.off_s, b.off_s);
  EXPECT_EQ(a.max_sim_s, b.max_sim_s);
  EXPECT_EQ(a.latency_us.count(), b.latency_us.count());
  EXPECT_EQ(a.latency_us.sum(), b.latency_us.sum());
  for (std::size_t i = 0; i < telemetry::Histogram::kBuckets; ++i) {
    EXPECT_EQ(a.latency_us.bucket(i), b.latency_us.bucket(i));
  }
}

TEST(FleetDeterminism, BitIdenticalAcrossLaneCounts) {
  const FleetSpec spec = test_spec();
  const FleetOrchestrator orchestrator(spec);

  runtime::ThreadPool serial(1);
  const FleetResult reference = orchestrator.run(&serial);
  ASSERT_EQ(reference.total.devices, 48u);
  // The example mix must actually exercise intermittency for this test
  // to mean anything.
  EXPECT_GT(reference.total.power_failures, 0u);
  EXPECT_GT(reference.total.injected_outages, 0u);
  EXPECT_GT(reference.registry.events_seen(), 0u);

  for (const std::size_t lanes : {2u, 8u}) {
    runtime::ThreadPool pool(lanes);
    const FleetResult result = orchestrator.run(&pool);
    EXPECT_EQ(result.checksum, reference.checksum) << lanes << " lanes";
    expect_equal(result.total, reference.total);
    ASSERT_EQ(result.groups.size(), reference.groups.size());
    for (std::size_t g = 0; g < result.groups.size(); ++g) {
      expect_equal(result.groups[g], reference.groups[g]);
    }
    EXPECT_EQ(result.registry.events_seen(),
              reference.registry.events_seen());
    for (std::size_t c = 0; c < telemetry::kEventClassCount; ++c) {
      const auto cls = static_cast<telemetry::EventClass>(c);
      EXPECT_EQ(result.registry.for_class(cls).events,
                reference.registry.for_class(cls).events);
      EXPECT_EQ(result.registry.for_class(cls).energy_j,
                reference.registry.for_class(cls).energy_j);
    }
  }
}

TEST(FleetDeterminism, GatewayFilesByteIdenticalAcrossLaneCounts) {
  const FleetSpec spec = test_spec();
  const FleetOrchestrator orchestrator(spec);

  std::string devices_csv;
  std::string summary_csv;
  std::string prom;
  for (const std::size_t lanes : {1u, 4u}) {
    const std::string dir = testing::TempDir() + "/fleet_gw_" +
                            std::to_string(lanes);
    std::filesystem::remove_all(dir);
    MultiGateway gateway;
    gateway.add_owned(std::make_unique<CsvGateway>(dir));
    gateway.add_owned(
        std::make_unique<PrometheusGateway>(dir + "/fleet_metrics.prom"));
    runtime::ThreadPool pool(lanes);
    (void)orchestrator.run(&pool, &gateway);

    const std::string d = slurp(dir + "/fleet_devices.csv");
    const std::string s = slurp(dir + "/fleet_summary.csv");
    const std::string p = slurp(dir + "/fleet_metrics.prom");
    if (lanes == 1) {
      devices_csv = d;
      summary_csv = s;
      prom = p;
      EXPECT_FALSE(d.empty());
      EXPECT_FALSE(s.empty());
      EXPECT_FALSE(p.empty());
    } else {
      EXPECT_EQ(d, devices_csv);
      EXPECT_EQ(s, summary_csv);
      EXPECT_EQ(p, prom);
    }
  }
}

TEST(FleetDeterminism, DefaultPoolAndNoGatewayMatchExplicit) {
  FleetSpec spec = test_spec();
  spec = spec.with_devices(8);  // keep the shared-pool run small
  const FleetOrchestrator orchestrator(spec);
  runtime::ThreadPool serial(1);
  const FleetResult a = orchestrator.run(&serial);
  const FleetResult b = orchestrator.run();  // shared pool, null gateway
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.total.events, b.total.events);
}

}  // namespace
}  // namespace iprune::fleet
