// Differential check: a single-device fleet must reproduce a hand-built
// standalone engine stack exactly — same logits (bitwise), same chained
// logits checksum, same power/fault counters, same telemetry registry.
// The standalone side below deliberately re-implements the construction
// recipe documented in src/fleet/device_sim.hpp from the resolved
// DeviceSpec alone; if DeviceSim's seeding, draw order, or configuration
// drifts, this test is what catches it.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "device/config.hpp"
#include "device/corruption.hpp"
#include "device/msp430.hpp"
#include "engine/engine.hpp"
#include "fault/injector.hpp"
#include "fault/testbed.hpp"
#include "fleet/orchestrator.hpp"
#include "telemetry/sink.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace iprune::fleet {
namespace {

// Must match DeviceSim's private constant: the calibration batch drawn
// (before the sample batch) from the device's model Rng stream.
constexpr std::size_t kCalibrationSamples = 8;

struct StandaloneRun {
  std::size_t inferences_done = 0;
  std::uint64_t logits_checksum = 0;
  std::vector<float> last_logits;
  std::size_t power_failures = 0;
  std::size_t injected_outages = 0;
  std::uint64_t events = 0;
  std::size_t reexecuted_jobs = 0;
  std::size_t integrity_rollbacks = 0;
  telemetry::MetricsRegistry registry;
};

StandaloneRun run_standalone(const DeviceSpec& spec) {
  util::Rng rng(spec.model_seed);
  nn::Graph graph = spec.model == ModelKind::kTiny
                        ? fault::make_tiny_graph(rng)
                        : fault::make_multipath_graph(rng);
  const nn::Tensor calibration =
      fault::make_batch(rng, graph, kCalibrationSamples);
  const nn::Tensor samples = fault::make_batch(rng, graph, spec.inferences);

  device::Msp430Device device(device::DeviceConfig::msp430fr5994(),
                              spec.power.make());

  engine::EngineConfig config;
  config.mode = spec.mode;
  const bool corrupted = spec.write_ber > 0.0 || spec.read_ber > 0.0;
  if (corrupted) {
    config.integrity.protect_progress = true;
    config.integrity.seal_regions = true;
    config.integrity.scrub_on_boot = true;
  }
  engine::DeployedModel model(graph, config, device, calibration);

  std::unique_ptr<device::CorruptionModel> corruption;
  if (corrupted) {
    device::CorruptionConfig cc;
    cc.seed = spec.stream_seed;
    cc.write_ber = spec.write_ber;
    cc.read_ber = spec.read_ber;
    corruption = std::make_unique<device::CorruptionModel>(cc);
    device.nvm().set_corruption(corruption.get());
  }

  fault::FaultInjector injector(spec.schedule);
  injector.set_event_budget(spec.event_budget != 0
                                ? spec.event_budget
                                : fault::FaultInjector::kNoBudget);
  device.set_fault_hook(&injector);

  telemetry::RegistrySink sink;
  if (spec.telemetry) {
    device.set_trace_sink(&sink);
  }

  engine::IntermittentEngine engine(model, device);

  StandaloneRun out;
  for (std::size_t i = 0; i < spec.inferences; ++i) {
    engine::InferenceResult inference =
        engine.run(fault::slice_sample(samples, i));
    EXPECT_TRUE(inference.stats.completed);
    out.reexecuted_jobs += inference.stats.reexecuted_jobs;
    out.integrity_rollbacks += inference.stats.integrity_rollbacks;
    util::Fnv1a digest;
    digest.fold_u64(out.logits_checksum);
    digest.fold_f32(inference.logits.data(), inference.logits.size());
    out.logits_checksum = digest.value();
    out.last_logits = std::move(inference.logits);
    ++out.inferences_done;
  }

  device.set_fault_hook(nullptr);
  device.set_trace_sink(nullptr);
  device.nvm().set_corruption(nullptr);
  out.power_failures = device.power().stats().power_failures;
  out.injected_outages = device.power().stats().injected_failures;
  out.events = injector.total_events();
  if (spec.telemetry) {
    out.registry = sink.take_registry();
  }
  return out;
}

/// Gateway that keeps every streamed DeviceResult for inspection.
class CapturingGateway final : public MetricsGateway {
 public:
  void on_device(const DeviceResult& result) override {
    devices.push_back(result);
  }
  void on_fleet(const FleetResult&) override { ++fleet_calls; }
  [[nodiscard]] std::string describe() const override { return "capture"; }

  std::vector<DeviceResult> devices;
  int fleet_calls = 0;
};

void expect_matches(const DeviceResult& fleet, const StandaloneRun& solo) {
  EXPECT_TRUE(fleet.completed);
  EXPECT_FALSE(fleet.failed) << fleet.error;
  EXPECT_EQ(fleet.inferences_done, solo.inferences_done);

  // Bitwise logit equality, not approximate: the fleet path must be the
  // same computation, not a numerically similar one.
  ASSERT_EQ(fleet.last_logits.size(), solo.last_logits.size());
  for (std::size_t i = 0; i < solo.last_logits.size(); ++i) {
    EXPECT_EQ(fleet.last_logits[i], solo.last_logits[i]) << "logit " << i;
  }
  EXPECT_EQ(fleet.logits_checksum, solo.logits_checksum);

  EXPECT_EQ(fleet.power_failures, solo.power_failures);
  EXPECT_EQ(fleet.injected_outages, solo.injected_outages);
  EXPECT_EQ(fleet.events, solo.events);
  EXPECT_EQ(fleet.reexecuted_jobs, solo.reexecuted_jobs);
  EXPECT_EQ(fleet.integrity_rollbacks, solo.integrity_rollbacks);

  EXPECT_EQ(fleet.registry.events_seen(), solo.registry.events_seen());
  for (std::size_t c = 0; c < telemetry::kEventClassCount; ++c) {
    const auto cls = static_cast<telemetry::EventClass>(c);
    EXPECT_EQ(fleet.registry.for_class(cls).events,
              solo.registry.for_class(cls).events);
    EXPECT_EQ(fleet.registry.for_class(cls).energy_j,
              solo.registry.for_class(cls).energy_j);
    EXPECT_EQ(fleet.registry.for_class(cls).bytes,
              solo.registry.for_class(cls).bytes);
    EXPECT_EQ(fleet.registry.for_class(cls).macs,
              solo.registry.for_class(cls).macs);
  }
}

DeviceResult run_single_device_fleet(const FleetSpec& spec) {
  const FleetOrchestrator orchestrator(spec);
  CapturingGateway capture;
  runtime::ThreadPool pool(1);
  const FleetResult result = orchestrator.run(&pool, &capture);
  EXPECT_EQ(result.total.devices, 1u);
  EXPECT_EQ(capture.fleet_calls, 1);
  EXPECT_EQ(capture.devices.size(), 1u);
  return capture.devices.front();
}

TEST(FleetDifferential, CleanContinuousDeviceMatchesStandaloneStack) {
  FleetSpec spec;
  spec.seed = 77;
  spec.inferences = 3;
  spec.telemetry = true;
  DeviceGroup group;
  group.name = "mains";
  group.count = 1;
  group.model = ModelKind::kTiny;
  group.mode = engine::PreservationMode::kImmediate;
  group.power = PowerProfile::continuous();
  spec.groups = {group};

  const std::vector<DeviceSpec> devices = spec.resolve();
  ASSERT_EQ(devices.size(), 1u);
  const DeviceResult fleet = run_single_device_fleet(spec);
  const StandaloneRun solo = run_standalone(devices[0]);

  expect_matches(fleet, solo);
  EXPECT_EQ(fleet.power_failures, 0u);  // mains power never fails
  EXPECT_GT(fleet.events, 0u);
}

TEST(FleetDifferential, IntermittentCorruptedDeviceMatchesStandaloneStack) {
  // The hard case: a starved harvest supply (organic brownouts), a forced
  // outage schedule, and NVM corruption arming the integrity layer. Every
  // replay/rollback decision must land identically on both sides.
  FleetSpec spec;
  spec.seed = 1234;
  spec.inferences = 8;  // must outrun the ~104 uJ buffer to brown out
  spec.telemetry = true;
  DeviceGroup group;
  group.name = "harsh";
  group.count = 1;
  group.model = ModelKind::kTiny;
  group.mode = engine::PreservationMode::kTaskAtomic;
  // 10 uW: the ~104 uJ buffer covers roughly six tiny inferences, so the
  // run browns out organically after the injected outage's full recharge.
  group.power = PowerProfile::constant(1e-5);
  group.schedule = fault::OutageSchedule::at_events({100});
  group.write_ber = 1e-6;
  spec.groups = {group};

  const std::vector<DeviceSpec> devices = spec.resolve();
  ASSERT_EQ(devices.size(), 1u);
  const DeviceResult fleet = run_single_device_fleet(spec);
  const StandaloneRun solo = run_standalone(devices[0]);

  expect_matches(fleet, solo);
  EXPECT_EQ(fleet.injected_outages, 1u);
  EXPECT_GT(fleet.power_failures, fleet.injected_outages)
      << "expected organic brownouts on a 10 uW supply";
}

TEST(FleetDifferential, MultipathTaskModeMatchesStandaloneStack) {
  FleetSpec spec;
  spec.seed = 9;
  spec.inferences = 2;
  spec.telemetry = false;  // also cover the no-telemetry construction path
  DeviceGroup group;
  group.name = "multi";
  group.count = 1;
  group.model = ModelKind::kMultipath;
  group.mode = engine::PreservationMode::kTaskAtomic;
  group.power = PowerProfile::strong();
  spec.groups = {group};

  const std::vector<DeviceSpec> devices = spec.resolve();
  ASSERT_EQ(devices.size(), 1u);
  const DeviceResult fleet = run_single_device_fleet(spec);
  const StandaloneRun solo = run_standalone(devices[0]);
  expect_matches(fleet, solo);
}

}  // namespace
}  // namespace iprune::fleet
