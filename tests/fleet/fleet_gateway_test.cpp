// Gateway exports: CSV shape/format, Prometheus exposition-format
// invariants (cumulative le buckets, +Inf == count), and MultiGateway
// fan-out.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "fleet/orchestrator.hpp"

namespace iprune::fleet {
namespace {

FleetResult small_fleet(std::size_t devices, MetricsGateway* gateway) {
  FleetSpec spec = FleetSpec::example(devices);
  spec.inferences = 2;
  const FleetOrchestrator orchestrator(spec);
  runtime::ThreadPool pool(1);
  return orchestrator.run(&pool, gateway);
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

std::size_t count_cells(const std::string& csv_line) {
  return static_cast<std::size_t>(
             std::count(csv_line.begin(), csv_line.end(), ',')) +
         1;
}

TEST(CsvGatewayTest, WritesOneRowPerDeviceAndPerScope) {
  const std::string dir = testing::TempDir() + "/fleet_csv_test";
  std::filesystem::remove_all(dir);
  CsvGateway gateway(dir);
  const FleetResult result = small_fleet(10, &gateway);

  const std::vector<std::string> devices = read_lines(gateway.devices_path());
  ASSERT_EQ(devices.size(), 1u + result.total.devices);
  EXPECT_EQ(devices[0],
            "index,group,status,verdict,error,inferences,sim_s,on_s,off_s,"
            "consumed_j,harvested_j,wasted_j,power_failures,"
            "injected_outages,events,nvm_bytes_read,nvm_bytes_written,macs,"
            "reexecuted_jobs,integrity_rollbacks,latency_p50_us,"
            "latency_max_us,logits_checksum");
  const std::size_t device_cols = count_cells(devices[0]);
  for (std::size_t i = 1; i < devices.size(); ++i) {
    EXPECT_EQ(count_cells(devices[i]), device_cols) << devices[i];
    // Rows stream in device-index order; the index is the first cell.
    EXPECT_EQ(devices[i].substr(0, devices[i].find(',')),
              std::to_string(i - 1));
  }

  const std::vector<std::string> summary = read_lines(gateway.summary_path());
  // Header + the fleet row + one row per group.
  ASSERT_EQ(summary.size(), 2u + result.groups.size());
  EXPECT_EQ(summary[1].substr(0, 6), "fleet,");
  for (std::size_t i = 2; i < summary.size(); ++i) {
    EXPECT_EQ(summary[i].substr(0, 6), "group,");
  }
  // The fleet row carries the 16-hex-digit fleet checksum as its last cell.
  const std::string checksum =
      summary[1].substr(summary[1].rfind(',') + 1);
  EXPECT_EQ(checksum.size(), 16u);
  char* end = nullptr;
  const std::uint64_t parsed = std::strtoull(checksum.c_str(), &end, 16);
  EXPECT_EQ(*end, '\0');
  EXPECT_EQ(parsed, result.checksum);

  EXPECT_NE(gateway.describe().find("csv:"), std::string::npos);
}

TEST(PrometheusGatewayTest, RenderFollowsExpositionFormat) {
  NullGateway null;
  const FleetResult result = small_fleet(10, &null);
  const std::string text = PrometheusGateway::render(result);

  EXPECT_NE(text.find("# TYPE iprune_fleet_devices gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("iprune_fleet_devices " +
                      std::to_string(result.total.devices) + "\n"),
            std::string::npos);
  EXPECT_NE(text.find("iprune_fleet_inferences_total " +
                      std::to_string(result.total.inferences) + "\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("# TYPE iprune_fleet_inference_latency_us histogram\n"),
      std::string::npos);
  // Every group appears as a label.
  for (const GroupStats& group : result.groups) {
    EXPECT_NE(text.find("iprune_fleet_group_devices{group=\"" + group.name +
                        "\"} " + std::to_string(group.devices) + "\n"),
              std::string::npos);
  }

  // le buckets must be cumulative (non-decreasing) and +Inf must equal
  // the histogram count, which must equal the completed-inference count.
  std::istringstream lines(text);
  std::string line;
  std::uint64_t previous = 0;
  std::uint64_t inf_value = 0;
  std::uint64_t count_value = 0;
  std::size_t buckets = 0;
  while (std::getline(lines, line)) {
    const std::string bucket_prefix =
        "iprune_fleet_inference_latency_us_bucket{le=\"";
    if (line.rfind(bucket_prefix, 0) == 0) {
      const std::uint64_t value =
          std::stoull(line.substr(line.rfind(' ') + 1));
      if (line.find("+Inf") != std::string::npos) {
        inf_value = value;
      } else {
        EXPECT_GE(value, previous) << line;
        previous = value;
        ++buckets;
      }
    } else if (line.rfind("iprune_fleet_inference_latency_us_count ", 0) ==
               0) {
      count_value = std::stoull(line.substr(line.rfind(' ') + 1));
    }
  }
  EXPECT_EQ(buckets, telemetry::Histogram::kBuckets);
  EXPECT_EQ(inf_value, count_value);
  EXPECT_EQ(count_value, result.total.latency_us.count());
  EXPECT_EQ(count_value, result.total.inferences);
  // The last finite bucket already contains everything.
  EXPECT_EQ(previous, count_value);

  // on_fleet writes exactly render()'s text.
  const std::string path =
      testing::TempDir() + "/fleet_prom_test/metrics.prom";
  std::filesystem::remove_all(testing::TempDir() + "/fleet_prom_test");
  PrometheusGateway gateway(path);
  gateway.on_fleet(result);
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in);
  std::ostringstream written;
  written << in.rdbuf();
  EXPECT_EQ(written.str(), text);
}

TEST(MultiGatewayTest, FansOutToEveryChildInOrder) {
  class Counting final : public MetricsGateway {
   public:
    void on_device(const DeviceResult&) override { ++devices; }
    void on_fleet(const FleetResult&) override { ++fleets; }
    [[nodiscard]] std::string describe() const override { return "count"; }
    int devices = 0;
    int fleets = 0;
  };

  Counting first;
  MultiGateway multi;
  multi.add(&first);
  auto owned = std::make_unique<Counting>();
  Counting* second = owned.get();
  multi.add_owned(std::move(owned));
  multi.add(nullptr);  // ignored, not dereferenced

  const FleetResult result = small_fleet(6, &multi);
  EXPECT_EQ(first.devices, static_cast<int>(result.total.devices));
  EXPECT_EQ(first.fleets, 1);
  EXPECT_EQ(second->devices, first.devices);
  EXPECT_EQ(second->fleets, 1);
  EXPECT_EQ(multi.describe(), "multi[count,count]");
}

}  // namespace
}  // namespace iprune::fleet
