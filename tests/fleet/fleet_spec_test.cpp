#include "fleet/spec.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace iprune::fleet {
namespace {

TEST(FleetSpec, DescribeParseRoundTrip) {
  FleetSpec spec = FleetSpec::example(20);
  spec.deadline_s = 12.5;
  spec.telemetry = true;
  spec.batch = 64;
  const FleetSpec reparsed = FleetSpec::parse(spec.describe());
  EXPECT_EQ(reparsed, spec);
  // Round-trip is a fixpoint: describe(parse(describe(x))) == describe(x).
  EXPECT_EQ(reparsed.describe(), spec.describe());
}

TEST(FleetSpec, RoundTripPreservesSchedulesAndCorruption) {
  FleetSpec spec;
  DeviceGroup group;
  group.name = "noisy";
  group.count = 3;
  group.model = ModelKind::kMultipath;
  group.mode = engine::PreservationMode::kTaskAtomic;
  group.power = PowerProfile::solar(7.25e-3, 0.125);
  group.schedule =
      fault::OutageSchedule::random(42, 0.01, 8).with_torn_random();
  group.write_ber = 1.5e-6;
  group.read_ber = 2.5e-7;
  spec.groups = {group};
  EXPECT_EQ(FleetSpec::parse(spec.describe()), spec);
}

TEST(FleetSpec, ParseAcceptsCommentsAndBlankLines) {
  const FleetSpec spec = FleetSpec::parse(
      "# a comment\n"
      "\n"
      "fleet: seed=9 inferences=3\n"
      "  # indented comment\n"
      "group: name=a count=2 model=tiny mode=immediate supply=weak\n");
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_EQ(spec.inferences, 3u);
  ASSERT_EQ(spec.groups.size(), 1u);
  EXPECT_EQ(spec.groups[0].power, PowerProfile::weak());
}

TEST(FleetSpec, ParseRejectsMalformedInput) {
  EXPECT_THROW(FleetSpec::parse(""), std::invalid_argument);
  EXPECT_THROW(FleetSpec::parse("bogus line\n"), std::invalid_argument);
  EXPECT_THROW(FleetSpec::parse("fleet: seed=1\n"),
               std::invalid_argument);  // no groups
  EXPECT_THROW(
      FleetSpec::parse("group: count=1 model=tiny\n"),  // no name
      std::invalid_argument);
  EXPECT_THROW(
      FleetSpec::parse("group: name=a count=0\n"),  // zero count
      std::invalid_argument);
  EXPECT_THROW(
      FleetSpec::parse("group: name=a count=1 model=resnet50\n"),
      std::invalid_argument);
  EXPECT_THROW(
      FleetSpec::parse("group: name=a count=1 supply=fusion\n"),
      std::invalid_argument);
  EXPECT_THROW(
      FleetSpec::parse("group: name=a count=1 write_ber=1.5\n"),
      std::invalid_argument);
  EXPECT_THROW(
      FleetSpec::parse("fleet: seed=1 warp=9\n"
                       "group: name=a count=1\n"),
      std::invalid_argument);
}

TEST(FleetSpec, WithDevicesScalesProportionally) {
  FleetSpec spec;
  DeviceGroup a;
  a.name = "a";
  a.count = 3;
  DeviceGroup b;
  b.name = "b";
  b.count = 1;
  spec.groups = {a, b};

  const FleetSpec scaled = spec.with_devices(100);
  EXPECT_EQ(scaled.total_devices(), 100u);
  EXPECT_EQ(scaled.groups[0].count, 75u);
  EXPECT_EQ(scaled.groups[1].count, 25u);

  // Remainders go to the largest fractional share; totals always exact.
  for (const std::size_t n : {1u, 2u, 5u, 7u, 13u, 999u}) {
    const FleetSpec s = spec.with_devices(n);
    EXPECT_EQ(s.total_devices(), n) << n;
  }

  // Scaling below the group count drops empty groups.
  const FleetSpec one = spec.with_devices(1);
  ASSERT_EQ(one.groups.size(), 1u);
  EXPECT_EQ(one.groups[0].name, "a");

  EXPECT_THROW(spec.with_devices(0), std::invalid_argument);
}

TEST(FleetSpec, ResolveIsDeterministicAndDecorrelated) {
  const FleetSpec spec = FleetSpec::example(30);
  const std::vector<DeviceSpec> a = spec.resolve();
  const std::vector<DeviceSpec> b = spec.resolve();
  ASSERT_EQ(a.size(), 30u);

  std::set<std::uint64_t> model_seeds;
  std::set<std::uint64_t> stream_seeds;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, i);
    // Same spec resolves to the same devices, always.
    EXPECT_EQ(a[i].model_seed, b[i].model_seed);
    EXPECT_EQ(a[i].stream_seed, b[i].stream_seed);
    EXPECT_EQ(a[i].group, b[i].group);
    model_seeds.insert(a[i].model_seed);
    stream_seeds.insert(a[i].stream_seed);
  }
  // Every device draws a distinct stream.
  EXPECT_EQ(model_seeds.size(), a.size());
  EXPECT_EQ(stream_seeds.size(), a.size());

  // A different fleet seed re-seeds every device.
  FleetSpec other = spec;
  other.seed = spec.seed + 1;
  const std::vector<DeviceSpec> c = other.resolve();
  EXPECT_NE(c[0].model_seed, a[0].model_seed);
}

TEST(FleetSpec, ResolveReseedsRandomSchedulesPerDevice) {
  FleetSpec spec;
  DeviceGroup group;
  group.name = "g";
  group.count = 4;
  group.schedule = fault::OutageSchedule::random(5, 0.01);
  spec.groups = {group};
  const std::vector<DeviceSpec> devices = spec.resolve();
  std::set<std::uint64_t> seeds;
  for (const DeviceSpec& d : devices) {
    EXPECT_EQ(d.schedule.mode, fault::ScheduleMode::kRandom);
    EXPECT_EQ(d.schedule.probability, 0.01);
    seeds.insert(d.schedule.seed);
  }
  EXPECT_EQ(seeds.size(), devices.size());
}

TEST(PowerProfile, DescribeParseRoundTrip) {
  for (const PowerProfile& p :
       {PowerProfile::continuous(), PowerProfile::strong(),
        PowerProfile::weak(), PowerProfile::constant(1.25e-3),
        PowerProfile::solar(8.5e-3, 0.75)}) {
    EXPECT_EQ(PowerProfile::parse(p.describe()), p) << p.describe();
    EXPECT_NE(p.make(), nullptr);
  }
  EXPECT_THROW(PowerProfile::parse("solar:1"), std::invalid_argument);
  EXPECT_THROW(PowerProfile::parse("const:x"), std::invalid_argument);
}

}  // namespace
}  // namespace iprune::fleet
