// The trace: supply leaf — measured harvest traces as first-class
// PowerProfile values, usable from FleetSpec text and scenarios/*.json.
// The spec stays pure data (validate() never touches the filesystem);
// make() is where a missing file surfaces.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "fleet/spec.hpp"
#include "power/supply.hpp"
#include "scenario/scenario.hpp"

namespace iprune::fleet {
namespace {

namespace fs = std::filesystem;

void expect_invalid(const PowerProfile& profile, const std::string& message) {
  try {
    profile.validate();
    FAIL() << "expected validate() to reject; wanted: " << message;
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()), message);
  }
}

TEST(TraceProfile, FactoryFillsTheActiveFields) {
  const PowerProfile p = PowerProfile::trace("bench/harvest.csv", 0.25);
  EXPECT_EQ(p.kind, PowerProfile::Kind::kTrace);
  EXPECT_EQ(p.trace_path, "bench/harvest.csv");
  EXPECT_DOUBLE_EQ(p.period_s, 0.25);
  EXPECT_NO_THROW(p.validate());
}

TEST(TraceProfile, DescribeParseRoundTrip) {
  const PowerProfile p = PowerProfile::trace("traces/office.csv", 0.125);
  EXPECT_EQ(p.describe(), "trace:0.125:traces/office.csv");
  EXPECT_EQ(PowerProfile::parse(p.describe()), p);
}

TEST(TraceProfile, PathMayContainColons) {
  // The period comes first precisely so the path can hold ':' (Windows
  // drives, URLs, timestamped filenames). Only the FIRST colon after the
  // prefix splits.
  const PowerProfile p = PowerProfile::trace("C:/traces/run:2026-08.csv", 2.0);
  const std::string text = p.describe();
  EXPECT_EQ(text, "trace:2:C:/traces/run:2026-08.csv");
  const PowerProfile reparsed = PowerProfile::parse(text);
  EXPECT_EQ(reparsed, p);
  EXPECT_EQ(reparsed.trace_path, "C:/traces/run:2026-08.csv");
}

TEST(TraceProfile, ValidationMessagesNameTheField) {
  expect_invalid(PowerProfile::trace("t.csv", 0.0),
                 "fleet spec: supply trace period_s must be finite and > 0");
  expect_invalid(PowerProfile::trace("t.csv", -1.0),
                 "fleet spec: supply trace period_s must be finite and > 0");
  expect_invalid(PowerProfile::trace("", 1.0),
                 "fleet spec: supply trace path must be non-empty");
}

TEST(TraceProfile, ParseRejectsMissingPieces) {
  try {
    (void)PowerProfile::parse("trace:1.5");
    FAIL() << "expected parse to reject";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()),
              "fleet spec: supply needs trace:<period_s>:<path>, "
              "got 'trace:1.5'");
  }
  // A non-numeric period is caught by the shared double parser.
  EXPECT_THROW((void)PowerProfile::parse("trace:abc:file.csv"),
               std::invalid_argument);
  // Validation runs inside parse: a parsed profile always make()s.
  EXPECT_THROW((void)PowerProfile::parse("trace:0:file.csv"),
               std::invalid_argument);
  EXPECT_THROW((void)PowerProfile::parse("trace:1:"),
               std::invalid_argument);
}

struct TraceProfileFiles : ::testing::Test {
  std::string dir;

  void SetUp() override {
    dir = ::testing::TempDir() + "/trace_profile_test";
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  void TearDown() override { fs::remove_all(dir); }

  std::string write_trace() {
    const std::string path = dir + "/harvest.csv";
    std::ofstream out(path);
    out << "# mW samples, 0.5 s apart\n"
        << "10\n"
        << "20\n"
        << "0\n";
    return path;
  }
};

TEST_F(TraceProfileFiles, MakeBuildsATraceSupply) {
  const std::string path = write_trace();
  const PowerProfile p = PowerProfile::trace(path, 0.5);
  const auto supply = p.make();
  ASSERT_NE(supply, nullptr);
  // Samples are milliwatts on disk, watts in the supply.
  EXPECT_DOUBLE_EQ(supply->power_w(0.1), 10e-3);
  EXPECT_DOUBLE_EQ(supply->power_w(0.6), 20e-3);
  EXPECT_DOUBLE_EQ(supply->power_w(1.1), 0.0);
}

TEST_F(TraceProfileFiles, MakeThrowsForMissingFile) {
  const PowerProfile p = PowerProfile::trace(dir + "/nope.csv", 0.5);
  EXPECT_NO_THROW(p.validate());  // spec stays pure data
  EXPECT_THROW((void)p.make(), std::runtime_error);
}

TEST_F(TraceProfileFiles, FleetSpecTextRoundTripsATraceGroup) {
  const std::string path = write_trace();
  FleetSpec spec;
  DeviceGroup group;
  group.name = "harvested";
  group.count = 2;
  group.power = PowerProfile::trace(path, 0.5);
  spec.groups = {group};

  const FleetSpec reparsed = FleetSpec::parse(spec.describe());
  EXPECT_EQ(reparsed, spec);
  EXPECT_EQ(reparsed.groups[0].power.trace_path, path);
}

TEST_F(TraceProfileFiles, ScenarioJsonRoundTripsATraceSupply) {
  const std::string path = write_trace();
  const std::string text =
      "{\"version\": 1, \"name\": \"trace-demo\", \"groups\": "
      "[{\"name\": \"g\", \"supply\": \"trace:0.5:" + path + "\"}]}";
  const scenario::Scenario sc = scenario::Scenario::parse(text);
  ASSERT_EQ(sc.groups.size(), 1u);
  EXPECT_EQ(sc.groups[0].power.kind, PowerProfile::Kind::kTrace);
  EXPECT_EQ(sc.groups[0].power.trace_path, path);
  EXPECT_DOUBLE_EQ(sc.groups[0].power.period_s, 0.5);

  // Canonical form is a fixpoint and re-parses to an equal scenario.
  const std::string canonical = sc.describe();
  EXPECT_NE(canonical.find("trace:0.5:" + path), std::string::npos)
      << canonical;
  EXPECT_EQ(scenario::Scenario::parse(canonical), sc);
  EXPECT_EQ(scenario::Scenario::parse(canonical).describe(), canonical);
}

TEST_F(TraceProfileFiles, ScenarioValidationPinsTraceMessages) {
  const std::string text =
      "{\"version\": 1, \"name\": \"bad\", \"groups\": "
      "[{\"name\": \"g\", \"supply\": \"trace:-1:t.csv\"}]}";
  try {
    (void)scenario::Scenario::parse(text);
    FAIL() << "expected scenario parse to reject the bad trace period";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()),
              "fleet spec: supply trace period_s must be finite and > 0");
  }
}

}  // namespace
}  // namespace iprune::fleet
