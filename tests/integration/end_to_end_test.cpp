// Full-pipeline integration: train a small workload-like model, prune it
// with both frameworks, deploy every variant to the simulated device, and
// verify the paper's end-to-end claims in miniature — pruned models run
// faster under intermittent power, iPrune eliminates at least as many
// accelerator outputs as ePrune, results stay correct across power
// failures.

#include <gtest/gtest.h>

#include <memory>

#include "baselines/eprune.hpp"
#include "core/pruner.hpp"
#include "data/synthetic.hpp"
#include "engine/engine.hpp"
#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/pool.hpp"
#include "nn/trainer.hpp"
#include "power/supply.hpp"

namespace iprune {
namespace {

/// Miniature HAR-like conv net (fast enough for a unit-test budget).
nn::Graph build_mini_har(util::Rng& rng) {
  nn::Graph g({3, 1, 32});
  auto c1 = g.add(std::make_unique<nn::Conv2d>(
                      "c1",
                      nn::Conv2dSpec{.in_channels = 3, .out_channels = 8,
                                     .kernel_h = 1, .kernel_w = 5,
                                     .pad_h = 0, .pad_w = 2},
                      rng),
                  {g.input()});
  auto r1 = g.add(std::make_unique<nn::Relu>("r1"), {c1});
  auto p1 = g.add(std::make_unique<nn::MaxPool2d>("p1",
                                                  nn::PoolSpec{1, 2, 2}),
                  {r1});
  auto c2 = g.add(std::make_unique<nn::Conv2d>(
                      "c2",
                      nn::Conv2dSpec{.in_channels = 8, .out_channels = 16,
                                     .kernel_h = 1, .kernel_w = 3,
                                     .pad_h = 0, .pad_w = 1},
                      rng),
                  {p1});
  auto r2 = g.add(std::make_unique<nn::Relu>("r2"), {c2});
  auto flat = g.add(std::make_unique<nn::Flatten>("flat"), {r2});
  auto fc = g.add(std::make_unique<nn::Dense>("fc", 16 * 16, 6, rng),
                  {flat});
  g.set_output(fc);
  return g;
}

data::Dataset mini_dataset(std::size_t samples) {
  data::SyntheticConfig cfg;
  cfg.samples = samples;
  cfg.seed = 77;
  cfg.noise = 0.8f;
  data::Dataset full = data::make_har_dataset(cfg);
  // Crop the 128-wide windows to 32 to match the mini model.
  data::Dataset cropped;
  cropped.num_classes = full.num_classes;
  cropped.labels = full.labels;
  cropped.inputs = nn::Tensor({samples, 3, 1, 32});
  for (std::size_t n = 0; n < samples; ++n) {
    for (std::size_t axis = 0; axis < 3; ++axis) {
      for (std::size_t t = 0; t < 32; ++t) {
        cropped.inputs.at(n, axis, 0, t) = full.inputs.at(n, axis, 0, t);
      }
    }
  }
  return cropped;
}

nn::Tensor sample_of(const data::Dataset& d, std::size_t index) {
  nn::Tensor s(d.sample_shape());
  const std::size_t elems = s.numel();
  for (std::size_t i = 0; i < elems; ++i) {
    s[i] = d.inputs[index * elems + i];
  }
  return s;
}

class EndToEnd : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rng_ = new util::Rng(123);
    train_ = new data::Dataset(mini_dataset(500));
    val_ = new data::Dataset(mini_dataset(200));

    baseline_ = new nn::Graph(build_mini_har(*rng_));
    nn::TrainConfig tc;
    tc.epochs = 8;
    nn::Trainer(*baseline_).train(train_->inputs, train_->labels, tc);
  }

  static void TearDownTestSuite() {
    delete baseline_;
    delete val_;
    delete train_;
    delete rng_;
    baseline_ = nullptr;
  }

  static core::PruneConfig prune_config() {
    core::PruneConfig cfg;
    cfg.epsilon = 0.02;
    cfg.max_iterations = 4;
    cfg.finetune.epochs = 3;
    cfg.sensitivity.max_samples = 128;
    return cfg;
  }

  /// Fresh copy of the trained baseline.
  static nn::Graph trained_copy() {
    util::Rng rng(123);
    nn::Graph g = build_mini_har(rng);
    const core::GraphSnapshot snap = core::take_snapshot(*baseline_);
    core::restore_snapshot(g, snap);
    return g;
  }

  static util::Rng* rng_;
  static data::Dataset* train_;
  static data::Dataset* val_;
  static nn::Graph* baseline_;
};

util::Rng* EndToEnd::rng_ = nullptr;
data::Dataset* EndToEnd::train_ = nullptr;
data::Dataset* EndToEnd::val_ = nullptr;
nn::Graph* EndToEnd::baseline_ = nullptr;

TEST_F(EndToEnd, BaselineLearns) {
  nn::Graph g = trained_copy();
  const auto result =
      nn::Trainer(g).evaluate(val_->inputs, val_->labels);
  EXPECT_GT(result.accuracy, 0.8);
}

TEST_F(EndToEnd, BothFrameworksPruneWithinEpsilon) {
  for (const bool use_iprune : {false, true}) {
    nn::Graph g = trained_copy();
    std::unique_ptr<core::RatioAllocator> alloc;
    if (use_iprune) {
      alloc = std::make_unique<core::IPruneAllocator>();
    } else {
      alloc = std::make_unique<baselines::EPruneAllocator>();
    }
    core::IterativePruner pruner(prune_config(), std::move(alloc));
    const core::PruneOutcome outcome =
        pruner.run(g, train_->inputs, train_->labels, val_->inputs,
                   val_->labels);
    EXPECT_GE(outcome.final_accuracy,
              outcome.baseline_accuracy - prune_config().epsilon - 1e-9);
    if (use_iprune) {
      // ePrune may legitimately strike out without finding safe mass on a
      // model this small; iPrune's sensitivity-aware allocation must not.
      EXPECT_LT(outcome.final_alive_weights,
                static_cast<std::size_t>(
                    0.95 * static_cast<double>(g.parameter_count())))
          << "iPrune should prune something";
    }
  }
}

TEST_F(EndToEnd, IPruneEliminatesAtLeastAsManyAccOutputsAsEPrune) {
  auto run = [&](std::unique_ptr<core::RatioAllocator> alloc) {
    nn::Graph g = trained_copy();
    core::IterativePruner pruner(prune_config(), std::move(alloc));
    return pruner
        .run(g, train_->inputs, train_->labels, val_->inputs, val_->labels)
        .final_acc_outputs;
  };
  const std::size_t iprune_outputs =
      run(std::make_unique<core::IPruneAllocator>());
  const std::size_t eprune_outputs =
      run(std::make_unique<baselines::EPruneAllocator>());
  // On a 3-layer mini model the allocators land close together; the
  // meaningful margin appears on the real workloads (bench_table3 /
  // bench_fig5). Here we only require iPrune not to *lose decisively* on
  // its own objective.
  EXPECT_LE(static_cast<double>(iprune_outputs),
            static_cast<double>(eprune_outputs) * 1.15)
      << "the intermittent-aware criterion must not lose decisively to "
         "the energy-aware baseline on its own objective";
}

TEST_F(EndToEnd, PrunedModelRunsFasterIntermittently) {
  nn::Graph pruned = trained_copy();
  core::IterativePruner pruner(prune_config(),
                               std::make_unique<core::IPruneAllocator>());
  (void)pruner.run(pruned, train_->inputs, train_->labels, val_->inputs,
                   val_->labels);

  std::vector<std::size_t> calib_idx = {0, 1, 2, 3};
  const nn::Tensor calib = nn::gather_rows(val_->inputs, calib_idx);
  engine::EngineConfig ecfg;

  auto measure = [&](nn::Graph& g) {
    device::Msp430Device dev(device::DeviceConfig::msp430fr5994(),
                             power::SupplyPresets::weak());
    engine::DeployedModel model(g, ecfg, dev, calib);
    engine::IntermittentEngine eng(model, dev);
    return eng.run(sample_of(*val_, 0)).stats;
  };

  nn::Graph unpruned = trained_copy();
  const auto stats_unpruned = measure(unpruned);
  const auto stats_pruned = measure(pruned);
  EXPECT_LT(stats_pruned.latency_s, stats_unpruned.latency_s);
  EXPECT_LT(stats_pruned.acc_outputs, stats_unpruned.acc_outputs);
  EXPECT_LE(stats_pruned.power_failures, stats_unpruned.power_failures);
}

TEST_F(EndToEnd, DeployedAccuracyTracksHostAccuracy) {
  // Run the quantized device engine over a validation subset and compare
  // its top-1 decisions with the float model's.
  nn::Graph g = trained_copy();
  std::vector<std::size_t> calib_idx = {0, 1, 2, 3, 4, 5, 6, 7};
  const nn::Tensor calib = nn::gather_rows(val_->inputs, calib_idx);
  device::Msp430Device dev(device::DeviceConfig::msp430fr5994(),
                           power::SupplyPresets::continuous());
  engine::EngineConfig ecfg;
  engine::DeployedModel model(g, ecfg, dev, calib);
  engine::IntermittentEngine eng(model, dev);

  constexpr std::size_t kCount = 40;
  std::size_t agreements = 0;
  for (std::size_t n = 0; n < kCount; ++n) {
    const nn::Tensor sample = sample_of(*val_, n);
    const auto result = eng.run(sample);
    ASSERT_TRUE(result.stats.completed);

    nn::Tensor batch(nn::Shape{1, 3, 1, 32});
    for (std::size_t i = 0; i < sample.numel(); ++i) {
      batch[i] = sample[i];
    }
    const nn::Tensor logits = g.forward(batch);
    std::size_t dev_best = 0, host_best = 0;
    for (std::size_t c = 1; c < 6; ++c) {
      if (result.logits[c] > result.logits[dev_best]) {
        dev_best = c;
      }
      if (logits.at(0, c) > logits.at(0, host_best)) {
        host_best = c;
      }
    }
    agreements += dev_best == host_best ? 1 : 0;
  }
  EXPECT_GE(agreements, kCount - 2)
      << "Q15 deployment should agree with the float model on almost "
         "every sample";
}

TEST_F(EndToEnd, WeakerPowerMeansMoreFailuresAndHigherLatency) {
  nn::Graph g = trained_copy();
  std::vector<std::size_t> calib_idx = {0, 1};
  const nn::Tensor calib = nn::gather_rows(val_->inputs, calib_idx);
  engine::EngineConfig ecfg;

  // Shrink the buffer so even the strong supply cannot carry this mini
  // model through a whole inference in one charge (real models cannot).
  power::BufferConfig buffer;
  buffer.capacitance_f = 10e-6;
  auto measure = [&](std::unique_ptr<power::PowerSupply> supply) {
    device::Msp430Device dev(device::DeviceConfig::msp430fr5994(),
                             std::move(supply), buffer);
    engine::DeployedModel model(g, ecfg, dev, calib);
    engine::IntermittentEngine eng(model, dev);
    return eng.run(sample_of(*val_, 1)).stats;
  };

  const auto cont = measure(power::SupplyPresets::continuous());
  const auto strong = measure(power::SupplyPresets::strong());
  const auto weak = measure(power::SupplyPresets::weak());

  EXPECT_EQ(cont.power_failures, 0u);
  EXPECT_GT(strong.power_failures, 0u);
  EXPECT_GT(weak.power_failures, strong.power_failures);
  EXPECT_LT(cont.latency_s, strong.latency_s);
  EXPECT_LT(strong.latency_s, weak.latency_s);
  // Recovery (reboot + tile re-fetch) grows the on-time with failure
  // count, and recharging grows the off-time.
  EXPECT_GE(weak.on_s, strong.on_s);
  EXPECT_GT(weak.off_s, strong.off_s);
  EXPECT_GT(weak.reboot_s, strong.reboot_s);
  // The LEA compute itself is nearly power-independent (only interrupted
  // jobs re-execute).
  EXPECT_NEAR(weak.lea_s, strong.lea_s, strong.lea_s * 0.10 + 1e-6);
}

}  // namespace
}  // namespace iprune
