// Differential property suite for the optimized GEMM kernels: every
// public kernel must be BIT-IDENTICAL (memcmp, not EXPECT_NEAR) to its
// retained naive counterpart in nn::ref across shapes, sparsity levels,
// alignment offsets, pre-accumulated C, and signed-zero weights. This is
// the contract that lets the perf gate treat a checksum change as a
// regression: optimizations may reorder memory traffic, never the
// per-element floating-point accumulation sequence.

#include "nn/gemm.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace iprune::nn {
namespace {

using GemmFn = void (*)(const float*, const float*, float*, std::size_t,
                        std::size_t, std::size_t);

struct Kernel {
  const char* name;
  GemmFn optimized;
  GemmFn reference;
};

const Kernel kKernels[] = {
    {"gemm_accumulate", gemm_accumulate, ref::gemm_accumulate},
    {"gemm_at_b", gemm_at_b, ref::gemm_at_b},
    {"gemm_a_bt", gemm_a_bt, ref::gemm_a_bt},
};

constexpr std::size_t kDims[] = {1, 2, 3, 7, 16, 17, 64};
constexpr double kSparsities[] = {0.0, 0.5, 0.9, 1.0};

std::vector<float> random_matrix(util::Rng& rng, std::size_t elems,
                                 double sparsity) {
  std::vector<float> m(elems);
  for (float& v : m) {
    v = rng.uniform() < sparsity
            ? 0.0f
            : static_cast<float>(rng.uniform(-2.0, 2.0));
  }
  return m;
}

/// Run optimized and reference on identical inputs; EXPECT bit-equality.
void check_case(const Kernel& kernel, std::size_t m, std::size_t k,
                std::size_t n, double sparsity, util::Rng& rng,
                bool accumulate_into_nonzero_c) {
  const std::vector<float> a = random_matrix(rng, m * k, sparsity);
  const std::vector<float> b = random_matrix(rng, k * n, 0.0);
  std::vector<float> c_init(m * n, 0.0f);
  if (accumulate_into_nonzero_c) {
    for (float& v : c_init) {
      v = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
  }
  std::vector<float> c_opt = c_init;
  std::vector<float> c_ref = c_init;
  kernel.optimized(a.data(), b.data(), c_opt.data(), m, k, n);
  kernel.reference(a.data(), b.data(), c_ref.data(), m, k, n);
  ASSERT_EQ(0,
            std::memcmp(c_opt.data(), c_ref.data(), m * n * sizeof(float)))
      << kernel.name << " m=" << m << " k=" << k << " n=" << n
      << " sparsity=" << sparsity
      << " c0=" << (accumulate_into_nonzero_c ? "random" : "zero");
}

TEST(GemmProperty, BitIdenticalAcrossShapesAndSparsities) {
  util::Rng rng(0xBEEF);
  for (const Kernel& kernel : kKernels) {
    for (const std::size_t m : kDims) {
      for (const std::size_t k : kDims) {
        for (const std::size_t n : kDims) {
          for (const double sparsity : kSparsities) {
            check_case(kernel, m, k, n, sparsity, rng, false);
          }
        }
      }
    }
  }
}

TEST(GemmProperty, BitIdenticalWhenAccumulatingIntoNonzeroC) {
  // C += semantics: the dense fast path must also match when C starts
  // from arbitrary (finite) values, not just the zero-initialized case.
  util::Rng rng(0xD00D);
  for (const Kernel& kernel : kKernels) {
    for (const std::size_t dim : {3, 7, 16, 17, 64}) {
      for (const double sparsity : kSparsities) {
        check_case(kernel, dim, dim, dim, sparsity, rng, true);
      }
    }
  }
}

TEST(GemmProperty, BitIdenticalUnderAlignmentOffsets) {
  // The kernels take raw pointers; callers slice tensors at arbitrary
  // element offsets, so nothing may assume 16/32-byte alignment. Shift
  // every operand by 0..3 floats off the allocation start.
  util::Rng rng(0xA11C);
  const std::size_t m = 17;
  const std::size_t k = 16;
  const std::size_t n = 7;
  for (const Kernel& kernel : kKernels) {
    for (std::size_t offset = 0; offset < 4; ++offset) {
      const std::vector<float> a_full =
          random_matrix(rng, offset + m * k, 0.5);
      const std::vector<float> b_full =
          random_matrix(rng, offset + k * n, 0.0);
      std::vector<float> c_opt(offset + m * n, 0.0f);
      std::vector<float> c_ref(offset + m * n, 0.0f);
      kernel.optimized(a_full.data() + offset, b_full.data() + offset,
                       c_opt.data() + offset, m, k, n);
      kernel.reference(a_full.data() + offset, b_full.data() + offset,
                       c_ref.data() + offset, m, k, n);
      ASSERT_EQ(0, std::memcmp(c_opt.data(), c_ref.data(),
                               c_opt.size() * sizeof(float)))
          << kernel.name << " offset=" << offset;
    }
  }
}

TEST(GemmProperty, SignedZeroWeightsDoNotPerturbBits) {
  // Pruning via hadamard(mask) can leave -0.0f weights. The dense fast
  // path ADDS those (a_ik * b = ±0) where the sparse path SKIPS them;
  // both must land on identical bits (x + ±0 == x when x never becomes
  // -0, which holds because C accumulates from +0 under round-to-nearest).
  util::Rng rng(0x5EED);
  for (const Kernel& kernel : kKernels) {
    for (const std::size_t dim : {7, 16, 64}) {
      std::vector<float> a = random_matrix(rng, dim * dim, 0.0);
      for (std::size_t i = 0; i < a.size(); i += 5) {
        a[i] = -0.0f;  // ~20% negative zeros: stays on the dense path
      }
      const std::vector<float> b = random_matrix(rng, dim * dim, 0.0);
      std::vector<float> c_opt(dim * dim, 0.0f);
      std::vector<float> c_ref(dim * dim, 0.0f);
      kernel.optimized(a.data(), b.data(), c_opt.data(), dim, dim, dim);
      kernel.reference(a.data(), b.data(), c_ref.data(), dim, dim, dim);
      ASSERT_EQ(0, std::memcmp(c_opt.data(), c_ref.data(),
                               c_opt.size() * sizeof(float)))
          << kernel.name << " dim=" << dim;
    }
  }
}

TEST(GemmProperty, DensityThresholdBoundaryIsExact) {
  // Rows straddling the 3/4 nonzero threshold take different code paths;
  // both must agree with the reference. Build A rows with exactly
  // nnz = ceil(3k/4) - 1, ceil(3k/4), and ceil(3k/4) + 1 nonzeros.
  util::Rng rng(0x7777);
  const std::size_t k = 16;
  const std::size_t n = 17;
  const std::size_t threshold = (3 * k + 3) / 4;
  for (std::size_t delta = 0; delta < 3; ++delta) {
    const std::size_t nnz = threshold - 1 + delta;
    std::vector<float> a(3 * k, 0.0f);
    for (std::size_t row = 0; row < 3; ++row) {
      for (std::size_t i = 0; i < nnz && i < k; ++i) {
        a[row * k + i] = static_cast<float>(rng.uniform(-2.0, 2.0));
      }
    }
    const std::vector<float> b = random_matrix(rng, k * n, 0.0);
    std::vector<float> c_opt(3 * n, 0.0f);
    std::vector<float> c_ref(3 * n, 0.0f);
    gemm_accumulate(a.data(), b.data(), c_opt.data(), 3, k, n);
    ref::gemm_accumulate(a.data(), b.data(), c_ref.data(), 3, k, n);
    ASSERT_EQ(0, std::memcmp(c_opt.data(), c_ref.data(),
                             c_opt.size() * sizeof(float)))
        << "nnz=" << nnz;
  }
}

}  // namespace
}  // namespace iprune::nn
