#include "nn/gemm.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace iprune::nn {
namespace {

/// Reference triple-loop GEMM for validation.
std::vector<float> reference_ab(const std::vector<float>& a,
                                const std::vector<float>& b, std::size_t m,
                                std::size_t k, std::size_t n) {
  std::vector<float> c(m * n, 0.0f);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t kk = 0; kk < k; ++kk) {
        c[i * n + j] += a[i * k + kk] * b[kk * n + j];
      }
    }
  }
  return c;
}

std::vector<float> random_matrix(std::size_t size, util::Rng& rng) {
  std::vector<float> m(size);
  for (auto& v : m) {
    v = static_cast<float>(rng.normal());
  }
  return m;
}

struct GemmDims {
  std::size_t m, k, n;
};

class GemmShapes : public ::testing::TestWithParam<GemmDims> {};

TEST_P(GemmShapes, AbMatchesReference) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(m * 100 + k * 10 + n);
  const auto a = random_matrix(m * k, rng);
  const auto b = random_matrix(k * n, rng);
  std::vector<float> c(m * n, 0.0f);
  gemm_accumulate(a.data(), b.data(), c.data(), m, k, n);
  const auto ref = reference_ab(a, b, m, k, n);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-4) << "at " << i;
  }
}

TEST_P(GemmShapes, AtBMatchesReference) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(m + k + n);
  // A stored as [k x m]; compute C = A^T B.
  const auto a = random_matrix(k * m, rng);
  const auto b = random_matrix(k * n, rng);
  std::vector<float> c(m * n, 0.0f);
  gemm_at_b(a.data(), b.data(), c.data(), m, k, n);
  // Reference: transpose A then multiply.
  std::vector<float> a_t(m * k);
  for (std::size_t kk = 0; kk < k; ++kk) {
    for (std::size_t i = 0; i < m; ++i) {
      a_t[i * k + kk] = a[kk * m + i];
    }
  }
  const auto ref = reference_ab(a_t, b, m, k, n);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-4);
  }
}

TEST_P(GemmShapes, ABtMatchesReference) {
  const auto [m, k, n] = GetParam();
  util::Rng rng(m * 7 + k * 3 + n);
  const auto a = random_matrix(m * k, rng);
  // B stored as [n x k]; compute C = A B^T.
  const auto b = random_matrix(n * k, rng);
  std::vector<float> c(m * n, 0.0f);
  gemm_a_bt(a.data(), b.data(), c.data(), m, k, n);
  std::vector<float> b_t(k * n);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t kk = 0; kk < k; ++kk) {
      b_t[kk * n + j] = b[j * k + kk];
    }
  }
  const auto ref = reference_ab(a, b_t, m, k, n);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c[i], ref[i], 1e-4);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShapes,
    ::testing::Values(GemmDims{1, 1, 1}, GemmDims{3, 5, 2},
                      GemmDims{8, 8, 8}, GemmDims{1, 17, 9},
                      GemmDims{13, 1, 4}, GemmDims{16, 32, 7}));

TEST(Gemm, AccumulatesIntoExistingValues) {
  const std::vector<float> a = {1.0f};
  const std::vector<float> b = {2.0f};
  std::vector<float> c = {10.0f};
  gemm_accumulate(a.data(), b.data(), c.data(), 1, 1, 1);
  EXPECT_FLOAT_EQ(c[0], 12.0f);
}

TEST(Gemm, SkipsZeroWeightsCorrectly) {
  // The sparse fast path must not change results.
  const std::vector<float> a = {0.0f, 2.0f, 0.0f, 3.0f};
  const std::vector<float> b = {1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> c(4, 0.0f);
  gemm_accumulate(a.data(), b.data(), c.data(), 2, 2, 2);
  EXPECT_FLOAT_EQ(c[0], 6.0f);   // 0*1 + 2*3
  EXPECT_FLOAT_EQ(c[1], 8.0f);   // 0*2 + 2*4
  EXPECT_FLOAT_EQ(c[2], 9.0f);   // 0*1 + 3*3
  EXPECT_FLOAT_EQ(c[3], 12.0f);  // 0*2 + 3*4
}

}  // namespace
}  // namespace iprune::nn
