// Numerical gradient checks: every layer's analytic backward pass is
// validated against central finite differences through a scalar loss.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>

#include "nn/activation.hpp"
#include "nn/concat.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/graph.hpp"
#include "nn/pool.hpp"

namespace iprune::nn {
namespace {

/// Scalar loss: sum of squares / 2, so dL/dy = y.
double loss_of(const Tensor& y) {
  double total = 0.0;
  for (std::size_t i = 0; i < y.numel(); ++i) {
    total += 0.5 * static_cast<double>(y[i]) * y[i];
  }
  return total;
}

Tensor loss_grad(const Tensor& y) {
  return y;
}

/// Check dL/dx for a single-input layer against finite differences, and
/// (when the layer has parameters) dL/dW as well.
void check_layer(Layer& layer, Tensor input, double tolerance = 2e-2) {
  std::vector<const Tensor*> ins = {&input};
  Tensor out = layer.forward(ins, /*training=*/true);
  std::vector<Tensor> input_grads = layer.backward(loss_grad(out));
  ASSERT_EQ(input_grads.size(), 1u);

  constexpr float kEps = 1e-3f;
  // Input gradients (sampled to keep runtime bounded).
  const std::size_t stride = std::max<std::size_t>(1, input.numel() / 64);
  for (std::size_t i = 0; i < input.numel(); i += stride) {
    const float saved = input[i];
    input[i] = saved + kEps;
    const double plus = loss_of(layer.forward(ins, true));
    input[i] = saved - kEps;
    const double minus = loss_of(layer.forward(ins, true));
    input[i] = saved;
    const double numeric = (plus - minus) / (2.0 * kEps);
    EXPECT_NEAR(input_grads[0][i], numeric,
                tolerance * std::max(1.0, std::fabs(numeric)))
        << "input grad at " << i;
  }

  // Parameter gradients.
  layer.zero_grads();
  out = layer.forward(ins, true);
  (void)layer.backward(loss_grad(out));
  for (const ParamRef& p : layer.params()) {
    const std::size_t pstride =
        std::max<std::size_t>(1, p.value->numel() / 48);
    for (std::size_t i = 0; i < p.value->numel(); i += pstride) {
      const float saved = (*p.value)[i];
      (*p.value)[i] = saved + kEps;
      const double plus = loss_of(layer.forward(ins, true));
      (*p.value)[i] = saved - kEps;
      const double minus = loss_of(layer.forward(ins, true));
      (*p.value)[i] = saved;
      const double numeric = (plus - minus) / (2.0 * kEps);
      EXPECT_NEAR((*p.grad)[i], numeric,
                  tolerance * std::max(1.0, std::fabs(numeric)))
          << "param grad at " << i;
    }
  }
}

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(std::move(shape));
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.normal(0.0, 0.7));
  }
  return t;
}

struct ConvCase {
  Conv2dSpec spec;
  std::size_t in_h, in_w;
};

class ConvGradCheck : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradCheck, MatchesFiniteDifferences) {
  const ConvCase& c = GetParam();
  util::Rng rng(42);
  Conv2d conv("c", c.spec, rng);
  check_layer(conv,
              random_tensor({2, c.spec.in_channels, c.in_h, c.in_w}, 17));
}

INSTANTIATE_TEST_SUITE_P(
    Specs, ConvGradCheck,
    ::testing::Values(
        ConvCase{{.in_channels = 1, .out_channels = 2, .kernel_h = 3,
                  .kernel_w = 3, .stride = 1, .pad_h = 1, .pad_w = 1},
                 5, 5},
        ConvCase{{.in_channels = 2, .out_channels = 3, .kernel_h = 1,
                  .kernel_w = 1},
                 4, 4},
        ConvCase{{.in_channels = 2, .out_channels = 2, .kernel_h = 3,
                  .kernel_w = 3, .stride = 2, .pad_h = 1, .pad_w = 1},
                 7, 7},
        ConvCase{{.in_channels = 1, .out_channels = 2, .kernel_h = 1,
                  .kernel_w = 5, .stride = 1, .pad_h = 0, .pad_w = 2},
                 1, 12}));

TEST(DenseGradCheck, MatchesFiniteDifferences) {
  util::Rng rng(43);
  Dense fc("fc", 6, 4, rng);
  check_layer(fc, random_tensor({3, 6}, 18));
}

TEST(MaxPoolGradCheck, MatchesFiniteDifferences) {
  MaxPool2d pool("p", {2, 2, 2});
  // Spread values so the argmax is stable under the probe epsilon.
  util::Rng rng(44);
  Tensor input({2, 2, 4, 4});
  for (std::size_t i = 0; i < input.numel(); ++i) {
    input[i] = static_cast<float>(i % 7) + 0.05f *
               static_cast<float>(rng.normal());
  }
  check_layer(pool, input);
}

TEST(AvgPoolGradCheck, MatchesFiniteDifferences) {
  AvgPool2d pool("p", {2, 2, 2});
  check_layer(pool, random_tensor({2, 2, 4, 4}, 19));
}

TEST(ReluGradCheck, MatchesFiniteDifferences) {
  Relu relu("r");
  // Keep values away from the kink at 0.
  Tensor input = random_tensor({2, 10}, 20);
  for (std::size_t i = 0; i < input.numel(); ++i) {
    if (std::fabs(input[i]) < 0.05f) {
      input[i] = 0.2f;
    }
  }
  check_layer(relu, input);
}

TEST(FlattenGradCheck, MatchesFiniteDifferences) {
  Flatten flat("f");
  check_layer(flat, random_tensor({2, 3, 2, 2}, 21));
}

TEST(ConcatGradCheck, SplitsGradientCorrectly) {
  Concat cat("cat");
  Tensor a = random_tensor({2, 2, 3, 3}, 22);
  Tensor b = random_tensor({2, 3, 3, 3}, 23);
  std::vector<const Tensor*> ins = {&a, &b};
  const Tensor out = cat.forward(ins, true);
  const std::vector<Tensor> grads = cat.backward(loss_grad(out));
  ASSERT_EQ(grads.size(), 2u);
  // Concat backward just routes: grad wrt a equals a's values (L = ||y||²/2).
  for (std::size_t i = 0; i < a.numel(); ++i) {
    EXPECT_FLOAT_EQ(grads[0][i], a[i]);
  }
  for (std::size_t i = 0; i < b.numel(); ++i) {
    EXPECT_FLOAT_EQ(grads[1][i], b[i]);
  }
}

TEST(GraphGradCheck, MultiPathGraphEndToEnd) {
  // Numerical gradient through a fire-style DAG (shared squeeze feeding
  // two branches that concat) — validates gradient accumulation at forks.
  util::Rng rng(45);
  Graph g({1, 4, 4});
  auto c1 = g.add(std::make_unique<Conv2d>(
                      "c1",
                      Conv2dSpec{.in_channels = 1, .out_channels = 2,
                                 .kernel_h = 3, .kernel_w = 3, .pad_h = 1,
                                 .pad_w = 1},
                      rng),
                  {g.input()});
  auto b1 = g.add(std::make_unique<Conv2d>(
                      "b1",
                      Conv2dSpec{.in_channels = 2, .out_channels = 2,
                                 .kernel_h = 1, .kernel_w = 1},
                      rng),
                  {c1});
  auto b2 = g.add(std::make_unique<Conv2d>(
                      "b2",
                      Conv2dSpec{.in_channels = 2, .out_channels = 2,
                                 .kernel_h = 3, .kernel_w = 3, .pad_h = 1,
                                 .pad_w = 1},
                      rng),
                  {c1});
  auto cat = g.add(std::make_unique<Concat>("cat"), {b1, b2});
  auto flat = g.add(std::make_unique<Flatten>("flat"), {cat});
  auto fc = g.add(std::make_unique<Dense>("fc", 64, 3, rng), {flat});
  g.set_output(fc);

  Tensor input = random_tensor({2, 1, 4, 4}, 24);
  g.zero_grads();
  Tensor out = g.forward(input, true);
  g.backward(loss_grad(out));

  constexpr float kEps = 1e-3f;
  auto params = g.params();
  for (const ParamRef& p : params) {
    const std::size_t stride =
        std::max<std::size_t>(1, p.value->numel() / 16);
    for (std::size_t i = 0; i < p.value->numel(); i += stride) {
      const float saved = (*p.value)[i];
      (*p.value)[i] = saved + kEps;
      const double plus = loss_of(g.forward(input, true));
      (*p.value)[i] = saved - kEps;
      const double minus = loss_of(g.forward(input, true));
      (*p.value)[i] = saved;
      const double numeric = (plus - minus) / (2.0 * kEps);
      EXPECT_NEAR((*p.grad)[i], numeric,
                  2e-2 * std::max(1.0, std::fabs(numeric)));
    }
  }
}

}  // namespace
}  // namespace iprune::nn
