#include "nn/graph.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "nn/activation.hpp"
#include "nn/concat.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"

namespace iprune::nn {
namespace {

Graph small_graph(util::Rng& rng) {
  Graph g({4});
  auto fc1 = g.add(std::make_unique<Dense>("fc1", 4, 3, rng), {g.input()});
  auto relu = g.add(std::make_unique<Relu>("relu"), {fc1});
  auto fc2 = g.add(std::make_unique<Dense>("fc2", 3, 2, rng), {relu});
  g.set_output(fc2);
  return g;
}

TEST(Graph, TracksNodeShapes) {
  util::Rng rng(1);
  Graph g = small_graph(rng);
  EXPECT_EQ(g.node_count(), 4u);
  EXPECT_EQ(g.node_shape(0), (Shape{4}));
  EXPECT_EQ(g.node_shape(1), (Shape{3}));
  EXPECT_EQ(g.node_shape(3), (Shape{2}));
  EXPECT_EQ(g.output(), 3u);
}

TEST(Graph, RejectsUnknownInputNode) {
  util::Rng rng(2);
  Graph g({4});
  EXPECT_THROW(g.add(std::make_unique<Dense>("fc", 4, 2, rng), {5}),
               std::invalid_argument);
}

TEST(Graph, RejectsEmptyInputs) {
  util::Rng rng(3);
  Graph g({4});
  EXPECT_THROW(g.add(std::make_unique<Dense>("fc", 4, 2, rng), {}),
               std::invalid_argument);
}

TEST(Graph, RejectsShapeMismatchAtBuildTime) {
  util::Rng rng(4);
  Graph g({4});
  EXPECT_THROW(g.add(std::make_unique<Dense>("fc", 5, 2, rng), {g.input()}),
               std::invalid_argument);
}

TEST(Graph, ForwardValidatesBatchShape) {
  util::Rng rng(5);
  Graph g = small_graph(rng);
  EXPECT_THROW(g.forward(Tensor({2, 5})), std::invalid_argument);
  EXPECT_THROW(g.forward(Tensor({4})), std::invalid_argument);
  EXPECT_NO_THROW(g.forward(Tensor({2, 4})));
}

TEST(Graph, ForwardNodesReturnsAllActivations) {
  util::Rng rng(6);
  Graph g = small_graph(rng);
  const auto acts = g.forward_nodes(Tensor({2, 4}));
  ASSERT_EQ(acts.size(), 4u);
  EXPECT_EQ(acts[0].shape(), (Shape{2, 4}));
  EXPECT_EQ(acts[3].shape(), (Shape{2, 2}));
}

TEST(Graph, SetOutputSelectsNode) {
  util::Rng rng(7);
  Graph g = small_graph(rng);
  g.set_output(1);
  const Tensor out = g.forward(Tensor({1, 4}));
  EXPECT_EQ(out.shape(), (Shape{1, 3}));
  EXPECT_THROW(g.set_output(9), std::invalid_argument);
}

TEST(Graph, ConsumersEnumeratesUses) {
  util::Rng rng(8);
  Graph g({2, 4, 4});
  auto c1 = g.add(std::make_unique<Conv2d>(
                      "c1",
                      Conv2dSpec{.in_channels = 2, .out_channels = 2,
                                 .kernel_h = 1, .kernel_w = 1},
                      rng),
                  {g.input()});
  auto b1 = g.add(std::make_unique<Conv2d>(
                      "b1",
                      Conv2dSpec{.in_channels = 2, .out_channels = 2,
                                 .kernel_h = 1, .kernel_w = 1},
                      rng),
                  {c1});
  auto b2 = g.add(std::make_unique<Conv2d>(
                      "b2",
                      Conv2dSpec{.in_channels = 2, .out_channels = 2,
                                 .kernel_h = 1, .kernel_w = 1},
                      rng),
                  {c1});
  auto cat = g.add(std::make_unique<Concat>("cat"), {b1, b2});
  (void)cat;
  const auto consumers = g.consumers(c1);
  EXPECT_EQ(consumers, (std::vector<NodeId>{b1, b2}));
}

TEST(Graph, ParameterCounts) {
  util::Rng rng(9);
  Graph g = small_graph(rng);
  // fc1: 4*3 + 3, fc2: 3*2 + 2
  EXPECT_EQ(g.parameter_count(), 12u + 3u + 6u + 2u);
  EXPECT_EQ(g.nonzero_parameter_count(), g.parameter_count());

  auto& fc1 = dynamic_cast<Dense&>(g.layer(1));
  fc1.weight_mask().at(0, 0) = 0.0f;
  EXPECT_EQ(g.nonzero_parameter_count(), g.parameter_count() - 1);
}

TEST(Graph, ZeroGradsClearsAll) {
  util::Rng rng(10);
  Graph g = small_graph(rng);
  Tensor x({2, 4});
  x.fill(1.0f);
  Tensor y = g.forward(x, true);
  Tensor ones(y.shape());
  ones.fill(1.0f);
  g.backward(ones);
  bool any_nonzero = false;
  for (const ParamRef& p : g.params()) {
    any_nonzero |= p.grad->count_nonzero() > 0;
  }
  EXPECT_TRUE(any_nonzero);
  g.zero_grads();
  for (const ParamRef& p : g.params()) {
    EXPECT_EQ(p.grad->count_nonzero(), 0u);
  }
}

TEST(Graph, CloneIsDeepCopy) {
  util::Rng rng(12);
  Graph g = small_graph(rng);
  Tensor x({3, 4});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>(i) * 0.25f - 1.0f;
  }
  const Tensor before = g.forward(x);

  Graph copy = g.clone();
  EXPECT_EQ(copy.node_count(), g.node_count());
  EXPECT_EQ(copy.output(), g.output());
  EXPECT_TRUE(copy.forward(x).equals(before));

  // Mutating the original must not leak into the clone (and vice versa).
  auto& fc1 = dynamic_cast<Dense&>(g.layer(1));
  fc1.weight().fill(0.0f);
  EXPECT_FALSE(g.forward(x).equals(before));
  EXPECT_TRUE(copy.forward(x).equals(before));

  auto& copy_fc2 = dynamic_cast<Dense&>(copy.layer(3));
  copy_fc2.weight_mask().fill(0.0f);
  EXPECT_EQ(copy.nonzero_parameter_count(),
            copy.parameter_count() - copy_fc2.weight().numel());
  EXPECT_EQ(g.nonzero_parameter_count(), g.parameter_count());
}

TEST(Graph, CloneOfPrunedGraphMatchesOriginal) {
  util::Rng rng(13);
  Graph g = small_graph(rng);
  auto& fc1 = dynamic_cast<Dense&>(g.layer(1));
  fc1.weight_mask().at(0, 0) = 0.0f;
  fc1.weight_mask().at(2, 1) = 0.0f;
  fc1.apply_mask();

  Tensor x({2, 4});
  for (std::size_t i = 0; i < x.numel(); ++i) {
    x.data()[i] = static_cast<float>(i % 5) * 0.5f;
  }
  Graph copy = g.clone();
  EXPECT_EQ(copy.nonzero_parameter_count(), g.nonzero_parameter_count());
  EXPECT_TRUE(copy.forward(x).equals(g.forward(x)));
  EXPECT_TRUE(copy.infer(x).equals(g.infer(x)));
}

TEST(Graph, InferMatchesForwardWithoutCaching) {
  util::Rng rng(14);
  const Graph g = small_graph(rng);  // const: infer is a read-only path
  Tensor x({2, 4});
  x.fill(0.5f);
  const Tensor out = g.infer(x);
  const auto acts = g.infer_nodes(x);
  ASSERT_EQ(acts.size(), g.node_count());
  EXPECT_TRUE(acts[g.output()].equals(out));
}

TEST(Graph, MoveConstructible) {
  util::Rng rng(11);
  Graph g = small_graph(rng);
  const Tensor before = g.forward(Tensor({1, 4}));
  Graph moved = std::move(g);
  const Tensor after = moved.forward(Tensor({1, 4}));
  EXPECT_TRUE(before.equals(after));
}

}  // namespace
}  // namespace iprune::nn
