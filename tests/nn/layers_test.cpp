// Forward-path behaviour of the individual layers (backward is covered by
// the numerical gradient checks in gradcheck_test.cpp).

#include <gtest/gtest.h>

#include <memory>

#include "nn/activation.hpp"
#include "nn/concat.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/pool.hpp"

namespace iprune::nn {
namespace {

std::vector<const Tensor*> inputs_of(const Tensor& t) {
  return {&t};
}

TEST(Conv2d, OutputShapeWithPaddingAndStride) {
  util::Rng rng(1);
  Conv2d conv("c", {.in_channels = 3, .out_channels = 8, .kernel_h = 3,
                    .kernel_w = 3, .stride = 2, .pad_h = 1, .pad_w = 1},
              rng);
  const Shape out = conv.output_shape(std::vector<Shape>{{3, 32, 32}});
  EXPECT_EQ(out, (Shape{8, 16, 16}));
}

TEST(Conv2d, RejectsChannelMismatch) {
  util::Rng rng(2);
  Conv2d conv("c", {.in_channels = 3, .out_channels = 4}, rng);
  EXPECT_THROW(conv.output_shape(std::vector<Shape>{{2, 8, 8}}),
               std::invalid_argument);
}

TEST(Conv2d, IdentityKernelCopiesInput) {
  util::Rng rng(3);
  Conv2d conv("c", {.in_channels = 1, .out_channels = 1, .kernel_h = 1,
                    .kernel_w = 1},
              rng);
  conv.weight().fill(1.0f);
  conv.bias().fill(0.0f);
  Tensor input({1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor out = conv.forward(inputs_of(input), false);
  EXPECT_TRUE(out.equals(input));
}

TEST(Conv2d, KnownConvolutionValue) {
  util::Rng rng(4);
  Conv2d conv("c", {.in_channels = 1, .out_channels = 1, .kernel_h = 2,
                    .kernel_w = 2},
              rng);
  // Kernel [[1,2],[3,4]], no padding: out(0,0) = 1*1+2*2+3*3+4*4 = 30.
  conv.weight() = Tensor({1, 4}, {1, 2, 3, 4});
  conv.bias().fill(0.5f);
  Tensor input({1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor out = conv.forward(inputs_of(input), false);
  ASSERT_EQ(out.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(out[0], 30.5f);
}

TEST(Conv2d, ZeroPaddingContributesNothing) {
  util::Rng rng(5);
  Conv2d conv("c", {.in_channels = 1, .out_channels = 1, .kernel_h = 3,
                    .kernel_w = 3, .pad_h = 1, .pad_w = 1},
              rng);
  conv.weight().fill(1.0f);
  conv.bias().fill(0.0f);
  Tensor input({1, 1, 1, 1}, {5});
  const Tensor out = conv.forward(inputs_of(input), false);
  ASSERT_EQ(out.numel(), 1u);
  EXPECT_FLOAT_EQ(out[0], 5.0f);  // only the center tap sees data
}

TEST(Conv2d, MaskZeroesWeights) {
  util::Rng rng(6);
  Conv2d conv("c", {.in_channels = 1, .out_channels = 2, .kernel_h = 1,
                    .kernel_w = 1},
              rng);
  conv.weight_mask().at(0, 0) = 0.0f;
  conv.apply_mask();
  EXPECT_EQ(conv.weight().at(0, 0), 0.0f);
}

TEST(Dense, ComputesAffineMap) {
  util::Rng rng(7);
  Dense fc("fc", 3, 2, rng);
  fc.weight() = Tensor({2, 3}, {1, 0, 0, 0, 1, 0});
  fc.bias() = Tensor({2}, {0.5f, -0.5f});
  Tensor input({1, 3}, {7, 8, 9});
  const Tensor out = fc.forward(inputs_of(input), false);
  EXPECT_FLOAT_EQ(out.at(0, 0), 7.5f);
  EXPECT_FLOAT_EQ(out.at(0, 1), 7.5f);
}

TEST(Dense, BatchedForward) {
  util::Rng rng(8);
  Dense fc("fc", 2, 1, rng);
  fc.weight() = Tensor({1, 2}, {1, 1});
  fc.bias().fill(0.0f);
  Tensor input({3, 2}, {1, 2, 3, 4, 5, 6});
  const Tensor out = fc.forward(inputs_of(input), false);
  EXPECT_FLOAT_EQ(out.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0), 7.0f);
  EXPECT_FLOAT_EQ(out.at(2, 0), 11.0f);
}

TEST(Dense, OutputShapeValidation) {
  util::Rng rng(9);
  Dense fc("fc", 4, 2, rng);
  EXPECT_EQ(fc.output_shape(std::vector<Shape>{{4}}), (Shape{2}));
  EXPECT_THROW(fc.output_shape(std::vector<Shape>{{5}}),
               std::invalid_argument);
}

TEST(MaxPool, SelectsWindowMaximum) {
  MaxPool2d pool("p", {2, 2, 2});
  Tensor input({1, 1, 2, 4}, {1, 5, 2, 0, 3, 4, 8, 1});
  const Tensor out = pool.forward(inputs_of(input), false);
  ASSERT_EQ(out.shape(), (Shape{1, 1, 1, 2}));
  EXPECT_FLOAT_EQ(out[0], 5.0f);
  EXPECT_FLOAT_EQ(out[1], 8.0f);
}

TEST(MaxPool, HandlesNegativeValues) {
  MaxPool2d pool("p", {2, 2, 2});
  Tensor input({1, 1, 2, 2}, {-4, -3, -2, -1});
  const Tensor out = pool.forward(inputs_of(input), false);
  EXPECT_FLOAT_EQ(out[0], -1.0f);
}

TEST(AvgPool, ComputesWindowMean) {
  AvgPool2d pool("p", {2, 2, 2});
  Tensor input({1, 1, 2, 2}, {1, 2, 3, 6});
  const Tensor out = pool.forward(inputs_of(input), false);
  EXPECT_FLOAT_EQ(out[0], 3.0f);
}

TEST(Pool, ExtentArithmetic) {
  EXPECT_EQ(pooled_extent(8, 2, 2), 4u);
  EXPECT_EQ(pooled_extent(7, 2, 2), 3u);
  EXPECT_EQ(pooled_extent(1, 1, 2), 1u);
  EXPECT_THROW(pooled_extent(1, 2, 1), std::invalid_argument);
}

TEST(Relu, ClampsNegatives) {
  Relu relu("r");
  Tensor input({1, 4}, {-1, 0, 2, -3});
  const Tensor out = relu.forward(inputs_of(input), false);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
  EXPECT_FLOAT_EQ(out[2], 2.0f);
  EXPECT_FLOAT_EQ(out[3], 0.0f);
}

TEST(Flatten, CollapsesToBatchByFeatures) {
  Flatten flat("f");
  Tensor input({2, 3, 2, 2});
  const Tensor out = flat.forward(inputs_of(input), false);
  EXPECT_EQ(out.shape(), (Shape{2, 12}));
}

TEST(Concat, JoinsAlongChannels) {
  Concat cat("cat");
  Tensor a({1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor b({1, 2, 2, 2}, {5, 6, 7, 8, 9, 10, 11, 12});
  std::vector<const Tensor*> ins = {&a, &b};
  const Tensor out = cat.forward(ins, false);
  ASSERT_EQ(out.shape(), (Shape{1, 3, 2, 2}));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(out.at(0, 2, 1, 1), 12.0f);
}

TEST(Concat, RejectsSpatialMismatch) {
  Concat cat("cat");
  EXPECT_THROW(
      cat.output_shape(std::vector<Shape>{{1, 2, 2}, {1, 3, 3}}),
      std::invalid_argument);
}

TEST(LayerKind, NamesMatchPaperNotation) {
  EXPECT_STREQ(layer_kind_name(LayerKind::kConv2d), "CONV");
  EXPECT_STREQ(layer_kind_name(LayerKind::kDense), "FC");
  EXPECT_STREQ(layer_kind_name(LayerKind::kMaxPool), "POOL(max)");
}

}  // namespace
}  // namespace iprune::nn
