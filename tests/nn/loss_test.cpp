#include "nn/loss.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace iprune::nn {
namespace {

TEST(Softmax, RowsSumToOne) {
  Tensor logits({2, 3}, {1, 2, 3, -1, 0, 1});
  const Tensor probs = softmax(logits);
  for (std::size_t n = 0; n < 2; ++n) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < 3; ++c) {
      sum += probs.at(n, c);
      EXPECT_GT(probs.at(n, c), 0.0f);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-6);
  }
}

TEST(Softmax, StableForLargeLogits) {
  Tensor logits({1, 2}, {1000.0f, 999.0f});
  const Tensor probs = softmax(logits);
  EXPECT_FALSE(std::isnan(probs[0]));
  EXPECT_GT(probs.at(0, 0), probs.at(0, 1));
}

TEST(Softmax, UniformLogitsGiveUniformProbs) {
  Tensor logits({1, 4});
  const Tensor probs = softmax(logits);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(probs.at(0, c), 0.25f, 1e-6);
  }
}

TEST(CrossEntropy, UniformLogitsLossIsLogC) {
  Tensor logits({1, 10});
  const int label = 3;
  const LossResult r = softmax_cross_entropy(logits, std::vector<int>{label});
  EXPECT_NEAR(r.loss, std::log(10.0), 1e-5);
}

TEST(CrossEntropy, ConfidentCorrectPredictionHasLowLoss) {
  Tensor logits({1, 3}, {10.0f, 0.0f, 0.0f});
  const LossResult r = softmax_cross_entropy(logits, std::vector<int>{0});
  EXPECT_LT(r.loss, 1e-3);
  EXPECT_EQ(r.correct, 1u);
}

TEST(CrossEntropy, GradientIsProbsMinusOneHotOverN) {
  Tensor logits({2, 2}, {0.0f, 0.0f, 2.0f, 0.0f});
  const LossResult r =
      softmax_cross_entropy(logits, std::vector<int>{0, 1});
  // Row 0: probs (.5,.5), label 0 -> grad (.5-1, .5)/2.
  EXPECT_NEAR(r.grad.at(0, 0), -0.25f, 1e-6);
  EXPECT_NEAR(r.grad.at(0, 1), 0.25f, 1e-6);
  // Gradient rows each sum to ~0.
  EXPECT_NEAR(r.grad.at(1, 0) + r.grad.at(1, 1), 0.0f, 1e-6);
}

TEST(CrossEntropy, GradMatchesFiniteDifference) {
  Tensor logits({2, 4}, {0.3f, -0.7f, 1.1f, 0.2f,
                         -0.5f, 0.8f, 0.1f, -1.2f});
  const std::vector<int> labels = {2, 1};
  const LossResult r = softmax_cross_entropy(logits, labels);
  constexpr float kEps = 1e-3f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    Tensor plus = logits;
    plus[i] += kEps;
    Tensor minus = logits;
    minus[i] -= kEps;
    const double numeric =
        (softmax_cross_entropy(plus, labels).loss -
         softmax_cross_entropy(minus, labels).loss) /
        (2.0 * kEps);
    EXPECT_NEAR(r.grad[i], numeric, 1e-4);
  }
}

TEST(CrossEntropy, CountsCorrectPredictions) {
  Tensor logits({3, 2}, {1.0f, 0.0f, 0.0f, 1.0f, 1.0f, 0.0f});
  const LossResult r =
      softmax_cross_entropy(logits, std::vector<int>{0, 1, 1});
  EXPECT_EQ(r.correct, 2u);
}

TEST(CrossEntropy, RejectsShapeMismatch) {
  Tensor logits({2, 3});
  EXPECT_THROW(softmax_cross_entropy(logits, std::vector<int>{0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace iprune::nn
