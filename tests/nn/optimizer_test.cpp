#include "nn/optimizer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace iprune::nn {
namespace {

struct Param {
  Tensor value{Shape{2}};
  Tensor grad{Shape{2}};
  Tensor mask{Shape{2}};

  Param() { mask.fill(1.0f); }
  ParamRef ref(bool with_mask = true) {
    return {&value, &grad, with_mask ? &mask : nullptr};
  }
};

TEST(Sgd, PlainStepMovesAgainstGradient) {
  Param p;
  p.value = Tensor({2}, {1.0f, -1.0f});
  p.grad = Tensor({2}, {0.5f, -0.5f});
  Sgd opt({.learning_rate = 0.1f, .momentum = 0.0f});
  std::vector<ParamRef> refs = {p.ref()};
  opt.step(refs);
  EXPECT_FLOAT_EQ(p.value[0], 0.95f);
  EXPECT_FLOAT_EQ(p.value[1], -0.95f);
}

TEST(Sgd, MomentumAccumulates) {
  Param p;
  p.grad = Tensor({2}, {1.0f, 0.0f});
  Sgd opt({.learning_rate = 0.1f, .momentum = 0.9f});
  std::vector<ParamRef> refs = {p.ref()};
  opt.step(refs);
  const float after_one = p.value[0];
  opt.step(refs);
  // Second step is larger: velocity carries over.
  EXPECT_LT(p.value[0] - after_one, after_one - 0.0f);
  EXPECT_NEAR(p.value[0], -0.1f - 0.19f, 1e-6);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Param p;
  p.value = Tensor({2}, {1.0f, 1.0f});
  Sgd opt({.learning_rate = 0.1f, .momentum = 0.0f, .weight_decay = 0.5f});
  std::vector<ParamRef> refs = {p.ref()};
  opt.step(refs);
  EXPECT_FLOAT_EQ(p.value[0], 0.95f);  // -lr * wd * w = -0.05
}

TEST(Sgd, MaskKeepsPrunedWeightsAtZero) {
  Param p;
  p.value = Tensor({2}, {0.0f, 1.0f});
  p.mask = Tensor({2}, {0.0f, 1.0f});
  p.grad = Tensor({2}, {5.0f, 5.0f});
  Sgd opt({.learning_rate = 0.1f, .momentum = 0.9f});
  std::vector<ParamRef> refs = {p.ref()};
  for (int i = 0; i < 5; ++i) {
    opt.step(refs);
  }
  EXPECT_EQ(p.value[0], 0.0f) << "pruned weight must stay exactly zero";
  EXPECT_LT(p.value[1], 1.0f);
}

TEST(Sgd, ParamSetChangeDetected) {
  Param p, q;
  Sgd opt({});
  std::vector<ParamRef> one = {p.ref()};
  opt.step(one);
  std::vector<ParamRef> two = {p.ref(), q.ref()};
  EXPECT_THROW(opt.step(two), std::logic_error);
}

TEST(Sgd, ResetStateClearsVelocity) {
  Param p;
  p.grad = Tensor({2}, {1.0f, 1.0f});
  Sgd opt({.learning_rate = 0.1f, .momentum = 0.9f});
  std::vector<ParamRef> refs = {p.ref()};
  opt.step(refs);
  opt.reset_state();
  p.value.zero();
  opt.step(refs);
  EXPECT_FLOAT_EQ(p.value[0], -0.1f);  // no carried momentum
}

TEST(Adam, ConvergesOnQuadratic) {
  // Minimize f(w) = (w - 3)^2 with analytic gradient.
  Param p;
  Adam opt({.learning_rate = 0.05f});
  std::vector<ParamRef> refs = {p.ref(false)};
  for (int i = 0; i < 600; ++i) {
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    p.grad[1] = 2.0f * (p.value[1] - 3.0f);
    opt.step(refs);
  }
  EXPECT_NEAR(p.value[0], 3.0f, 0.05f);
}

TEST(Adam, MaskKeepsPrunedWeightsAtZero) {
  Param p;
  p.mask = Tensor({2}, {0.0f, 1.0f});
  Adam opt({.learning_rate = 0.1f});
  std::vector<ParamRef> refs = {p.ref()};
  for (int i = 0; i < 10; ++i) {
    p.grad = Tensor({2}, {1.0f, 1.0f});
    opt.step(refs);
  }
  EXPECT_EQ(p.value[0], 0.0f);
  EXPECT_NE(p.value[1], 0.0f);
}

TEST(Adam, FirstStepIsLearningRateSized) {
  Param p;
  p.grad = Tensor({2}, {0.001f, 0.0f});
  Adam opt({.learning_rate = 0.01f});
  std::vector<ParamRef> refs = {p.ref(false)};
  opt.step(refs);
  // Bias correction makes the first step ~lr regardless of grad scale.
  EXPECT_NEAR(p.value[0], -0.01f, 1e-3);
}

}  // namespace
}  // namespace iprune::nn
