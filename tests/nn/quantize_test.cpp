#include "nn/quantize.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace iprune::nn {
namespace {

TEST(Quantize, RoundTripErrorBoundedByHalfScale) {
  util::Rng rng(1);
  Tensor t({1000});
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.normal(0.0, 2.0));
  }
  const QTensor q = quantize_q15(t);
  EXPECT_LE(quantization_error(t), q.scale * 0.5f + 1e-7f);
}

TEST(Quantize, AbsMaxMapsToFullScale) {
  Tensor t({3}, {-4.0f, 2.0f, 1.0f});
  const QTensor q = quantize_q15(t);
  EXPECT_EQ(q.data[0], -32767);
  EXPECT_NEAR(q.scale, 4.0f / 32767.0f, 1e-9);
}

TEST(Quantize, ZeroTensorStaysZero) {
  Tensor t({5});
  const QTensor q = quantize_q15(t);
  EXPECT_EQ(q.scale, 1.0f);
  for (const std::int16_t v : q.data) {
    EXPECT_EQ(v, 0);
  }
  EXPECT_EQ(quantization_error(t), 0.0f);
}

TEST(Quantize, PreservesShape) {
  Tensor t({2, 3, 4});
  const QTensor q = quantize_q15(t);
  EXPECT_EQ(q.shape, t.shape());
  EXPECT_EQ(q.numel(), 24u);
  EXPECT_EQ(q.byte_size(), 48u);
  const Tensor back = dequantize(q);
  EXPECT_EQ(back.shape(), t.shape());
}

TEST(Quantize, ZerosStayExactlyZero) {
  // Pruned weights must remain exactly zero after quantization (BSR
  // correctness depends on it).
  Tensor t({4}, {1.0f, 0.0f, -2.0f, 0.0f});
  const QTensor q = quantize_q15(t);
  EXPECT_EQ(q.data[1], 0);
  EXPECT_EQ(q.data[3], 0);
}

TEST(Quantize, SymmetricAroundZero) {
  Tensor t({2}, {3.0f, -3.0f});
  const QTensor q = quantize_q15(t);
  EXPECT_EQ(q.data[0], -q.data[1]);
}

class QuantizeDistributions
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(QuantizeDistributions, RelativeRoundTripErrorSmall) {
  const auto [mean, stddev] = GetParam();
  util::Rng rng(7);
  Tensor t({4096});
  for (std::size_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.normal(mean, stddev));
  }
  const float abs_max = t.abs_max();
  EXPECT_LT(quantization_error(t) / abs_max, 1.0f / 32767.0f);
}

INSTANTIATE_TEST_SUITE_P(Ranges, QuantizeDistributions,
                         ::testing::Values(std::pair{0.0, 1.0},
                                           std::pair{0.0, 1e-3},
                                           std::pair{5.0, 0.1},
                                           std::pair{0.0, 100.0}));

}  // namespace
}  // namespace iprune::nn
