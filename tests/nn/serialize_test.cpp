#include "nn/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>

#include "nn/activation.hpp"
#include "nn/dense.hpp"

namespace iprune::nn {
namespace {

Graph make_graph(std::uint64_t seed) {
  util::Rng rng(seed);
  Graph g({3});
  auto fc1 = g.add(std::make_unique<Dense>("fc1", 3, 4, rng), {g.input()});
  auto r = g.add(std::make_unique<Relu>("r"), {fc1});
  auto fc2 = g.add(std::make_unique<Dense>("fc2", 4, 2, rng), {r});
  g.set_output(fc2);
  return g;
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

TEST(Serialize, RoundTripsValuesAndMasks) {
  Graph a = make_graph(1);
  auto& fc1 = dynamic_cast<Dense&>(a.layer(1));
  fc1.weight_mask().at(1, 2) = 0.0f;
  fc1.apply_mask();

  const std::string path = temp_path("roundtrip.bin");
  ASSERT_TRUE(save_parameters(a, path));

  Graph b = make_graph(2);  // different init
  ASSERT_TRUE(load_parameters(b, path));

  const auto pa = a.params();
  const auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i].value->equals(*pb[i].value));
    if (pa[i].mask != nullptr) {
      EXPECT_TRUE(pa[i].mask->equals(*pb[i].mask));
    }
  }
  std::remove(path.c_str());
}

TEST(Serialize, LoadedGraphProducesIdenticalOutput) {
  Graph a = make_graph(3);
  const std::string path = temp_path("output_check.bin");
  ASSERT_TRUE(save_parameters(a, path));
  Graph b = make_graph(4);
  ASSERT_TRUE(load_parameters(b, path));

  Tensor x({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(a.forward(x).equals(b.forward(x)));
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileFails) {
  Graph g = make_graph(5);
  EXPECT_FALSE(load_parameters(g, temp_path("does_not_exist.bin")));
}

TEST(Serialize, StructuralMismatchFails) {
  Graph a = make_graph(6);
  const std::string path = temp_path("mismatch.bin");
  ASSERT_TRUE(save_parameters(a, path));

  util::Rng rng(7);
  Graph different({3});
  auto fc = different.add(std::make_unique<Dense>("fc", 3, 7, rng),
                          {different.input()});
  different.set_output(fc);
  EXPECT_FALSE(load_parameters(different, path));
  std::remove(path.c_str());
}

TEST(Serialize, CorruptMagicFails) {
  const std::string path = temp_path("corrupt.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "garbage data here";
  }
  Graph g = make_graph(8);
  EXPECT_FALSE(load_parameters(g, path));
  std::remove(path.c_str());
}

TEST(Serialize, SaveToBadPathFails) {
  Graph g = make_graph(9);
  EXPECT_FALSE(save_parameters(g, "/nonexistent-dir-xyz/params.bin"));
}

}  // namespace
}  // namespace iprune::nn
