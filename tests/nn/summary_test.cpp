#include "nn/summary.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"

namespace iprune::nn {
namespace {

Graph make_graph() {
  util::Rng rng(3);
  Graph g({1, 4, 4});
  auto conv = g.add(std::make_unique<Conv2d>(
                        "conv",
                        Conv2dSpec{.in_channels = 1, .out_channels = 2,
                                   .kernel_h = 3, .kernel_w = 3,
                                   .pad_h = 1, .pad_w = 1},
                        rng),
                    {g.input()});
  auto relu = g.add(std::make_unique<Relu>("relu"), {conv});
  auto flat = g.add(std::make_unique<Flatten>("flat"), {relu});
  auto fc = g.add(std::make_unique<Dense>("fc", 32, 3, rng), {flat});
  g.set_output(fc);
  return g;
}

TEST(Summary, CountsParametersPerLayer) {
  Graph g = make_graph();
  const ModelSummary s = summarize(g);
  ASSERT_EQ(s.rows.size(), 4u);
  EXPECT_EQ(s.rows[0].name, "conv");
  EXPECT_EQ(s.rows[0].parameters, 2u * 9u + 2u);
  EXPECT_EQ(s.rows[1].parameters, 0u);  // relu
  EXPECT_EQ(s.rows[3].parameters, 32u * 3u + 3u);
  EXPECT_EQ(s.total_parameters, 20u + 99u);
  EXPECT_EQ(s.nonzero_parameters, s.total_parameters);
  EXPECT_DOUBLE_EQ(s.sparsity(), 0.0);
}

TEST(Summary, ReflectsPruningMasks) {
  Graph g = make_graph();
  auto& fc = dynamic_cast<Dense&>(g.layer(4));
  for (std::size_t kk = 0; kk < 32; ++kk) {
    fc.weight_mask().at(0, kk) = 0.0f;
  }
  const ModelSummary s = summarize(g);
  EXPECT_EQ(s.nonzero_parameters, s.total_parameters - 32u);
  EXPECT_GT(s.sparsity(), 0.0);
}

TEST(Summary, TableContainsLayersAndTotals) {
  Graph g = make_graph();
  const std::string table = summary_table(g);
  EXPECT_NE(table.find("conv"), std::string::npos);
  EXPECT_NE(table.find("FC"), std::string::npos);
  EXPECT_NE(table.find("total"), std::string::npos);
  EXPECT_NE(table.find("sparsity"), std::string::npos);
}

TEST(Summary, OutputShapesMatchGraph) {
  Graph g = make_graph();
  const ModelSummary s = summarize(g);
  EXPECT_EQ(s.rows[0].output_shape, (Shape{2, 4, 4}));
  EXPECT_EQ(s.rows[3].output_shape, (Shape{3}));
}

}  // namespace
}  // namespace iprune::nn
