#include "nn/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace iprune::nn {
namespace {

TEST(Shape, NumelProducts) {
  EXPECT_EQ(shape_numel({}), 1u);
  EXPECT_EQ(shape_numel({5}), 5u);
  EXPECT_EQ(shape_numel({2, 3, 4}), 24u);
  EXPECT_EQ(shape_numel({7, 0}), 0u);
}

TEST(Shape, StringForm) {
  EXPECT_EQ(shape_str({2, 3}), "[2, 3]");
  EXPECT_EQ(shape_str({}), "[]");
}

TEST(Tensor, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  for (std::size_t i = 0; i < t.numel(); ++i) {
    EXPECT_EQ(t[i], 0.0f);
  }
}

TEST(Tensor, ConstructFromValues) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(Tensor, ConstructSizeMismatchThrows) {
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, MultiDimIndexingRowMajor) {
  Tensor t({2, 3, 4});
  t.at(1, 2, 3) = 5.0f;
  EXPECT_EQ(t[1 * 12 + 2 * 4 + 3], 5.0f);
  Tensor t4({2, 2, 2, 2});
  t4.at(1, 0, 1, 0) = 7.0f;
  EXPECT_EQ(t4[8 + 0 + 2 + 0], 7.0f);
}

TEST(Tensor, OffsetMatchesAt) {
  Tensor t({3, 4});
  const std::size_t index[] = {2, 1};
  EXPECT_EQ(t.offset(index), 9u);
}

TEST(Tensor, FillAndZero) {
  Tensor t({4});
  t.fill(2.5f);
  EXPECT_EQ(t.sum(), 10.0f);
  t.zero();
  EXPECT_EQ(t.sum(), 0.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {1, 2, 3, 4, 5, 6});
  t.reshape({3, 2});
  EXPECT_EQ(t.at(2, 1), 6.0f);
  EXPECT_THROW(t.reshape({4, 2}), std::invalid_argument);
}

TEST(Tensor, AddScaled) {
  Tensor a({3}, {1, 2, 3});
  const Tensor b({3}, {10, 20, 30});
  a.add_scaled(b, 0.1f);
  EXPECT_FLOAT_EQ(a[0], 2.0f);
  EXPECT_FLOAT_EQ(a[2], 6.0f);
}

TEST(Tensor, ScaleMultiplies) {
  Tensor a({2}, {3, -4});
  a.scale(0.5f);
  EXPECT_FLOAT_EQ(a[0], 1.5f);
  EXPECT_FLOAT_EQ(a[1], -2.0f);
}

TEST(Tensor, HadamardMasks) {
  Tensor a({4}, {1, 2, 3, 4});
  const Tensor mask({4}, {1, 0, 1, 0});
  a.hadamard(mask);
  EXPECT_FLOAT_EQ(a[0], 1.0f);
  EXPECT_FLOAT_EQ(a[1], 0.0f);
  EXPECT_FLOAT_EQ(a[3], 0.0f);
}

TEST(Tensor, Reductions) {
  const Tensor t({4}, {1, -5, 3, 0});
  EXPECT_FLOAT_EQ(t.sum(), -1.0f);
  EXPECT_FLOAT_EQ(t.abs_max(), 5.0f);
  EXPECT_EQ(t.count_nonzero(), 3u);
  EXPECT_NEAR(t.rms(), std::sqrt((1.0 + 25.0 + 9.0) / 4.0), 1e-6);
}

TEST(Tensor, RmsOfEmptyIsZero) {
  const Tensor t;
  EXPECT_EQ(t.rms(), 0.0f);
}

TEST(Tensor, EqualsComparesShapeAndValues) {
  const Tensor a({2}, {1, 2});
  const Tensor b({2}, {1, 2});
  const Tensor c({2}, {1, 3});
  Tensor d({1, 2}, {1, 2});
  EXPECT_TRUE(a.equals(b));
  EXPECT_FALSE(a.equals(c));
  EXPECT_FALSE(a.equals(d));
}

}  // namespace
}  // namespace iprune::nn
