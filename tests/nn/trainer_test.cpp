#include "nn/trainer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/activation.hpp"
#include "nn/dense.hpp"

namespace iprune::nn {
namespace {

/// Two-class "xor-ish" blobs: linearly inseparable, learnable by a 1-hidden
/// layer MLP.
void make_blobs(Tensor& x, std::vector<int>& y, std::size_t count,
                util::Rng& rng) {
  x = Tensor({count, 2});
  y.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    const bool a = rng.bernoulli(0.5);
    const bool b = rng.bernoulli(0.5);
    x.at(i, 0) = (a ? 1.0f : -1.0f) + static_cast<float>(rng.normal(0, 0.2));
    x.at(i, 1) = (b ? 1.0f : -1.0f) + static_cast<float>(rng.normal(0, 0.2));
    y[i] = (a != b) ? 1 : 0;
  }
}

Graph make_mlp(util::Rng& rng) {
  Graph g({2});
  auto h = g.add(std::make_unique<Dense>("h", 2, 16, rng), {g.input()});
  auto r = g.add(std::make_unique<Relu>("r"), {h});
  auto o = g.add(std::make_unique<Dense>("o", 16, 2, rng), {r});
  g.set_output(o);
  return g;
}

TEST(GatherRows, SelectsRows) {
  Tensor x({3, 2}, {1, 2, 3, 4, 5, 6});
  const std::vector<std::size_t> idx = {2, 0};
  const Tensor out = gather_rows(x, idx);
  ASSERT_EQ(out.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(out.at(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1), 2.0f);
}

TEST(GatherRows, PreservesTrailingDims) {
  Tensor x({2, 3, 4});
  x[23] = 9.0f;
  const std::vector<std::size_t> idx = {1};
  const Tensor out = gather_rows(x, idx);
  EXPECT_EQ(out.shape(), (Shape{1, 3, 4}));
  EXPECT_FLOAT_EQ(out[11], 9.0f);
}

TEST(Trainer, LearnsXorBlobs) {
  util::Rng rng(5);
  Tensor x;
  std::vector<int> y;
  make_blobs(x, y, 400, rng);

  Graph g = make_mlp(rng);
  Trainer trainer(g);
  const EvalResult before = trainer.evaluate(x, y);

  TrainConfig config;
  config.epochs = 40;
  config.batch_size = 16;
  config.sgd.learning_rate = 0.05f;
  trainer.train(x, y, config);

  const EvalResult after = trainer.evaluate(x, y);
  EXPECT_GT(after.accuracy, 0.95);
  EXPECT_LT(after.loss, before.loss);
}

TEST(Trainer, EpochCallbackReportsDecreasingLoss) {
  util::Rng rng(6);
  Tensor x;
  std::vector<int> y;
  make_blobs(x, y, 300, rng);
  Graph g = make_mlp(rng);
  Trainer trainer(g);

  std::vector<double> losses;
  TrainConfig config;
  config.epochs = 20;
  trainer.train(x, y, config, [&](std::size_t, double loss) {
    losses.push_back(loss);
  });
  ASSERT_EQ(losses.size(), 20u);
  EXPECT_LT(losses.back(), losses.front());
}

TEST(Trainer, DeterministicAcrossRuns) {
  util::Rng rng_a(7);
  Tensor x;
  std::vector<int> y;
  make_blobs(x, y, 100, rng_a);

  util::Rng init_a(8), init_b(8);
  Graph a = make_mlp(init_a);
  Graph b = make_mlp(init_b);
  TrainConfig config;
  config.epochs = 3;
  Trainer(a).train(x, y, config);
  Trainer(b).train(x, y, config);

  const auto pa = a.params();
  const auto pb = b.params();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i].value->equals(*pb[i].value)) << "param " << i;
  }
}

TEST(Trainer, RespectsMasksDuringTraining) {
  util::Rng rng(9);
  Tensor x;
  std::vector<int> y;
  make_blobs(x, y, 200, rng);
  Graph g = make_mlp(rng);

  auto& hidden = dynamic_cast<Dense&>(g.layer(1));
  for (std::size_t kk = 0; kk < hidden.weight().dim(1); ++kk) {
    hidden.weight_mask().at(0, kk) = 0.0f;
  }
  hidden.apply_mask();

  TrainConfig config;
  config.epochs = 5;
  Trainer(g).train(x, y, config);
  for (std::size_t kk = 0; kk < hidden.weight().dim(1); ++kk) {
    EXPECT_EQ(hidden.weight().at(0, kk), 0.0f);
  }
}

TEST(Trainer, EvaluateRejectsMismatchedLabels) {
  util::Rng rng(10);
  Graph g = make_mlp(rng);
  Trainer trainer(g);
  Tensor x({4, 2});
  std::vector<int> y = {0, 1};
  EXPECT_THROW(trainer.evaluate(x, y), std::invalid_argument);
}

TEST(Trainer, GradientClippingKeepsTrainingFinite) {
  util::Rng rng(11);
  Tensor x;
  std::vector<int> y;
  make_blobs(x, y, 200, rng);
  // Scale inputs up hard; without clipping lr=0.5 would explode.
  x.scale(50.0f);
  Graph g = make_mlp(rng);
  TrainConfig config;
  config.epochs = 10;
  config.sgd.learning_rate = 0.5f;
  config.clip_grad_norm = 1.0f;
  Trainer trainer(g);
  trainer.train(x, y, config);
  const EvalResult r = trainer.evaluate(x, y);
  EXPECT_FALSE(std::isnan(r.loss));
}

}  // namespace
}  // namespace iprune::nn
