// Analytic harvest models (RF, kinetic, indoor-solar, diurnal). The
// scheduler's fast path caches segment() and skips per-event power_w()
// calls, so the contract under test is bit-exactness: within a segment,
// every power_w(t) equals the cached segment power to the last ulp, and
// the step-by-step oracle (dense power_w sampling) integrates to the same
// energy as walking segments. Any epsilon here would split the stepping
// and scheduler sims' digests.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>
#include <vector>

#include "power/supply.hpp"

namespace iprune::power {
namespace {

/// For a dense grid of query times, the segment returned at t must cover
/// power_w exactly until its end: same bits, no tolerance.
void expect_segment_matches_stepping(const PowerSupply& supply,
                                     double horizon_s) {
  const int queries = 400;
  for (int i = 0; i < queries; ++i) {
    const double t = horizon_s * i / queries;
    const SupplySegment seg = supply.segment(t);
    ASSERT_GE(seg.end_s, t);
    ASSERT_EQ(seg.power_w, supply.power_w(t)) << "at t=" << t;
    // Sample inside the window, including a point snug against the end.
    const double span = seg.end_s - t;
    for (const double f : {0.0, 0.25, 0.5, 0.75, 0.999}) {
      const double inside = t + span * f;
      ASSERT_EQ(supply.power_w(inside), seg.power_w)
          << "segment [" << t << ", " << seg.end_s << ") broken at "
          << inside;
    }
  }
}

/// Energy over one cycle from the analytic phase table equals the
/// closed-form mean-power expectation of the model.
void expect_cycle_energy(const PhasedSupply& supply, double expected_j) {
  double walked = 0.0;
  for (const PhasedSupply::Phase& phase : supply.phases()) {
    walked += phase.power_w * phase.duration_s;
  }
  EXPECT_NEAR(walked, expected_j, 1e-12 + 1e-9 * expected_j);
}

/// Inside the guard band before a phase boundary, segment() degrades to a
/// zero-length window (end_s == query time) — "take the slow path" — and
/// never stretches the cached power across the boundary.
void expect_guard_band_degrades(const PhasedSupply& supply) {
  const double guard = supply.cycle_s() * 1e-9;
  double end = 0.0;
  for (const PhasedSupply::Phase& phase : supply.phases()) {
    end += phase.duration_s;
    const double inside = end - 0.5 * guard;
    const SupplySegment seg = supply.segment(inside);
    ASSERT_EQ(seg.end_s, inside) << "boundary " << end;
    ASSERT_EQ(seg.power_w, supply.power_w(inside)) << "boundary " << end;
  }
}

TEST(HarvestModels, RfSegmentIsBitExact) {
  const RfSupply rf(0.015, 0.02, 0.6);
  expect_segment_matches_stepping(rf, 0.1);
  // Burst for the leading duty fraction, silent after.
  EXPECT_EQ(rf.power_w(0.0), 0.015);
  EXPECT_EQ(rf.power_w(0.0119), 0.015);
  EXPECT_EQ(rf.power_w(0.0121), 0.0);
  // Cyclic: one full period later the same phase holds.
  EXPECT_EQ(rf.power_w(0.0201), rf.power_w(0.0001));
}

TEST(HarvestModels, RfMeanPowerMatchesDutyCycle) {
  const RfSupply rf(0.01, 0.5, 0.2);
  expect_cycle_energy(rf, 0.01 * 0.5 * 0.2);
}

TEST(HarvestModels, GuardBandDegradesToTheSlowPath) {
  expect_guard_band_degrades(RfSupply(0.015, 0.02, 0.6));
  expect_guard_band_degrades(KineticSupply(0.02, 0.05, 4, 0.8));
  expect_guard_band_degrades(IndoorSolarSupply(0.008, 0.002, 4.0, 0.7));
  expect_guard_band_degrades(DiurnalSupply(0.016, 8.0, 0.5));
}

TEST(HarvestModels, KineticImpulseDecaysGeometrically) {
  const KineticSupply kinetic(0.02, 0.05, 4, 0.8);
  expect_segment_matches_stepping(kinetic, 0.2);
  // Four slots spanning the first half-period, geometric decay, then
  // quiet: p_k = impulse * decay^k with slot width T/(2*steps).
  const double slot = 0.05 / (2.0 * 4);
  for (int k = 0; k < 4; ++k) {
    const double expected = 0.02 * std::pow(0.8, k);
    EXPECT_DOUBLE_EQ(kinetic.power_w((k + 0.5) * slot), expected);
  }
  EXPECT_EQ(kinetic.power_w(0.03), 0.0);  // second half is quiet
}

TEST(HarvestModels, IndoorSolarHoldsADimFloor) {
  const IndoorSolarSupply indoor(0.008, 0.002, 4.0, 0.7);
  expect_segment_matches_stepping(indoor, 12.0);
  EXPECT_EQ(indoor.power_w(1.0), 0.008);   // lights on
  EXPECT_EQ(indoor.power_w(3.0), 0.002);   // dim floor, never zero
  expect_cycle_energy(indoor, 0.008 * 4.0 * 0.7 + 0.002 * 4.0 * 0.3);
}

TEST(HarvestModels, DiurnalQuantizesASinSquaredArc) {
  const DiurnalSupply diurnal(0.016, 8.0, 0.5);
  expect_segment_matches_stepping(diurnal, 20.0);
  // Slot k carries peak * sin^2(pi * (k + 0.5) / kSlots) across the
  // daylight window; the night half is exactly zero.
  const double daylight = 8.0 * 0.5;
  const double slot = daylight / DiurnalSupply::kSlots;
  const std::size_t mid = DiurnalSupply::kSlots / 2;
  const double expected =
      0.016 * std::pow(std::sin(std::numbers::pi * (mid + 0.5) /
                                DiurnalSupply::kSlots),
                       2.0);
  EXPECT_DOUBLE_EQ(diurnal.power_w((mid + 0.5) * slot), expected);
  EXPECT_EQ(diurnal.power_w(daylight + 1.0), 0.0);
  EXPECT_EQ(diurnal.power_w(7.999), 0.0);
  // Noon beats morning beats night.
  EXPECT_GT(diurnal.power_w(2.0), diurnal.power_w(0.1));
}

TEST(HarvestModels, PhasedSupplyRejectsBadPhases) {
  EXPECT_THROW(PhasedSupply({}), std::invalid_argument);
  EXPECT_THROW(PhasedSupply({{0.01, 0.0}}), std::invalid_argument);
  EXPECT_THROW(PhasedSupply({{-0.01, 1.0}}), std::invalid_argument);
  EXPECT_THROW(PhasedSupply({{std::nan(""), 1.0}}),
               std::invalid_argument);
}

TEST(HarvestModels, CyclesRepeatExactly) {
  // fmod-based phase lookup must agree with itself across many cycles —
  // the diurnal model runs for thousands of simulated days.
  const DiurnalSupply diurnal(0.016, 8.0, 0.5);
  const RfSupply rf(0.015, 0.02, 0.6);
  for (int cycle = 1; cycle < 64; cycle *= 2) {
    EXPECT_EQ(diurnal.power_w(1.0), diurnal.power_w(1.0 + 8.0 * cycle));
    EXPECT_EQ(rf.power_w(0.005), rf.power_w(0.005 + 0.02 * cycle));
  }
}

}  // namespace
}  // namespace iprune::power
