#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>

#include "power/energy_buffer.hpp"
#include "power/manager.hpp"
#include "power/supply.hpp"

namespace iprune::power {
namespace {

TEST(Supply, ConstantIsConstant) {
  ConstantSupply s(0.008);
  EXPECT_DOUBLE_EQ(s.power_w(0.0), 0.008);
  EXPECT_DOUBLE_EQ(s.power_w(1e6), 0.008);
}

TEST(Supply, PresetsMatchPaperTableI) {
  EXPECT_DOUBLE_EQ(SupplyPresets::continuous()->power_w(0), 1.65);
  EXPECT_DOUBLE_EQ(SupplyPresets::strong()->power_w(0), 8.0e-3);
  EXPECT_DOUBLE_EQ(SupplyPresets::weak()->power_w(0), 4.0e-3);
}

TEST(Supply, TraceStepsThroughSamples) {
  TraceSupply trace({1.0, 2.0, 3.0}, 0.5);
  EXPECT_DOUBLE_EQ(trace.power_w(0.1), 1.0);
  EXPECT_DOUBLE_EQ(trace.power_w(0.6), 2.0);
  EXPECT_DOUBLE_EQ(trace.power_w(1.2), 3.0);
}

TEST(Supply, TraceWrapsCyclically) {
  TraceSupply trace({1.0, 2.0}, 1.0);
  EXPECT_DOUBLE_EQ(trace.power_w(2.5), 1.0);
  EXPECT_DOUBLE_EQ(trace.power_w(3.5), 2.0);
}

TEST(Supply, TraceValidatesInput) {
  EXPECT_THROW(TraceSupply({}, 1.0), std::invalid_argument);
  EXPECT_THROW(TraceSupply({1.0}, 0.0), std::invalid_argument);
  EXPECT_THROW(TraceSupply({-1.0}, 1.0), std::invalid_argument);
}

TEST(Supply, SolarDayPeaksMidday) {
  auto solar = SupplyPresets::solar_day(0.01, 1000.0);
  const double morning = solar->power_w(50.0);
  const double noon = solar->power_w(500.0);
  const double evening = solar->power_w(950.0);
  EXPECT_GT(noon, morning);
  EXPECT_GT(noon, evening);
  EXPECT_NEAR(noon, 0.01, 1e-3);
}

TEST(Supply, FromCsvParsesMilliwattsAndComments) {
  const std::string path = ::testing::TempDir() + "trace.csv";
  {
    std::ofstream out(path);
    out << "# solar trace, mW\n5.0\n 2.5 # midday dip\n\n10\n";
  }
  const TraceSupply trace = TraceSupply::from_csv(path, 1.0);
  EXPECT_DOUBLE_EQ(trace.power_w(0.5), 5.0e-3);
  EXPECT_DOUBLE_EQ(trace.power_w(1.5), 2.5e-3);
  EXPECT_DOUBLE_EQ(trace.power_w(2.5), 10.0e-3);
  std::remove(path.c_str());
}

TEST(Supply, FromCsvRejectsMissingAndEmptyFiles) {
  EXPECT_THROW(TraceSupply::from_csv("/no/such/file.csv", 1.0),
               std::runtime_error);
  const std::string path = ::testing::TempDir() + "empty_trace.csv";
  {
    std::ofstream out(path);
    out << "# only comments\n";
  }
  EXPECT_THROW(TraceSupply::from_csv(path, 1.0), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Supply, FromCsvRejectsNegativeSamples) {
  const std::string path = ::testing::TempDir() + "neg_trace.csv";
  {
    std::ofstream out(path);
    out << "5\n-1\n";
  }
  EXPECT_THROW(TraceSupply::from_csv(path, 1.0), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Supply, FromCsvRejectsNonFiniteSamples) {
  // operator>> accepts "nan"/"inf" spellings, and NaN slips past any
  // `< 0` comparison — from_csv must reject them explicitly.
  for (const char* bad : {"5\nnan\n", "5\ninf\n", "5\n-inf\n"}) {
    const std::string path = ::testing::TempDir() + "nonfinite_trace.csv";
    {
      std::ofstream out(path);
      out << bad;
    }
    EXPECT_THROW(TraceSupply::from_csv(path, 1.0), std::runtime_error)
        << bad;
    std::remove(path.c_str());
  }
  EXPECT_THROW(
      TraceSupply({std::numeric_limits<double>::quiet_NaN()}, 1.0),
      std::invalid_argument);
  EXPECT_THROW(TraceSupply({std::numeric_limits<double>::infinity()}, 1.0),
               std::invalid_argument);
}

TEST(Supply, FromCsvErrorNamesOffendingLine) {
  const std::string path = ::testing::TempDir() + "bad_line_trace.csv";
  {
    std::ofstream out(path);
    out << "# header comment\n5\n\nnan\n";
  }
  try {
    (void)TraceSupply::from_csv(path, 1.0);
    FAIL() << "expected rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(Supply, FromCsvHandlesCommentOnlyAndTrailingNewlineFiles) {
  // A comment-only file has no samples: clear error, not a bogus supply.
  const std::string empty_path = ::testing::TempDir() + "comment_trace.csv";
  {
    std::ofstream out(empty_path);
    out << "# a\n# b\n\n   \n";
  }
  EXPECT_THROW(TraceSupply::from_csv(empty_path, 1.0), std::runtime_error);
  std::remove(empty_path.c_str());

  // Trailing newlines (and a final line without one) must not add
  // phantom samples or drop the last real one.
  for (const char* body : {"5\n7\n", "5\n7", "5\n7\n\n\n"}) {
    const std::string path = ::testing::TempDir() + "newline_trace.csv";
    {
      std::ofstream out(path);
      out << body;
    }
    const TraceSupply trace = TraceSupply::from_csv(path, 1.0);
    EXPECT_DOUBLE_EQ(trace.power_w(0.5), 5.0e-3) << body;
    EXPECT_DOUBLE_EQ(trace.power_w(1.5), 7.0e-3) << body;
    EXPECT_DOUBLE_EQ(trace.power_w(2.5), 5.0e-3) << body;  // wraps: 2 samples
    std::remove(path.c_str());
  }
}

TEST(Buffer, UsableEnergyMatchesCapacitorFormula) {
  EnergyBuffer buffer({.capacitance_f = 100e-6, .v_on = 2.8, .v_off = 2.4});
  // E = 1/2 * C * (v_on^2 - v_off^2) = 0.5 * 1e-4 * 2.08 = 104 uJ
  EXPECT_NEAR(buffer.usable_j(), 104e-6, 1e-9);
  EXPECT_DOUBLE_EQ(buffer.stored_j(), buffer.usable_j());
}

TEST(Buffer, RejectsInvalidConfig) {
  EXPECT_THROW(EnergyBuffer({.capacitance_f = 0.0}), std::invalid_argument);
  EXPECT_THROW(EnergyBuffer({.capacitance_f = 1e-6, .v_on = 2.0,
                             .v_off = 2.5}),
               std::invalid_argument);
}

TEST(Buffer, DepositSaturates) {
  EnergyBuffer buffer({});
  buffer.deposit(1.0);
  EXPECT_DOUBLE_EQ(buffer.stored_j(), buffer.usable_j());
}

TEST(Buffer, WithdrawBrownsOutWhenInsufficient) {
  EnergyBuffer buffer({});
  EXPECT_TRUE(buffer.withdraw(buffer.usable_j() / 2));
  EXPECT_FALSE(buffer.withdraw(buffer.usable_j()));
  EXPECT_DOUBLE_EQ(buffer.stored_j(), 0.0);
  buffer.refill();
  EXPECT_DOUBLE_EQ(buffer.stored_j(), buffer.usable_j());
}

TEST(Manager, ContinuousSupplySustainsLoad) {
  PowerManager pm(SupplyPresets::continuous(), {});
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(pm.consume(i * 1e-3, 1e-3, 50e-6));
  }
  EXPECT_EQ(pm.stats().power_failures, 0u);
}

TEST(Manager, OverDrawFailsAndCountsFailure) {
  PowerManager pm(SupplyPresets::weak(), {});
  // Draw far more than harvest replaces.
  bool failed = false;
  for (int i = 0; i < 100 && !failed; ++i) {
    failed = !pm.consume(i * 1e-4, 1e-4, 20e-6);
  }
  EXPECT_TRUE(failed);
  EXPECT_EQ(pm.stats().power_failures, 1u);
}

TEST(Manager, RechargeDurationMatchesConstantSupply) {
  PowerManager pm(SupplyPresets::strong(), {});
  // Drain completely, then recharge at 8 mW.
  (void)pm.consume(0.0, 0.0, 1.0);  // guaranteed brown-out
  const double duration = pm.recharge(0.0);
  EXPECT_NEAR(duration, 104e-6 / 8e-3, 1e-6);
  EXPECT_DOUBLE_EQ(pm.buffer().stored_j(), pm.buffer().usable_j());
  EXPECT_GT(pm.stats().off_time_s, 0.0);
}

TEST(Manager, WeakPowerRechargesSlowerThanStrong) {
  PowerManager strong(SupplyPresets::strong(), {});
  PowerManager weak(SupplyPresets::weak(), {});
  (void)strong.consume(0, 0, 1.0);
  (void)weak.consume(0, 0, 1.0);
  EXPECT_GT(weak.recharge(0.0), strong.recharge(0.0) * 1.9);
}

TEST(Manager, TraceSupplyRechargeIntegrates) {
  // 1 mW for the first second, then 10 mW: recharge started at t=0 should
  // take longer than at a constant 10 mW.
  auto trace = std::make_unique<TraceSupply>(
      std::vector<double>{1e-3, 10e-3}, 1.0);
  PowerManager pm(std::move(trace), {});
  (void)pm.consume(0, 0, 1.0);
  const double duration = pm.recharge(0.0);
  EXPECT_GT(duration, 104e-6 / 10e-3);
}

TEST(Manager, DeadSupplyThrowsOnRecharge) {
  PowerManager pm(std::make_unique<ConstantSupply>(0.0), {});
  (void)pm.consume(0, 0, 1.0);
  EXPECT_THROW((void)pm.recharge(0.0), std::runtime_error);
}

TEST(Manager, HarvestedEnergyTracked) {
  PowerManager pm(SupplyPresets::strong(), {});
  (void)pm.consume(0.0, 1.0, 1e-6);  // 1 s at 8 mW harvests 8 mJ
  EXPECT_NEAR(pm.stats().harvested_j, 8e-3, 1e-9);
  EXPECT_NEAR(pm.stats().consumed_j, 1e-6, 1e-12);
}

// --- Energy-conservation ledger ---
//
// Pinned invariant (manager.hpp): across any sequence of consume() and
// recharge() calls, organic or injected,
//   initial_stored + harvested_j == consumed_j + wasted_j + stored_j
// Drift here silently corrupts every energy figure the benches report.

double ledger_drift(const PowerManager& pm, double initial_stored) {
  return initial_stored + pm.stats().harvested_j - pm.stats().consumed_j -
         pm.stats().wasted_j - pm.buffer().stored_j();
}

/// Minimal deterministic hook: force a brown-out at one global call index.
struct FailAtCall final : FaultHook {
  explicit FailAtCall(std::uint64_t target) : target_(target) {}
  bool should_fail(FaultPoint) override { return count_++ == target_; }
  std::uint64_t target_;
  std::uint64_t count_ = 0;
};

TEST(Manager, EnergyConservationAcrossOrganicOutages) {
  PowerManager pm(SupplyPresets::weak(), {});
  const double initial = pm.buffer().stored_j();
  double t = 0.0;
  std::size_t outages = 0;
  for (int i = 0; i < 400; ++i) {
    if (!pm.consume(t, 1e-4, 2e-6)) {
      ++outages;
      t += pm.recharge(t);
    }
    t += 1e-4;
  }
  ASSERT_GT(outages, 0u);
  EXPECT_EQ(pm.stats().injected_failures, 0u);
  EXPECT_NEAR(ledger_drift(pm, initial), 0.0, 1e-12);
}

TEST(Manager, EnergyConservationAcrossInjectedOutage) {
  PowerManager pm(SupplyPresets::strong(), {});
  const double initial = pm.buffer().stored_j();
  FailAtCall hook(5);
  pm.set_fault_hook(&hook);
  double t = 0.0;
  std::size_t outages = 0;
  for (int i = 0; i < 12; ++i) {
    if (!pm.consume(t, 1e-3, 5e-6, FaultPoint::kNvmWrite)) {
      ++outages;
      t += pm.recharge(t);
    }
    t += 1e-3;
  }
  EXPECT_EQ(outages, 1u);
  EXPECT_EQ(pm.stats().injected_failures, 1u);
  EXPECT_EQ(pm.stats().power_failures, 1u);
  // The injected outage discarded residual charge as waste, not as
  // consumption: consumed_j covers exactly the 11 completed operations.
  EXPECT_NEAR(pm.stats().consumed_j, 11 * 5e-6, 1e-12);
  EXPECT_GT(pm.stats().wasted_j, 0.0);
  EXPECT_NEAR(ledger_drift(pm, initial), 0.0, 1e-12);
}

TEST(Manager, OrganicBrownOutConsumesOnlyWhatTheBufferHeld) {
  // The interrupted operation must not be double-counted: only the energy
  // the buffer actually held is consumed, the demanded remainder was
  // never delivered.
  PowerManager pm(std::make_unique<ConstantSupply>(0.0), {});
  const double initial = pm.buffer().stored_j();
  ASSERT_FALSE(pm.consume(0.0, 0.0, initial * 2));
  EXPECT_NEAR(pm.stats().consumed_j, initial, 1e-15);
  EXPECT_NEAR(ledger_drift(pm, initial), 0.0, 1e-15);
}

TEST(Manager, SteppedRechargeCountsOvershootAsWaste) {
  // Non-constant supply forces the integrating recharge path, whose final
  // step overshoots the on-threshold; the overshoot must land in
  // wasted_j, not vanish.
  auto trace = std::make_unique<TraceSupply>(
      std::vector<double>{3e-3, 7e-3}, 0.01);
  PowerManager pm(std::move(trace), {});
  const double initial = pm.buffer().stored_j();
  (void)pm.consume(0.0, 0.0, 1.0);  // guaranteed organic brown-out
  (void)pm.recharge(0.0);
  EXPECT_DOUBLE_EQ(pm.buffer().stored_j(), pm.buffer().usable_j());
  EXPECT_GT(pm.stats().wasted_j, 0.0);
  EXPECT_NEAR(ledger_drift(pm, initial), 0.0, 1e-12);
}

}  // namespace
}  // namespace iprune::power
