// Determinism regression tests for the parallel search paths: every
// search must produce bit-identical results for any pool lane count
// (the contract in docs/parallelism.md). Lane counts 1, 2, and 8 cover
// serial, fewer-lanes-than-tasks, and more-lanes-than-tasks scheduling.

#include <gtest/gtest.h>

#include <memory>

#include "baselines/eprune.hpp"
#include "core/arch_search.hpp"
#include "core/criterion.hpp"
#include "core/ratio_search.hpp"
#include "core/sensitivity.hpp"
#include "nn/activation.hpp"
#include "nn/dense.hpp"
#include "nn/trainer.hpp"
#include "runtime/thread_pool.hpp"

namespace iprune {
namespace {

constexpr std::size_t kLaneCounts[] = {1, 2, 8};

/// Small trained MLP with two prunable layers plus its dataset.
struct Fixture {
  nn::Graph graph{nn::Shape{2}};
  nn::Tensor x;
  std::vector<int> y;
  std::vector<engine::PrunableLayer> layers;

  Fixture() {
    util::Rng rng(11);
    auto h = graph.add(std::make_unique<nn::Dense>("hidden", 2, 24, rng),
                       {graph.input()});
    auto r = graph.add(std::make_unique<nn::Relu>("r"), {h});
    auto o = graph.add(std::make_unique<nn::Dense>("out", 24, 2, rng), {r});
    graph.set_output(o);

    x = nn::Tensor({200, 2});
    y.resize(200);
    for (std::size_t i = 0; i < 200; ++i) {
      const bool cls = rng.bernoulli(0.5);
      x.at(i, 0) =
          (cls ? 1.2f : -1.2f) + static_cast<float>(rng.normal(0, 0.3));
      x.at(i, 1) = static_cast<float>(rng.normal(0, 0.3));
      y[i] = cls ? 1 : 0;
    }
    nn::TrainConfig tc;
    tc.epochs = 8;
    nn::Trainer(graph).train(x, y, tc);
    layers = engine::prunable_layers(graph, engine::EngineConfig{},
                                     device::MemoryConfig{});
  }
};

TEST(ParallelDeterminism, SensitivityDropsIdenticalAcrossLaneCounts) {
  Fixture f;
  core::SensitivityConfig cfg;

  std::vector<std::vector<double>> results;
  for (const std::size_t lanes : kLaneCounts) {
    runtime::ThreadPool pool(lanes);
    results.push_back(core::analyze_sensitivities(f.graph, f.layers, f.x,
                                                  f.y, cfg, &pool));
  }
  ASSERT_EQ(results[0].size(), f.layers.size());
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(ParallelDeterminism, AnnealingRestartsIdenticalAcrossLaneCounts) {
  Fixture f;
  std::vector<core::LayerStats> stats =
      core::collect_layer_stats(f.layers, device::DeviceConfig{});
  for (std::size_t i = 0; i < stats.size(); ++i) {
    stats[i].sensitivity = 0.05 * static_cast<double>(i + 1);
  }

  std::vector<std::vector<double>> results;
  for (const std::size_t lanes : kLaneCounts) {
    runtime::ThreadPool pool(lanes);
    core::AnnealingConfig cfg;
    cfg.iterations = 500;
    cfg.restarts = 6;
    cfg.pool = &pool;
    core::IPruneAllocator allocator(cfg);
    util::Rng rng(99);
    results.push_back(allocator.allocate(stats, 0.25, rng));
  }
  ASSERT_EQ(results[0].size(), stats.size());
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(ParallelDeterminism, SingleRestartMatchesCallerRngSequence) {
  // restarts == 1 must consume the caller's rng exactly like the
  // historical single-chain annealer, regardless of the pool field.
  Fixture f;
  std::vector<core::LayerStats> stats =
      core::collect_layer_stats(f.layers, device::DeviceConfig{});

  core::AnnealingConfig cfg;
  cfg.iterations = 300;
  core::IPruneAllocator single(cfg);
  util::Rng rng_a(5);
  const std::vector<double> a = single.allocate(stats, 0.2, rng_a);

  runtime::ThreadPool pool(8);
  cfg.restarts = 1;
  cfg.pool = &pool;
  core::IPruneAllocator pooled(cfg);
  util::Rng rng_b(5);
  const std::vector<double> b = pooled.allocate(stats, 0.2, rng_b);

  EXPECT_EQ(a, b);
  // Both must have advanced the caller's rng identically.
  EXPECT_EQ(rng_a.next_u64(), rng_b.next_u64());
}

struct SearchFixture {
  data::Dataset train, val;

  SearchFixture() {
    util::Rng rng(7);
    auto fill = [&](data::Dataset& d, std::size_t count) {
      d.num_classes = 2;
      d.inputs = nn::Tensor({count, 4});
      d.labels.resize(count);
      for (std::size_t i = 0; i < count; ++i) {
        const bool cls = rng.bernoulli(0.5);
        for (std::size_t k = 0; k < 4; ++k) {
          d.inputs.at(i, k) = static_cast<float>(
              (cls ? 1.0 : -1.0) * (k < 2 ? 1.0 : 0.1) +
              rng.normal(0, 0.3));
        }
        d.labels[i] = cls ? 1 : 0;
      }
    };
    fill(train, 120);
    fill(val, 60);
  }

  static nn::Graph build(const std::vector<std::size_t>& widths,
                         util::Rng& rng) {
    nn::Graph g({4});
    auto h = g.add(std::make_unique<nn::Dense>("h", 4, widths.at(0), rng),
                   {g.input()});
    auto r = g.add(std::make_unique<nn::Relu>("r"), {h});
    auto o = g.add(std::make_unique<nn::Dense>("o", widths.at(0), 2, rng),
                   {r});
    g.set_output(o);
    return g;
  }
};

TEST(ParallelDeterminism, ArchSearchIdenticalAcrossLaneCounts) {
  SearchFixture f;

  std::vector<core::ArchSearchResult> results;
  for (const std::size_t lanes : kLaneCounts) {
    runtime::ThreadPool pool(lanes);
    core::ArchSearchConfig cfg;
    cfg.min_widths = {4};
    cfg.max_widths = {24};
    cfg.evaluations = 6;
    cfg.initial_random = 2;
    cfg.proxy_training.epochs = 3;
    cfg.batch_size = 3;
    cfg.pool = &pool;
    results.push_back(core::search_architectures(&SearchFixture::build, cfg,
                                                 f.train, f.val));
  }
  EXPECT_EQ(results[0].evaluated, results[1].evaluated);
  EXPECT_EQ(results[0].evaluated, results[2].evaluated);
  ASSERT_EQ(results[0].pareto_front.size(), results[1].pareto_front.size());
  ASSERT_EQ(results[0].pareto_front.size(), results[2].pareto_front.size());
  for (std::size_t i = 0; i < results[0].pareto_front.size(); ++i) {
    for (std::size_t other = 1; other < results.size(); ++other) {
      EXPECT_EQ(results[0].pareto_front[i].widths,
                results[other].pareto_front[i].widths);
      EXPECT_DOUBLE_EQ(results[0].pareto_front[i].accuracy,
                       results[other].pareto_front[i].accuracy);
      EXPECT_EQ(results[0].pareto_front[i].acc_outputs,
                results[other].pareto_front[i].acc_outputs);
    }
  }
}

TEST(ParallelDeterminism, EPruneSweepIdenticalAcrossLaneCounts) {
  Fixture f;
  core::PruneConfig config;
  config.max_iterations = 2;
  config.finetune.epochs = 2;
  config.sensitivity.max_samples = 64;
  const std::vector<double> gammas = {0.2, 0.4, 0.6};

  std::vector<std::vector<baselines::EPruneSweepPoint>> sweeps;
  for (const std::size_t lanes : kLaneCounts) {
    runtime::ThreadPool pool(lanes);
    sweeps.push_back(baselines::sweep_eprune_gamma(
        f.graph, gammas, config, f.x, f.y, f.x, f.y, &pool));
  }
  for (const auto& sweep : sweeps) {
    ASSERT_EQ(sweep.size(), gammas.size());
  }
  for (std::size_t i = 0; i < gammas.size(); ++i) {
    for (std::size_t other = 1; other < sweeps.size(); ++other) {
      EXPECT_DOUBLE_EQ(sweeps[0][i].gamma_hat, sweeps[other][i].gamma_hat);
      EXPECT_DOUBLE_EQ(sweeps[0][i].outcome.final_accuracy,
                       sweeps[other][i].outcome.final_accuracy);
      EXPECT_EQ(sweeps[0][i].outcome.final_alive_weights,
                sweeps[other][i].outcome.final_alive_weights);
      EXPECT_EQ(sweeps[0][i].outcome.final_acc_outputs,
                sweeps[other][i].outcome.final_acc_outputs);
      EXPECT_EQ(sweeps[0][i].outcome.history.size(),
                sweeps[other][i].outcome.history.size());
    }
  }
  // The sweep must leave the input model untouched.
  for (const engine::PrunableLayer& layer : f.layers) {
    EXPECT_EQ(layer.alive_weights(), layer.total_weights());
  }
}

}  // namespace
}  // namespace iprune
