#include "runtime/retry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <vector>

#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"

namespace iprune::runtime {
namespace {

using std::chrono::milliseconds;

TEST(RetryPolicy, BackoffScheduleIsExponentialAndCapped) {
  RetryPolicy policy;
  policy.initial_backoff = milliseconds(5);
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = milliseconds(30);
  EXPECT_EQ(policy.backoff_after(0), milliseconds(5));
  EXPECT_EQ(policy.backoff_after(1), milliseconds(10));
  EXPECT_EQ(policy.backoff_after(2), milliseconds(20));
  EXPECT_EQ(policy.backoff_after(3), milliseconds(30));  // capped
  EXPECT_EQ(policy.backoff_after(10), milliseconds(30));
}

TEST(RetryPolicy, SubUnityMultiplierNeverShrinksBackoff) {
  RetryPolicy policy;
  policy.initial_backoff = milliseconds(8);
  policy.backoff_multiplier = 0.5;  // nonsense config: clamped to 1.0
  policy.max_backoff = milliseconds(100);
  EXPECT_EQ(policy.backoff_after(0), milliseconds(8));
  EXPECT_EQ(policy.backoff_after(5), milliseconds(8));
}

TEST(RetryPolicy, DisabledWithSingleAttempt) {
  EXPECT_FALSE(RetryPolicy{}.enabled());
  EXPECT_TRUE(RetryPolicy::transient_default().enabled());
  EXPECT_EQ(RetryPolicy::transient_default().max_attempts, 4);
}

TEST(RetryCall, SucceedsAfterTransientFailures) {
  RetryPolicy policy = RetryPolicy::transient_default();
  std::vector<milliseconds> slept;
  int calls = 0;
  const int result = retry_call(
      policy,
      [&] {
        if (++calls < 3) {
          throw TransientError("flaky");
        }
        return 42;
      },
      [&](milliseconds delay) { slept.push_back(delay); });
  EXPECT_EQ(result, 42);
  EXPECT_EQ(calls, 3);
  // One backoff per failed attempt, following the schedule exactly.
  ASSERT_EQ(slept.size(), 2u);
  EXPECT_EQ(slept[0], policy.backoff_after(0));
  EXPECT_EQ(slept[1], policy.backoff_after(1));
}

TEST(RetryCall, ExhaustedAttemptsRethrowTheTransientError) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  int calls = 0;
  std::vector<milliseconds> slept;
  EXPECT_THROW(retry_call(
                   policy,
                   [&]() -> int {
                     ++calls;
                     throw TransientError("always down");
                   },
                   [&](milliseconds delay) { slept.push_back(delay); }),
               TransientError);
  EXPECT_EQ(calls, 3);          // exactly max_attempts calls
  EXPECT_EQ(slept.size(), 2u);  // no sleep after the final failure
}

TEST(RetryCall, NonTransientErrorFailsFastWithDynamicType) {
  int calls = 0;
  EXPECT_THROW(retry_call(RetryPolicy::transient_default(),
                          [&]() -> int {
                            ++calls;
                            throw std::logic_error("deterministic bug");
                          }),
               std::logic_error);
  EXPECT_EQ(calls, 1);  // never retried
}

TEST(RetryCall, DisabledPolicyRethrowsTransientImmediately) {
  int calls = 0;
  EXPECT_THROW(retry_call(RetryPolicy{},
                          [&]() -> int {
                            ++calls;
                            throw TransientError("once");
                          }),
               TransientError);
  EXPECT_EQ(calls, 1);
}

TEST(Retrier, DecisionTableMatchesPolicy) {
  RetryPolicy policy;
  policy.max_attempts = 2;
  const Retrier retrier(policy);
  // Transient, attempts remain -> backoff returned (must be thrown and
  // caught so the catch block can rethrow the live exception).
  try {
    throw TransientError("t");
  } catch (const std::exception& error) {
    EXPECT_EQ(retrier.handle_exception(0, error), policy.backoff_after(0));
  }
  // Transient, attempts exhausted -> rethrows.
  try {
    throw TransientError("t");
  } catch (const std::exception& error) {
    EXPECT_THROW((void)retrier.handle_exception(1, error), TransientError);
  }
}

TEST(ParallelMapRetry, RecoversFlakyTasksDeterministically) {
  ThreadPool pool(4);
  // Every index fails transiently on its first call, then succeeds. With
  // retry wired in, the map completes and the gather order is unchanged.
  std::vector<std::atomic<int>> calls(16);
  const std::vector<std::size_t> results = parallel_map(
      pool, std::size_t{16},
      [&](std::size_t i) -> std::size_t {
        if (calls[i].fetch_add(1) == 0) {
          throw TransientError("first touch");
        }
        return i * 10;
      },
      RetryPolicy::transient_default(),
      [](milliseconds) {});  // no real sleeping in tests
  ASSERT_EQ(results.size(), 16u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], i * 10);
    EXPECT_EQ(calls[i].load(), 2);
  }
}

TEST(ParallelMapRetry, NonTransientStillAbortsTheMap) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_map(
                   pool, std::size_t{8},
                   [&](std::size_t i) -> std::size_t {
                     if (i == 3) {
                       throw std::invalid_argument("broken task");
                     }
                     return i;
                   },
                   RetryPolicy::transient_default(), [](milliseconds) {}),
               std::invalid_argument);
}

TEST(ParallelMapRetry, DisabledPolicyMatchesPlainMap) {
  ThreadPool pool(2);
  const auto plain = parallel_map(pool, std::size_t{8},
                                  [](std::size_t i) { return i + 1; });
  const auto wrapped =
      parallel_map(pool, std::size_t{8}, [](std::size_t i) { return i + 1; },
                   RetryPolicy{});
  EXPECT_EQ(plain, wrapped);
}

}  // namespace
}  // namespace iprune::runtime
