#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "runtime/parallel.hpp"

namespace iprune::runtime {
namespace {

TEST(ThreadPool, LaneCountIncludesCaller) {
  ThreadPool one(1);
  EXPECT_EQ(one.lanes(), 1u);
  ThreadPool four(4);
  EXPECT_EQ(four.lanes(), 4u);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (const std::size_t lanes : {1u, 2u, 8u}) {
    ThreadPool pool(lanes);
    constexpr std::size_t kCount = 1000;
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallel_for(kCount, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " lanes " << lanes;
    }
  }
}

TEST(ThreadPool, ZeroCountIsANoop) {
  ThreadPool pool(4);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, MoreTasksThanLanesAndViceVersa) {
  ThreadPool pool(8);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(3, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 3u);  // 0 + 1 + 2
  sum = 0;
  pool.parallel_for(100, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, RethrowsLowestFailingIndex) {
  for (const std::size_t lanes : {1u, 4u}) {
    ThreadPool pool(lanes);
    try {
      pool.parallel_for(64, [&](std::size_t i) {
        if (i == 7 || i == 23) {
          throw std::runtime_error("boom at " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "boom at 7");
    }
  }
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(16);
  pool.parallel_for(4, [&](std::size_t outer) {
    // Nested call must not deadlock; it runs serially on this lane.
    pool.parallel_for(4, [&](std::size_t inner) {
      ++hits[outer * 4 + inner];
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPool, ReusableAcrossManyLoops) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(17, [&](std::size_t) { ++count; });
    ASSERT_EQ(count.load(), 17);
  }
}

TEST(ThreadPool, SharedPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
  EXPECT_GE(ThreadPool::shared().lanes(), 1u);
}

TEST(ThreadPool, ResolvePrefersExplicitPool) {
  ThreadPool pool(2);
  EXPECT_EQ(&ThreadPool::resolve(&pool), &pool);
  EXPECT_EQ(&ThreadPool::resolve(nullptr), &ThreadPool::shared());
}

TEST(ParallelMap, GathersResultsByIndex) {
  for (const std::size_t lanes : {1u, 2u, 8u}) {
    ThreadPool pool(lanes);
    const std::vector<std::size_t> squares =
        parallel_map(pool, 100, [](std::size_t i) { return i * i; });
    ASSERT_EQ(squares.size(), 100u);
    for (std::size_t i = 0; i < squares.size(); ++i) {
      EXPECT_EQ(squares[i], i * i);
    }
  }
}

TEST(ParallelMap, WorksWithMoveOnlyHeavyResults) {
  ThreadPool pool(4);
  const auto rows = parallel_map(pool, 10, [](std::size_t i) {
    return std::vector<int>(i + 1, static_cast<int>(i));
  });
  ASSERT_EQ(rows.size(), 10u);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].size(), i + 1);
  }
}

TEST(DefaultLaneCount, IsAtLeastOne) {
  EXPECT_GE(default_lane_count(), 1u);
  EXPECT_LE(default_lane_count(), 256u);
}

TEST(ParseLaneCount, AcceptsIntegersInRange) {
  std::string warning;
  EXPECT_EQ(parse_lane_count("1", 4, &warning), 1u);
  EXPECT_TRUE(warning.empty());
  EXPECT_EQ(parse_lane_count("16", 4, &warning), 16u);
  EXPECT_TRUE(warning.empty());
  EXPECT_EQ(parse_lane_count("256", 4, &warning), 256u);
  EXPECT_TRUE(warning.empty());
}

TEST(ParseLaneCount, RejectsGarbageWithDiagnosticNamingTheValue) {
  for (const char* bad : {"banana", "0", "257", "4x", "", "-2", "1e3"}) {
    std::string warning;
    EXPECT_EQ(parse_lane_count(bad, 7, &warning), 7u) << bad;
    // The warning must name both the rejected value and the fallback the
    // run actually uses (the silent-fallback bug this replaced).
    EXPECT_NE(warning.find("'" + std::string(bad) + "'"), std::string::npos)
        << warning;
    EXPECT_NE(warning.find("falling back to 7"), std::string::npos)
        << warning;
    EXPECT_NE(warning.find("IPRUNE_THREADS"), std::string::npos) << warning;
  }
}

TEST(ParseLaneCount, NullTextFallsBackSilently) {
  // No env var at all is not a misconfiguration: fallback, no warning.
  std::string warning;
  EXPECT_EQ(parse_lane_count("not-a-number", 3, nullptr), 3u);
  EXPECT_EQ(parse_lane_count(nullptr, 5, &warning), 5u);
  EXPECT_FALSE(warning.empty());  // null text still explains the fallback
}

}  // namespace
}  // namespace iprune::runtime
