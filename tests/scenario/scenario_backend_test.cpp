// The "backend" group field in scenario JSON: canonical-form round-trip
// (defaults omitted), pinned rejection messages for unknown presets, and
// the functional-backend validation constraints shared with the fleet
// spec DSL.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "engine/backend.hpp"
#include "scenario/scenario.hpp"

namespace iprune::scenario {
namespace {

std::string minimal(const std::string& group_extra = "") {
  return "{\"version\": 1, \"name\": \"x\", \"groups\": "
         "[{\"name\": \"g\"" + group_extra + "}]}";
}

void expect_reject(const std::string& text, const std::string& expected) {
  try {
    (void)Scenario::parse(text);
    FAIL() << "expected parse to reject: " << text;
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()), expected) << "input: " << text;
  }
}

TEST(ScenarioBackend, BackendFieldParsesAndRoundTrips) {
  const Scenario sc = Scenario::parse(minimal(", \"backend\": \"reram\""));
  EXPECT_EQ(sc.groups[0].backend, engine::BackendConfig::reram());

  const std::string canonical = sc.describe();
  EXPECT_NE(canonical.find("\"backend\": \"reram\""), std::string::npos);
  EXPECT_EQ(Scenario::parse(canonical), sc);
  EXPECT_EQ(Scenario::parse(canonical).describe(), canonical);
}

TEST(ScenarioBackend, DefaultBackendIsOmittedFromCanonicalForm) {
  const Scenario sc = Scenario::parse(minimal());
  EXPECT_EQ(sc.groups[0].backend, engine::BackendConfig::msp430_fram());
  EXPECT_EQ(sc.describe().find("backend"), std::string::npos);

  // Spelling the default out loud is accepted — and then canonicalized
  // away, like every other default-valued field.
  const Scenario spelled =
      Scenario::parse(minimal(", \"backend\": \"msp430-fram\""));
  EXPECT_EQ(spelled, sc);
  EXPECT_EQ(spelled.describe().find("backend"), std::string::npos);
}

TEST(ScenarioBackend, UnknownBackendMessageIsPinned) {
  expect_reject(minimal(", \"backend\": \"tpu\""),
                "scenario: unknown backend \"tpu\"");
}

TEST(ScenarioBackend, FunctionalConstraintsAreValidated) {
  // Default supply is strong harvest — not allowed for functional.
  expect_reject(minimal(", \"backend\": \"functional\""),
                "scenario: group \"g\" backend=functional requires "
                "supply=continuous");
  expect_reject(minimal(", \"backend\": \"functional\", "
                        "\"supply\": \"continuous\", "
                        "\"schedule\": \"every:50\""),
                "scenario: group \"g\" backend=functional cannot take an "
                "outage schedule");

  // With continuous supply and no schedule it parses cleanly.
  const Scenario sc = Scenario::parse(
      minimal(", \"backend\": \"functional\", \"supply\": \"continuous\""));
  EXPECT_EQ(sc.groups[0].backend, engine::BackendConfig::functional());
}

TEST(ScenarioBackend, ValidateFleetEnforcesFunctionalConstraints) {
  fleet::FleetSpec spec;
  fleet::DeviceGroup group;
  group.name = "g";
  group.backend = engine::BackendConfig::functional();
  group.power = fleet::PowerProfile::weak();
  spec.groups = {group};
  try {
    validate_fleet(spec);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "fleet spec: group 'g' backend=functional requires "
                 "supply=continuous (no power model)");
  }

  group.power = fleet::PowerProfile::continuous();
  group.schedule = fault::OutageSchedule::every_nth(50);
  spec.groups = {group};
  try {
    validate_fleet(spec);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "fleet spec: group 'g' backend=functional cannot take an "
                 "outage schedule");
  }

  group.schedule = {};
  spec.groups = {group};
  validate_fleet(spec);  // must not throw
}

}  // namespace
}  // namespace iprune::scenario
