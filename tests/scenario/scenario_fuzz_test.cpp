// Scenario fuzzer and ddmin shrinker. Two contracts: a seeded campaign
// over the differential oracles is clean (every generated scenario passes
// every auto-derived check — the tier-1 slice of the CI scenario-fuzz
// job), and a deliberately seeded "bug" shrinks to a minimal document of
// at most 8 schema fields that still triggers it after a disk round-trip.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "scenario/fuzz.hpp"
#include "scenario/runner.hpp"

namespace iprune::scenario {
namespace {

TEST(ScenarioFuzz, SeededCampaignIsClean) {
  FuzzConfig config;
  config.seed = 1;
  RunOptions options;
  options.shrink = false;
  for (std::uint64_t i = 0; i < 60; ++i) {
    const Scenario sc = random_scenario(config, i);
    const ScenarioReport report = run_scenario(sc, options);
    ASSERT_TRUE(report.passed())
        << "scenario " << i << " failed:\n"
        << report.to_string() << "\n"
        << sc.describe();
  }
}

TEST(ScenarioFuzz, ShrinkerReachesAMinimalDocument) {
  // A deliberate seeded defect: "any scenario with a torn-write schedule
  // fails". The trigger is one group field, so a correct shrinker must
  // strip everything else — extra groups, scenario overrides, sim lists —
  // and land at a document within the 8-field repro budget.
  const auto still_fails = [](const Scenario& sc) {
    for (const auto& group : sc.groups) {
      if (group.schedule.torn != fault::TornMode::kDropAll) {
        return true;
      }
    }
    return false;
  };

  Scenario failing;
  failing.name = "seeded-bug";
  failing.seed = 99;
  failing.inferences = 2;
  failing.batch = 64;
  failing.telemetry = true;
  failing.sims = {fleet::SimKind::kStepping, fleet::SimKind::kScheduler};
  fleet::DeviceGroup bystander;
  bystander.name = "bystander";
  bystander.count = 3;
  bystander.power = fleet::PowerProfile::parse("solar:0.01:2.0");
  fleet::DeviceGroup trigger;
  trigger.name = "trigger";
  trigger.count = 2;
  trigger.model = fleet::ModelKind::kMultipath;
  trigger.schedule = fault::OutageSchedule::parse("every:50;torn=keep:4");
  trigger.integrity = fleet::IntegrityMode::kOn;
  failing.groups = {bystander, trigger};
  failing.validate();
  ASSERT_TRUE(still_fails(failing));

  const Scenario shrunk = shrink_scenario(failing, still_fails);
  ASSERT_TRUE(still_fails(shrunk));
  ASSERT_NO_THROW(shrunk.validate());
  EXPECT_LE(shrunk.schema_fields(), 8u)
      << "shrunk repro too large:\n" << shrunk.describe();
  EXPECT_EQ(shrunk.groups.size(), 1u);

  // The repro written to disk replays the same minimal failure.
  const Scenario replayed = Scenario::parse(shrunk.describe());
  EXPECT_EQ(replayed, shrunk);
  EXPECT_TRUE(still_fails(replayed));
}

TEST(ScenarioFuzz, ShrinkSurvivesScheduleIndependentFailures) {
  // Regression: the group-field pass used to cache a reference to
  // best.groups[g].schedule; once the schedule=none() mutation was
  // accepted, accept() replaced best and the later torn / fixed-events /
  // max-outages checks read freed memory (ASan-visible). A predicate
  // that ignores the schedule makes every schedule mutation accepted.
  const auto still_fails = [](const Scenario& sc) {
    return !sc.groups.empty() &&
           sc.groups[0].model == fleet::ModelKind::kMultipath;
  };
  Scenario failing;
  failing.name = "sched-independent";
  fleet::DeviceGroup group;
  group.name = "g";
  group.count = 2;
  group.model = fleet::ModelKind::kMultipath;
  group.schedule =
      fault::OutageSchedule::parse("fixed:3,9,27;torn=keep:4;max=2");
  failing.groups = {group};
  failing.validate();
  ASSERT_TRUE(still_fails(failing));

  const Scenario shrunk = shrink_scenario(failing, still_fails);
  EXPECT_TRUE(still_fails(shrunk));
  ASSERT_EQ(shrunk.groups.size(), 1u);
  // The schedule is irrelevant to the failure, so it must shrink away
  // entirely: the repro is the model field alone.
  EXPECT_EQ(shrunk.groups[0].schedule.mode, fault::ScheduleMode::kNone);
  EXPECT_EQ(shrunk.groups[0].schedule.torn, fault::TornMode::kDropAll);
  // name + groups + group name + model: nothing of the schedule remains.
  EXPECT_LE(shrunk.schema_fields(), 4u)
      << "shrunk repro too large:\n" << shrunk.describe();
}

TEST(ScenarioFuzz, ShrinkIsAFixpointOnAlreadyMinimalInput) {
  const auto still_fails = [](const Scenario& sc) {
    return !sc.groups.empty() &&
           sc.groups[0].schedule.mode != fault::ScheduleMode::kNone;
  };
  Scenario minimal;
  minimal.name = "min";
  fleet::DeviceGroup group;
  group.name = "g";
  group.schedule = fault::OutageSchedule::parse("every:50");
  minimal.groups = {group};
  minimal.validate();

  const Scenario shrunk = shrink_scenario(minimal, still_fails);
  EXPECT_EQ(shrunk.schema_fields(), minimal.schema_fields());
  EXPECT_TRUE(still_fails(shrunk));
}

TEST(ScenarioFuzz, ShrinkRespectsTheAttemptBudget) {
  // With a zero budget the shrinker must return the input unchanged —
  // it may never return a candidate the predicate was not consulted on.
  const auto still_fails = [](const Scenario&) { return true; };
  FuzzConfig config;
  config.seed = 3;
  const Scenario sc = random_scenario(config, 0);
  const Scenario shrunk = shrink_scenario(sc, still_fails, 0);
  EXPECT_EQ(shrunk, sc);
}

}  // namespace
}  // namespace iprune::scenario
