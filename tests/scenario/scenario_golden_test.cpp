// Golden scenario library: every document under scenarios/ must parse
// canonically (the file on disk IS its canonical form), pass all of its
// checks, and reproduce a pinned FNV-1a fleet digest. The digests are the
// regression tripwire for the whole stack — supply models, outage
// schedules, integrity layer, and all three sim strategies feed them.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "scenario/runner.hpp"

#ifndef IPRUNE_SCENARIO_DIR
#error "IPRUNE_SCENARIO_DIR must point at the scenarios/ library"
#endif

namespace iprune::scenario {
namespace {

struct Golden {
  const char* file;
  std::uint64_t digest;
};

// Regenerate with: build/src/apps/scenario_run scenarios/<file> | head -1
constexpr Golden kGoldens[] = {
    {"baseline_strong.json", 0x501137a4a4f59d22ull},
    {"diurnal_campus.json", 0xabfd75360271eb88ull},
    {"indoor_shelf.json", 0xa1e9c5e94d59d159ull},
    {"kinetic_wearable.json", 0x5fa2000dae23deedull},
    {"mixed_fleet.json", 0x0d5436245497efd9ull},
    {"noisy_nvm.json", 0x30afe07e97ee1057ull},
    {"outage_storm.json", 0xb68ff82336c05d58ull},
    {"rf_backscatter.json", 0x6323c05b8cd6ff35ull},
    {"solar_farm.json", 0x506fbf77004734eeull},
    {"torn_write_audit.json", 0xd5b4cc3e8b8b73cfull},
};

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  EXPECT_TRUE(file.good()) << "cannot open " << path;
  std::ostringstream out;
  out << file.rdbuf();
  return out.str();
}

class ScenarioGolden : public ::testing::TestWithParam<Golden> {};

TEST_P(ScenarioGolden, FileIsCanonical) {
  const std::string path =
      std::string(IPRUNE_SCENARIO_DIR) + "/" + GetParam().file;
  const std::string text = read_file(path);
  const Scenario sc = Scenario::parse(text);
  EXPECT_EQ(sc.describe(), text)
      << path << " is not in canonical form; rewrite it with "
      << "`scenario_run " << path << " --print`";
}

TEST_P(ScenarioGolden, ChecksPassAndDigestIsPinned) {
  const std::string path =
      std::string(IPRUNE_SCENARIO_DIR) + "/" + GetParam().file;
  const Scenario sc = Scenario::load(path);
  const ScenarioReport report = run_scenario(sc);
  EXPECT_TRUE(report.passed()) << report.to_string();
  EXPECT_EQ(report.digest, GetParam().digest)
      << GetParam().file << ": fleet digest drifted — an intentional "
      << "simulation change must repin this constant";
}

INSTANTIATE_TEST_SUITE_P(
    Library, ScenarioGolden, ::testing::ValuesIn(kGoldens),
    [](const ::testing::TestParamInfo<Golden>& info) {
      std::string name = info.param.file;
      for (char& c : name) {
        if (c == '.' || c == '-') {
          c = '_';
        }
      }
      return name;
    });

}  // namespace
}  // namespace iprune::scenario
