// scenario::Json — the minimal strict JSON layer the scenario schema is
// built on. These tests pin the two properties the schema depends on:
// parse(write(x)) is the identity (numbers are kept as raw literal text,
// so u64 seeds survive), and every parse error names its line and column.

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>

#include "scenario/json.hpp"

namespace iprune::scenario {
namespace {

/// Asserts parse(text) throws with exactly "scenario json: <why> at line
/// <line> column <column>".
void expect_parse_error(const std::string& text, const std::string& why,
                        int line, int column) {
  const std::string expected = "scenario json: " + why + " at line " +
                               std::to_string(line) + " column " +
                               std::to_string(column);
  try {
    (void)Json::parse(text);
    FAIL() << "expected parse of <" << text << "> to throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()), expected) << "input: " << text;
  } catch (...) {
    FAIL() << "expected std::invalid_argument for <" << text << ">";
  }
}

TEST(ScenarioJson, ScalarRoundTrip) {
  EXPECT_EQ(Json::parse("null"), Json::null());
  EXPECT_EQ(Json::parse("true"), Json::boolean(true));
  EXPECT_EQ(Json::parse("false"), Json::boolean(false));
  EXPECT_EQ(Json::parse("42").as_u64(), 42u);
  EXPECT_EQ(Json::parse("\"hi\\n\"").as_string(), "hi\n");
}

TEST(ScenarioJson, NumbersKeepTheirLiteralText) {
  // The writer re-emits the exact token the parser saw, so a u64 seed
  // that a double cannot represent survives a round trip untouched.
  const Json doc = Json::parse("18446744073709551615");
  EXPECT_EQ(doc.literal(), "18446744073709551615");
  EXPECT_EQ(doc.as_u64(), 18446744073709551615ull);
}

TEST(ScenarioJson, U64RejectsNonIntegerLiterals) {
  EXPECT_THROW((void)Json::parse("-3").as_u64(), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("1.5").as_u64(), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("1e3").as_u64(), std::invalid_argument);
  // One past the u64 maximum overflows.
  EXPECT_THROW((void)Json::parse("18446744073709551616").as_u64(),
               std::invalid_argument);
}

TEST(ScenarioJson, NumberRejectsNonFiniteDoubles) {
  // %.17g would spell these "inf"/"nan" — tokens the parser (rightly)
  // refuses — so the writer must refuse them first.
  EXPECT_THROW((void)Json::number(std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW((void)Json::number(-std::numeric_limits<double>::infinity()),
               std::invalid_argument);
  EXPECT_THROW((void)Json::number(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
}

TEST(ScenarioJson, ObjectsPreserveInsertionOrder) {
  Json obj = Json::object();
  obj.set("zeta", Json::number(std::uint64_t{1}));
  obj.set("alpha", Json::number(std::uint64_t{2}));
  EXPECT_EQ(obj.write(), "{\n  \"zeta\": 1,\n  \"alpha\": 2\n}\n");
  EXPECT_EQ(Json::parse(obj.write()), obj);
}

TEST(ScenarioJson, ScalarArraysWriteInline) {
  Json arr = Json::array();
  arr.push(Json::number(std::uint64_t{1}));
  arr.push(Json::number(std::uint64_t{2}));
  Json obj = Json::object();
  obj.set("xs", std::move(arr));
  EXPECT_EQ(obj.write(), "{\n  \"xs\": [1, 2]\n}\n");
}

TEST(ScenarioJson, NestedRoundTrip) {
  const std::string text =
      "{\n"
      "  \"name\": \"demo\",\n"
      "  \"groups\": [\n"
      "    {\n"
      "      \"count\": 3\n"
      "    }\n"
      "  ]\n"
      "}\n";
  const Json doc = Json::parse(text);
  EXPECT_EQ(doc.write(), text);
}

TEST(ScenarioJson, ParseErrorsNameLineAndColumn) {
  expect_parse_error("", "unexpected end of input", 1, 1);
  expect_parse_error("{\"a\": }", "unexpected character '}'", 1, 7);
  expect_parse_error("[1, 2", "unterminated array", 1, 6);
  expect_parse_error("{\n  \"a\": 1\n  \"b\": 2\n}",
                     "expected ',' or '}' in object", 3, 4);
  expect_parse_error("nulL", "expected 'null'", 1, 4);
  expect_parse_error("{} {}", "trailing content after document", 1, 4);
}

TEST(ScenarioJson, DuplicateKeysAreRejected) {
  expect_parse_error("{\"a\": 1, \"a\": 2}", "duplicate key \"a\"", 1, 13);
}

TEST(ScenarioJson, TypeErrorsNameTheKind) {
  const Json doc = Json::parse("{\"n\": \"x\"}");
  try {
    (void)doc.get("n")->as_u64();
    FAIL() << "expected as_u64 on a string to throw";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("scenario json: expected"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace iprune::scenario
