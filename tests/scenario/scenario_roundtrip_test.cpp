// Round-trip properties over the fuzzer's generators: for 500 random
// instances per type, parse(describe(x)) == x, and the second describe()
// is byte-identical to the first. This is the property the ddmin shrinker
// and the repro files lean on: a canonical form that survives a
// write/read cycle means a shrunk scenario on disk replays the exact
// in-memory failure.

#include <gtest/gtest.h>

#include <string>

#include "fault/schedule.hpp"
#include "fleet/spec.hpp"
#include "scenario/fuzz.hpp"
#include "util/rng.hpp"

namespace iprune::scenario {
namespace {

constexpr std::size_t kInstances = 500;

TEST(ScenarioRoundTrip, PowerProfiles) {
  util::Rng rng(101);
  for (std::size_t i = 0; i < kInstances; ++i) {
    const fleet::PowerProfile profile = random_power_profile(rng);
    const std::string text = profile.describe();
    const fleet::PowerProfile back = fleet::PowerProfile::parse(text);
    ASSERT_EQ(back, profile) << "instance " << i << ": " << text;
    ASSERT_EQ(back.describe(), text) << "instance " << i;
  }
}

TEST(ScenarioRoundTrip, OutageSchedules) {
  util::Rng rng(102);
  for (std::size_t i = 0; i < kInstances; ++i) {
    const fault::OutageSchedule schedule = random_schedule(rng);
    const std::string text = schedule.describe();
    const fault::OutageSchedule back = fault::OutageSchedule::parse(text);
    ASSERT_EQ(back.describe(), text) << "instance " << i << ": " << text;
    ASSERT_EQ(back.mode, schedule.mode) << "instance " << i;
    ASSERT_EQ(back.torn, schedule.torn) << "instance " << i;
    ASSERT_EQ(back.max_outages, schedule.max_outages) << "instance " << i;
  }
}

TEST(ScenarioRoundTrip, FleetSpecs) {
  util::Rng rng(103);
  FuzzConfig config;
  for (std::size_t i = 0; i < kInstances; ++i) {
    const fleet::FleetSpec spec = random_fleet_spec(rng, config);
    const std::string text = spec.describe();
    const fleet::FleetSpec back = fleet::FleetSpec::parse(text);
    ASSERT_EQ(back, spec) << "instance " << i << ":\n" << text;
    ASSERT_EQ(back.describe(), text) << "instance " << i;
  }
}

TEST(ScenarioRoundTrip, Scenarios) {
  FuzzConfig config;
  config.seed = 104;
  for (std::size_t i = 0; i < kInstances; ++i) {
    const Scenario sc = random_scenario(config, i);
    ASSERT_NO_THROW(sc.validate()) << "instance " << i;
    const std::string text = sc.describe();
    const Scenario back = Scenario::parse(text);
    ASSERT_EQ(back, sc) << "instance " << i << ":\n" << text;
    ASSERT_EQ(back.describe(), text) << "instance " << i;
  }
}

TEST(ScenarioRoundTrip, GeneratedScenariosArePureFunctionsOfSeedAndIndex) {
  FuzzConfig config;
  config.seed = 105;
  for (std::size_t i = 0; i < 32; ++i) {
    ASSERT_EQ(random_scenario(config, i), random_scenario(config, i));
  }
  // Distinct indices produce distinct documents (names differ at least).
  ASSERT_NE(random_scenario(config, 0), random_scenario(config, 1));
}

}  // namespace
}  // namespace iprune::scenario
