// Scenario schema: strict parsing, exact validation diagnostics, the
// auto-derived check list, and the strict FleetSpec helpers that fleet_run
// routes CLI overrides through. Error messages are pinned verbatim — a
// shrunk fuzzer repro is only actionable if its rejection text names the
// offending field the same way every time.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "scenario/scenario.hpp"

namespace iprune::scenario {
namespace {

/// A minimal valid document: one default group.
std::string minimal(const std::string& extra = "",
                    const std::string& group_extra = "") {
  return "{\"version\": 1, \"name\": \"x\"" + extra +
         ", \"groups\": [{\"name\": \"g\"" + group_extra + "}]}";
}

/// Asserts Scenario::parse(text) throws std::invalid_argument with
/// exactly `expected`.
void expect_reject(const std::string& text, const std::string& expected) {
  try {
    (void)Scenario::parse(text);
    FAIL() << "expected parse to reject: " << text;
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()), expected) << "input: " << text;
  } catch (...) {
    FAIL() << "expected std::invalid_argument for: " << text;
  }
}

TEST(ScenarioSchema, MinimalDocumentParses) {
  const Scenario sc = Scenario::parse(minimal());
  EXPECT_EQ(sc.name, "x");
  EXPECT_EQ(sc.seed, 2026u);
  EXPECT_EQ(sc.inferences, 1u);
  EXPECT_EQ(sc.groups.size(), 1u);
  EXPECT_EQ(sc.groups[0].name, "g");
  EXPECT_EQ(sc.groups[0].count, 1u);
  EXPECT_EQ(sc.total_devices(), 1u);
  // Three leaves: version, name, and the group's name.
  EXPECT_EQ(sc.schema_fields(), 3u);
}

TEST(ScenarioSchema, DescribeOmitsDefaultsAndRoundTrips) {
  const Scenario sc = Scenario::parse(minimal());
  const std::string canonical = sc.describe();
  // Default-valued fields never appear in the canonical form.
  EXPECT_EQ(canonical.find("seed"), std::string::npos);
  EXPECT_EQ(canonical.find("inferences"), std::string::npos);
  EXPECT_EQ(canonical.find("count"), std::string::npos);
  EXPECT_EQ(Scenario::parse(canonical), sc);
  EXPECT_EQ(Scenario::parse(canonical).describe(), canonical);
}

TEST(ScenarioSchema, LeafValuesReuseTheTextDsls) {
  const Scenario sc = Scenario::parse(minimal(
      "", ", \"supply\": \"rf:0.01:0.5:0.2\", "
          "\"schedule\": \"every:50;torn=keep:4;max=3\""));
  EXPECT_EQ(sc.groups[0].power.kind, fleet::PowerProfile::Kind::kRf);
  EXPECT_EQ(sc.groups[0].schedule.mode, fault::ScheduleMode::kEveryNth);
  EXPECT_EQ(sc.groups[0].schedule.every_n, 50u);
  EXPECT_EQ(sc.groups[0].schedule.torn, fault::TornMode::kKeep);
  EXPECT_EQ(sc.groups[0].schedule.max_outages, 3u);
}

TEST(ScenarioSchema, RejectsUnknownAndMissingFields) {
  expect_reject("{\"version\": 1, \"name\": \"x\", \"bogus\": 1, "
                "\"groups\": [{\"name\": \"g\"}]}",
                "scenario: unknown field \"bogus\"");
  expect_reject("{\"version\": 1, \"name\": \"x\", \"groups\": "
                "[{\"name\": \"g\", \"turbo\": 1}]}",
                "scenario: unknown group field \"turbo\"");
  expect_reject("{\"name\": \"x\", \"groups\": [{\"name\": \"g\"}]}",
                "scenario: missing required field \"version\"");
  expect_reject("{\"version\": 1, \"groups\": [{\"name\": \"g\"}]}",
                "scenario: missing required field \"name\"");
  expect_reject("{\"version\": 1, \"name\": \"x\"}",
                "scenario: missing required field \"groups\"");
  expect_reject("{\"version\": 1, \"name\": \"x\", \"groups\": "
                "[{\"count\": 2}]}",
                "scenario: group is missing required field \"name\"");
}

TEST(ScenarioSchema, RejectsWrongVersion) {
  expect_reject("{\"version\": 2, \"name\": \"x\", \"groups\": "
                "[{\"name\": \"g\"}]}",
                "scenario: unsupported version 2");
}

TEST(ScenarioSchema, RejectsOutOfRangeValues) {
  expect_reject(minimal(", \"inferences\": 0"),
                "scenario: inferences must be >= 1");
  expect_reject("{\"version\": 1, \"name\": \"bad name\", \"groups\": "
                "[{\"name\": \"g\"}]}",
                "scenario: name must match [A-Za-z0-9_.-]+");
  expect_reject("{\"version\": 1, \"name\": \"x\", \"groups\": []}",
                "scenario: at least one group is required");
  expect_reject(minimal("", ", \"count\": 0"),
                "scenario: group \"g\" count must be >= 1");
  expect_reject(minimal("", ", \"write_ber\": 1.5"),
                "scenario: group \"g\" bit-error rates must be in [0, 1]");
  expect_reject(minimal(", \"sims\": [\"stepping\", \"stepping\"]"),
                "scenario: duplicate sim \"stepping\"");
  expect_reject(minimal(", \"checks\": [\"warp\"]"),
                "scenario: unknown check \"warp\"");
  expect_reject("{\"version\": 1, \"name\": \"x\", \"groups\": "
                "[{\"name\": \"g\"}, {\"name\": \"g\"}]}",
                "scenario: duplicate group name \"g\"");
}

TEST(ScenarioSchema, LeafDslErrorsPropagateVerbatim) {
  // Supply and schedule leaves fail with their own layer's diagnostics,
  // so a scenario error is pasteable into the fleet/fault docs unchanged.
  expect_reject(minimal("", ", \"supply\": \"const:-1\""),
                "fleet spec: supply watts must be finite and > 0");
  expect_reject(minimal("", ", \"schedule\": \"every:0\""),
                "OutageSchedule::parse: period must be >= 1 in \"every:0\"");
}

TEST(ScenarioSchema, EffectiveSimsDefaultsToAllThree) {
  const Scenario sc = Scenario::parse(minimal());
  const auto sims = sc.effective_sims();
  ASSERT_EQ(sims.size(), 3u);
  EXPECT_EQ(sims[0], fleet::SimKind::kStepping);
  EXPECT_EQ(sims[1], fleet::SimKind::kScheduler);
  EXPECT_EQ(sims[2], fleet::SimKind::kBatched);
}

TEST(ScenarioSchema, EffectiveChecksFollowTheFleetComposition) {
  // A clean fleet gets the two digest checks only.
  const Scenario clean = Scenario::parse(minimal());
  const auto base = clean.effective_checks();
  ASSERT_EQ(base.size(), 2u);
  EXPECT_EQ(base[0], Check::kSimDigest);
  EXPECT_EQ(base[1], Check::kLaneDeterminism);

  // Drop-all outages in an intermittent-safe mode add consistency.
  const Scenario outages =
      Scenario::parse(minimal("", ", \"schedule\": \"every:50\""));
  EXPECT_TRUE(forces_clean_outages(outages.groups[0]));
  const auto with_consistency = outages.effective_checks();
  ASSERT_EQ(with_consistency.size(), 3u);
  EXPECT_EQ(with_consistency[2], Check::kConsistency);

  // Torn writes with the layer forced on add integrity.
  const Scenario torn = Scenario::parse(minimal(
      "", ", \"schedule\": \"every:50;torn=keep:4\", "
          "\"integrity\": \"on\""));
  EXPECT_TRUE(injects_protected_corruption(torn.groups[0]));
  const auto with_integrity = torn.effective_checks();
  ASSERT_EQ(with_integrity.size(), 3u);
  EXPECT_EQ(with_integrity[2], Check::kIntegrity);
}

TEST(ScenarioSchema, IntegrityDomainExcludesBitErrorsAndAutoTorn) {
  // Bit-error loads can flip activation bytes the integrity layer does
  // not CRC — silent divergence there is by design, so BER groups stay
  // out of the containment oracle.
  const Scenario ber = Scenario::parse(minimal(
      "", ", \"write_ber\": 1e-05, \"integrity\": \"on\""));
  EXPECT_FALSE(injects_protected_corruption(ber.groups[0]));
  // Torn-only under integrity=auto never arms the layer (auto arms on
  // bit errors alone), so containment cannot be asserted either.
  const Scenario auto_torn = Scenario::parse(
      minimal("", ", \"schedule\": \"every:50;torn=rand\""));
  EXPECT_FALSE(injects_protected_corruption(auto_torn.groups[0]));
}

TEST(ScenarioSchema, ToFleetCarriesEverySetting) {
  Scenario sc = Scenario::parse(minimal(
      ", \"seed\": 7, \"inferences\": 3, \"batch\": 64", ", \"count\": 5"));
  const fleet::FleetSpec spec = sc.to_fleet(fleet::SimKind::kScheduler);
  EXPECT_EQ(spec.seed, 7u);
  EXPECT_EQ(spec.inferences, 3u);
  EXPECT_EQ(spec.batch, 64u);
  EXPECT_EQ(spec.sim, fleet::SimKind::kScheduler);
  ASSERT_EQ(spec.groups.size(), 1u);
  EXPECT_EQ(spec.groups[0].count, 5u);
}

TEST(ScenarioSchema, ValidateFleetRejectsMutatedSpecs) {
  // The exact gap fleet_run had: a spec parses fine, then CLI overrides
  // push a field out of range and nothing re-checks it.
  fleet::FleetSpec spec = fleet::FleetSpec::example(4);
  spec.event_budget = 0;
  try {
    validate_fleet(spec);
    FAIL() << "expected validate_fleet to reject event_budget=0";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()),
              "fleet spec: event_budget must be >= 1");
  }

  fleet::FleetSpec zero = fleet::FleetSpec::example(4);
  ASSERT_FALSE(zero.groups.empty());
  zero.groups[0].count = 0;
  try {
    validate_fleet(zero);
    FAIL() << "expected validate_fleet to reject count=0";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()),
              "fleet spec: group '" + zero.groups[0].name + "' has count=0");
  }
}

TEST(ScenarioSchema, FleetSpecsRejectDuplicateGroupNames) {
  // Scenarios already enforce this; specs must too — gateways aggregate
  // per group name and rescale_strict's dropped-group diagnostic matches
  // by name, so duplicates make both ambiguous.
  fleet::FleetSpec spec;
  spec.groups.push_back(fleet::DeviceGroup{});
  spec.groups.back().name = "twin";
  spec.groups.back().count = 9;
  spec.groups.push_back(fleet::DeviceGroup{});
  spec.groups.back().name = "twin";
  spec.groups.back().count = 1;

  const std::string expected = "fleet spec: duplicate group name 'twin'";
  try {
    validate_fleet(spec);
    FAIL() << "expected validate_fleet to reject duplicate names";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()), expected);
  }
  try {
    (void)rescale_strict(spec, 2);
    FAIL() << "expected rescale_strict to reject duplicate names";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()), expected);
  }
}

TEST(ScenarioSchema, RescaleStrictNamesDroppedGroups) {
  // Largest-remainder rescaling to fewer devices than groups apportions
  // zero devices somewhere; with_devices() silently dropped the group.
  fleet::FleetSpec spec;
  spec.groups.push_back(fleet::DeviceGroup{});
  spec.groups.back().name = "alpha";
  spec.groups.back().count = 99;
  spec.groups.push_back(fleet::DeviceGroup{});
  spec.groups.back().name = "beta";
  spec.groups.back().count = 1;

  const fleet::FleetSpec ok = rescale_strict(spec, 100);
  EXPECT_EQ(ok.groups.size(), 2u);

  try {
    (void)rescale_strict(spec, 2);
    FAIL() << "expected rescale_strict to reject dropping beta";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()),
              "fleet spec: rescaling to 2 devices would drop group(s) "
              "'beta' — raise the device count or remove the group");
  }
}

}  // namespace
}  // namespace iprune::scenario
