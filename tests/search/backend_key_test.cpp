// Backend identity in the evaluation cache key: two backends must NEVER
// share a cache entry. fold_backend() folds the kind, preset token, and
// the entire device cost table, so swapping any of them — even a single
// cost constant inside an otherwise identical preset — changes the key.

#include <gtest/gtest.h>

#include <vector>

#include "engine/backend.hpp"
#include "search/eval_key.hpp"

namespace iprune {
namespace {

using engine::BackendConfig;
using search::EvalKey;
using search::KeyHasher;

EvalKey key_for(const BackendConfig& backend) {
  KeyHasher h;
  h.str("test/backend-key");
  search::fold_backend(h, backend);
  return h.key();
}

TEST(BackendEvalKey, AllPresetsProduceDistinctKeys) {
  const BackendConfig presets[] = {
      BackendConfig::msp430_fram(), BackendConfig::functional(),
      BackendConfig::reram(), BackendConfig::stt_mram()};
  std::vector<EvalKey> keys;
  for (const BackendConfig& preset : presets) {
    keys.push_back(key_for(preset));
  }
  for (std::size_t i = 0; i < keys.size(); ++i) {
    for (std::size_t j = i + 1; j < keys.size(); ++j) {
      EXPECT_NE(keys[i], keys[j])
          << presets[i].describe() << " aliases " << presets[j].describe();
    }
  }
}

// msp430-fram and functional share the identical DeviceConfig table — the
// kind/preset fold alone must keep them apart (they differ in execution
// semantics even when they agree on every constant).
TEST(BackendEvalKey, SameCostTableDifferentKindStillDistinct) {
  EXPECT_NE(key_for(BackendConfig::msp430_fram()),
            key_for(BackendConfig::functional()));
}

TEST(BackendEvalKey, SingleCostConstantChangesTheKey) {
  const BackendConfig base = BackendConfig::msp430_fram();
  BackendConfig tweaked = base;
  tweaked.device.dma.write_us_per_byte = 0.51;
  EXPECT_NE(key_for(base), key_for(tweaked));

  tweaked = base;
  tweaked.device.rails.nvm_write_w = 11.0e-3;
  EXPECT_NE(key_for(base), key_for(tweaked));

  tweaked = base;
  tweaked.device.memory.vm_bytes += 1024;
  EXPECT_NE(key_for(base), key_for(tweaked));

  tweaked = base;
  tweaked.device.reboot_us = 999.0;
  EXPECT_NE(key_for(base), key_for(tweaked));
}

TEST(BackendEvalKey, FoldIsDeterministic) {
  EXPECT_EQ(key_for(BackendConfig::reram()), key_for(BackendConfig::reram()));
}

}  // namespace
}  // namespace iprune
