#include "search/eval_cache.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "device/config.hpp"
#include "nn/dense.hpp"
#include "search/eval_key.hpp"
#include "search/vault.hpp"
#include "util/rng.hpp"

namespace iprune::search {
namespace {

namespace fs = std::filesystem;

EvalKey key_of(std::uint64_t a, std::uint64_t b) { return {a, b}; }

TEST(EvalKey, HexIs32LowercaseDigits) {
  const EvalKey key{0x0123456789abcdefull, 0xfedcba9876543210ull};
  EXPECT_EQ(key.hex(), "0123456789abcdeffedcba9876543210");
  EXPECT_EQ(EvalKey{}.hex(),
            "0000000000000000""0000000000000000");
}

TEST(KeyHasher, SameFoldsSameKey) {
  KeyHasher a, b;
  a.str("stage");
  a.u64(7);
  a.f64(0.25);
  b.str("stage");
  b.u64(7);
  b.f64(0.25);
  EXPECT_EQ(a.key(), b.key());
}

TEST(KeyHasher, FoldOrderMatters) {
  KeyHasher a, b;
  a.u64(1);
  a.u64(2);
  b.u64(2);
  b.u64(1);
  EXPECT_FALSE(a.key() == b.key());
}

TEST(KeyHasher, StringLengthPrefixPreventsConcatenationCollisions) {
  KeyHasher a, b;
  a.str("ab");
  a.str("c");
  b.str("a");
  b.str("bc");
  EXPECT_FALSE(a.key() == b.key());
}

TEST(KeyHasher, BothStreamsAreIndependent) {
  // A single folded byte must move both 64-bit words; otherwise the key
  // is effectively 64-bit.
  KeyHasher a, b;
  a.u8(0);
  b.u8(1);
  const EvalKey ka = a.key();
  const EvalKey kb = b.key();
  EXPECT_NE(ka.hi, kb.hi);
  EXPECT_NE(ka.lo, kb.lo);
}

TEST(FoldGraph, MaskChangeChangesTheKey) {
  util::Rng rng(3);
  auto build = [&]() {
    nn::Graph g({4});
    util::Rng init(3);
    g.add(std::make_unique<nn::Dense>("fc", 4, 3, init), {g.input()});
    return g;
  };
  nn::Graph base = build();
  nn::Graph pruned = build();

  KeyHasher ha, hb;
  fold_graph(ha, base);
  // Prune one weight: mask and weight both flip; the key must move.
  auto params = pruned.params();
  ASSERT_FALSE(params.empty());
  ASSERT_NE(params[0].mask, nullptr);
  params[0].mask->data()[0] = 0.0f;
  params[0].value->data()[0] = 0.0f;
  fold_graph(hb, pruned);
  EXPECT_FALSE(ha.key() == hb.key());
}

TEST(FoldEngineConfig, EveryPricedKnobMoves) {
  const engine::EngineConfig base;
  const device::MemoryConfig memory;
  KeyHasher ha;
  fold_engine_config(ha, base, memory);

  engine::EngineConfig tweaked = base;
  tweaked.block_rows = base.block_rows + 1;
  KeyHasher hb;
  fold_engine_config(hb, tweaked, memory);
  EXPECT_FALSE(ha.key() == hb.key());

  device::MemoryConfig small = memory;
  small.vm_bytes /= 2;
  KeyHasher hc;
  fold_engine_config(hc, base, small);
  EXPECT_FALSE(ha.key() == hc.key());
}

TEST(DatasetFingerprint, SensitiveToSamplesAndLabels) {
  nn::Tensor x({2, 3});
  std::vector<int> y = {0, 1};
  const std::uint64_t base = dataset_fingerprint(x, y);

  nn::Tensor x2 = x;
  x2.data()[0] = 1.0f;
  EXPECT_NE(dataset_fingerprint(x2, y), base);

  std::vector<int> y2 = {1, 1};
  EXPECT_NE(dataset_fingerprint(x, y2), base);
}

TEST(EvalCache, MissThenHitWithStats) {
  EvalCache cache;
  EXPECT_FALSE(cache.lookup(key_of(1, 2)).has_value());
  EvalValue value;
  value.accuracy = 0.75;
  value.aux0 = 9;
  cache.insert(key_of(1, 2), value);
  const auto hit = cache.lookup(key_of(1, 2));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, value);

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(EvalCache, DuplicateInsertKeepsFirstValue) {
  EvalCache cache;
  EvalValue first;
  first.accuracy = 0.5;
  EvalValue second;
  second.accuracy = 0.9;
  cache.insert(key_of(3, 4), first);
  cache.insert(key_of(3, 4), second);
  EXPECT_EQ(cache.stats().inserts, 1u);
  EXPECT_DOUBLE_EQ(cache.lookup(key_of(3, 4))->accuracy, 0.5);
}

TEST(EvalCache, WriteThroughVaultSurvivesReopen) {
  const std::string dir = ::testing::TempDir() + "/eval_cache_reopen";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string path = dir + "/vault.bin";

  {
    CacheVault vault;
    vault.open(path);
    EvalCache cache(&vault);
    EvalValue value;
    value.accuracy = 0.875;
    value.latency_us = 123.5;
    value.checksum = 0xC0FFEE;
    cache.insert(key_of(7, 8), value);
  }

  CacheVault vault;
  const VaultScrub scrub = vault.open(path);
  EXPECT_EQ(scrub.records, 1u);
  EXPECT_EQ(scrub.dropped_bytes, 0u);
  EvalCache cache(&vault);
  const auto hit = cache.lookup(key_of(7, 8));
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->accuracy, 0.875);
  EXPECT_DOUBLE_EQ(hit->latency_us, 123.5);
  EXPECT_EQ(hit->checksum, 0xC0FFEEu);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace iprune::search
