// Resume pins for the crash-resumable search stack (docs/search_cache.md):
// core-level checkpoint/restore bit-identity for the annealer and the
// architecture search, then end-to-end run_search digest equality across
// fresh / resumed / torn-state legs. These are the tier-1 counterparts of
// the CI resume-smoke job, which adds a real SIGKILL.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/arch_search.hpp"
#include "core/ratio_search.hpp"
#include "nn/activation.hpp"
#include "nn/dense.hpp"
#include "search/run.hpp"
#include "search/vault.hpp"
#include "util/rng.hpp"

namespace iprune {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Annealer checkpoint/restore (core::AnnealHooks).

std::vector<core::LayerStats> anneal_stats() {
  std::vector<core::LayerStats> stats;
  const std::size_t weights[] = {1000, 400, 250};
  const std::size_t outputs[] = {120, 400, 80};
  const double sens[] = {0.05, 0.4, 0.15};
  for (std::size_t i = 0; i < 3; ++i) {
    core::LayerStats s;
    s.index = i;
    s.name = "layer" + std::to_string(i);
    s.alive_weights = weights[i];
    s.total_weights = weights[i];
    s.acc_outputs = outputs[i];
    s.nvm_write_bytes = outputs[i] * 2;
    s.sensitivity = sens[i];
    stats.push_back(s);
  }
  return stats;
}

TEST(AnnealResume, EveryCheckpointRestartsBitIdentically) {
  const auto stats = anneal_stats();

  core::AnnealingConfig cfg;
  cfg.iterations = 300;

  std::vector<core::AnnealCheckpoint> checkpoints;
  core::AnnealHooks hooks;
  hooks.checkpoint_stride = 60;
  hooks.on_checkpoint = [&](const core::AnnealCheckpoint& snap) {
    checkpoints.push_back(snap);
  };
  cfg.hooks = &hooks;

  util::Rng full_rng(21);
  const std::vector<double> full =
      core::IPruneAllocator(cfg).allocate(stats, 0.3, full_rng);

  ASSERT_FALSE(checkpoints.empty());
  EXPECT_EQ(checkpoints.back().step, 300u);

  // Restarting from ANY sealed checkpoint must replay the remaining steps
  // draw-for-draw: the final ratios are bit-identical (EXPECT_EQ on
  // doubles, not EXPECT_NEAR).
  for (const core::AnnealCheckpoint& snap : checkpoints) {
    core::AnnealHooks resume_hooks;
    resume_hooks.resume = snap;
    core::AnnealingConfig resume_cfg;
    resume_cfg.iterations = 300;
    resume_cfg.hooks = &resume_hooks;
    util::Rng resumed_rng(9999);  // overwritten by the checkpoint's state
    const std::vector<double> resumed =
        core::IPruneAllocator(resume_cfg).allocate(stats, 0.3, resumed_rng);
    EXPECT_EQ(resumed, full) << "diverged resuming from step " << snap.step;
  }
}

TEST(AnnealResume, HooklessRunMatchesHookedRun) {
  // Journaling must be a pure observer: wiring hooks in cannot move a
  // single RNG draw.
  const auto stats = anneal_stats();
  core::AnnealingConfig plain_cfg;
  plain_cfg.iterations = 300;
  util::Rng a(33);
  const auto plain = core::IPruneAllocator(plain_cfg).allocate(stats, 0.3, a);

  core::AnnealHooks hooks;
  hooks.checkpoint_stride = 7;  // deliberately ragged stride
  hooks.on_checkpoint = [](const core::AnnealCheckpoint&) {};
  core::AnnealingConfig hooked_cfg;
  hooked_cfg.iterations = 300;
  hooked_cfg.hooks = &hooks;
  util::Rng b(33);
  const auto hooked = core::IPruneAllocator(hooked_cfg).allocate(stats, 0.3, b);
  EXPECT_EQ(plain, hooked);
}

// ---------------------------------------------------------------------------
// Architecture-search checkpoint/restore (core::ArchSearchHooks).

struct ArchFixture {
  data::Dataset train, val;

  ArchFixture() {
    util::Rng rng(5);
    auto fill = [&](data::Dataset& d, std::size_t count) {
      d.num_classes = 2;
      d.inputs = nn::Tensor({count, 4});
      d.labels.resize(count);
      for (std::size_t i = 0; i < count; ++i) {
        const bool cls = rng.bernoulli(0.5);
        for (std::size_t k = 0; k < 4; ++k) {
          d.inputs.at(i, k) = static_cast<float>(
              (cls ? 1.0 : -1.0) * (k < 2 ? 1.0 : 0.1) + rng.normal(0, 0.3));
        }
        d.labels[i] = cls ? 1 : 0;
      }
    };
    fill(train, 120);
    fill(val, 60);
  }

  static nn::Graph build(const std::vector<std::size_t>& widths,
                         util::Rng& rng) {
    nn::Graph g({4});
    const auto h = g.add(
        std::make_unique<nn::Dense>("h", 4, widths.at(0), rng), {g.input()});
    const auto r = g.add(std::make_unique<nn::Relu>("r"), {h});
    const auto o = g.add(
        std::make_unique<nn::Dense>("o", widths.at(0), 2, rng), {r});
    g.set_output(o);
    return g;
  }

  core::ArchSearchConfig config() const {
    core::ArchSearchConfig cfg;
    cfg.min_widths = {4};
    cfg.max_widths = {24};
    cfg.evaluations = 8;
    cfg.initial_random = 3;
    cfg.batch_size = 2;
    cfg.proxy_training.epochs = 3;
    return cfg;
  }
};

void expect_same_front(const core::ArchSearchResult& a,
                       const core::ArchSearchResult& b) {
  EXPECT_EQ(a.evaluated, b.evaluated);
  EXPECT_EQ(a.infeasible, b.infeasible);
  ASSERT_EQ(a.pareto_front.size(), b.pareto_front.size());
  for (std::size_t i = 0; i < a.pareto_front.size(); ++i) {
    EXPECT_EQ(a.pareto_front[i].widths, b.pareto_front[i].widths);
    EXPECT_EQ(a.pareto_front[i].accuracy, b.pareto_front[i].accuracy);
    EXPECT_EQ(a.pareto_front[i].acc_outputs, b.pareto_front[i].acc_outputs);
  }
}

TEST(ArchResume, GenerationCheckpointRestartsBitIdentically) {
  ArchFixture f;
  core::ArchSearchConfig cfg = f.config();

  std::vector<core::ArchSearchCheckpoint> checkpoints;
  core::ArchSearchHooks hooks;
  hooks.on_generation = [&](const core::ArchSearchCheckpoint& snap) {
    checkpoints.push_back(snap);
  };
  cfg.hooks = &hooks;
  const core::ArchSearchResult full =
      core::search_architectures(&ArchFixture::build, cfg, f.train, f.val);

  ASSERT_GE(checkpoints.size(), 2u);
  EXPECT_EQ(checkpoints.back().next_evaluation, 8u);

  for (const core::ArchSearchCheckpoint& snap : checkpoints) {
    core::ArchSearchHooks resume_hooks;
    resume_hooks.resume = snap;
    core::ArchSearchConfig resume_cfg = f.config();
    resume_cfg.hooks = &resume_hooks;
    const core::ArchSearchResult resumed = core::search_architectures(
        &ArchFixture::build, resume_cfg, f.train, f.val);
    expect_same_front(full, resumed);
  }
}

TEST(ArchResume, InterceptCanReplayFromRecordedVerdicts) {
  // Candidate evaluation is a pure function of the widths (fixed init
  // seed, no shared state) — the property the content-addressed cache
  // leans on. Record every verdict, then replay the whole search answering
  // from the recording without ever invoking the real evaluator.
  ArchFixture f;

  std::map<std::vector<std::size_t>, core::ArchVerdict> recorded;
  core::ArchSearchHooks record_hooks;
  record_hooks.intercept =
      [&](const std::vector<std::size_t>& widths,
          const std::function<core::ArchVerdict()>& evaluate) {
        const core::ArchVerdict verdict = evaluate();
        recorded[widths] = verdict;
        return verdict;
      };
  core::ArchSearchConfig record_cfg = f.config();
  record_cfg.hooks = &record_hooks;
  const auto full = core::search_architectures(&ArchFixture::build,
                                               record_cfg, f.train, f.val);

  std::size_t replays = 0;
  core::ArchSearchHooks replay_hooks;
  replay_hooks.intercept =
      [&](const std::vector<std::size_t>& widths,
          const std::function<core::ArchVerdict()>&) {
        ++replays;
        const auto hit = recorded.find(widths);
        EXPECT_NE(hit, recorded.end()) << "unrecorded candidate";
        return hit->second;
      };
  core::ArchSearchConfig replay_cfg = f.config();
  replay_cfg.hooks = &replay_hooks;
  const auto replayed = core::search_architectures(&ArchFixture::build,
                                                   replay_cfg, f.train, f.val);
  EXPECT_EQ(replays, full.evaluated + full.infeasible);
  expect_same_front(full, replayed);
}

// ---------------------------------------------------------------------------
// End-to-end run_search resume pins.

struct RunSearchResume : ::testing::Test {
  std::string dir;

  void SetUp() override {
    dir = ::testing::TempDir() + "/run_search_resume";
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  void TearDown() override { fs::remove_all(dir); }

  static search::RunConfig small_config() {
    search::RunConfig cfg;
    cfg.seed = 7;
    cfg.evaluations = 6;
    cfg.initial_random = 2;
    cfg.batch_size = 2;
    cfg.anneal_iterations = 300;
    cfg.anneal_checkpoint_stride = 100;
    return cfg;
  }
};

TEST_F(RunSearchResume, StatefulRunMatchesInMemoryRun) {
  search::RunConfig memory_cfg = small_config();
  const search::RunReport in_memory = search::run_search(memory_cfg);

  search::RunConfig stateful_cfg = small_config();
  stateful_cfg.state_dir = dir + "/state";
  const search::RunReport stateful = search::run_search(stateful_cfg);

  EXPECT_EQ(in_memory.digest, stateful.digest);
  EXPECT_EQ(in_memory.sensitivities, stateful.sensitivities);
  EXPECT_EQ(in_memory.ratios, stateful.ratios);
}

TEST_F(RunSearchResume, ResumeAfterCompletionIsFullyCached) {
  search::RunConfig cfg = small_config();
  cfg.state_dir = dir + "/state";
  const search::RunReport fresh = search::run_search(cfg);
  EXPECT_FALSE(fresh.resumed_anneal);
  EXPECT_FALSE(fresh.resumed_arch);
  EXPECT_GT(fresh.cache.misses, 0u);

  cfg.resume = true;
  const search::RunReport resumed = search::run_search(cfg);
  EXPECT_EQ(resumed.digest, fresh.digest);
  EXPECT_EQ(resumed.sensitivities, fresh.sensitivities);
  EXPECT_EQ(resumed.ratios, fresh.ratios);
  EXPECT_TRUE(resumed.resumed_anneal);
  EXPECT_TRUE(resumed.resumed_arch);
  // Every evaluation the fresh leg performed answers from the vault.
  EXPECT_EQ(resumed.vault_records, fresh.cache.misses);
  EXPECT_EQ(resumed.cache.misses, 0u);
  EXPECT_DOUBLE_EQ(resumed.cache.hit_rate(), 1.0);
}

TEST_F(RunSearchResume, TornStateStillConvergesToTheSameDigest) {
  search::RunConfig cfg = small_config();
  cfg.state_dir = dir + "/state";
  const search::RunReport fresh = search::run_search(cfg);

  // Forge a crash mid-arch-search: tear the vault mid-record (the scrub
  // must drop the torn tail) and destroy the arch journal entirely (the
  // replay path must still reach the same trajectory from the cache).
  const std::string vault_path = cfg.state_dir + "/eval_cache.bin";
  {
    std::ifstream in(vault_path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string bytes = buf.str();
    ASSERT_GT(bytes.size(), 2 * search::CacheVault::kRecordBytes);
    bytes.resize(bytes.size() - 3 * search::CacheVault::kRecordBytes / 2);
    std::ofstream out(vault_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  fs::remove(cfg.state_dir + "/arch.a");
  fs::remove(cfg.state_dir + "/arch.b");

  cfg.resume = true;
  const search::RunReport resumed = search::run_search(cfg);
  EXPECT_EQ(resumed.digest, fresh.digest);
  EXPECT_TRUE(resumed.resumed_anneal);
  EXPECT_FALSE(resumed.resumed_arch);  // journal gone -> replay from zero
  EXPECT_GT(resumed.cache.hits, 0u);   // the salvaged prefix still answers
  EXPECT_GT(resumed.cache.misses, 0u);  // the torn records re-evaluate
}

TEST_F(RunSearchResume, MismatchedJournalsAreIgnored) {
  search::RunConfig cfg = small_config();
  cfg.state_dir = dir + "/state";
  (void)search::run_search(cfg);

  // Same state dir, different run configuration: journals and cached keys
  // must not leak across configurations.
  search::RunConfig other = small_config();
  other.seed = 8;
  other.state_dir = cfg.state_dir;
  other.resume = true;
  const search::RunReport crossed = search::run_search(other);
  EXPECT_FALSE(crossed.resumed_anneal);
  EXPECT_FALSE(crossed.resumed_arch);

  search::RunConfig clean = small_config();
  clean.seed = 8;
  const search::RunReport reference = search::run_search(clean);
  EXPECT_EQ(crossed.digest, reference.digest);
  // No cross-configuration hits: the stale seed-7 vault answers nothing,
  // so the hit/miss pattern matches a run with no prior state at all
  // (intra-run duplicate candidates may still hit — in both runs equally).
  EXPECT_EQ(crossed.cache.hits, reference.cache.hits);
  EXPECT_EQ(crossed.cache.misses, reference.cache.misses);
}

}  // namespace
}  // namespace iprune
