#include "search/vault.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace iprune::search {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void spill(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

EvalValue value_of(double accuracy, std::uint64_t aux) {
  EvalValue value;
  value.accuracy = accuracy;
  value.aux0 = aux;
  return value;
}

struct VaultTest : ::testing::Test {
  std::string dir;

  void SetUp() override {
    dir = ::testing::TempDir() + "/vault_test";
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  void TearDown() override { fs::remove_all(dir); }

  std::string vault_path() const { return dir + "/cache.vault"; }

  /// Write `count` sealed records and close the vault.
  void seed_vault(std::size_t count) {
    CacheVault vault;
    vault.open(vault_path());
    for (std::size_t i = 0; i < count; ++i) {
      vault.append({i + 1, i + 100}, value_of(0.5 + 0.01 * double(i), i));
    }
  }
};

TEST_F(VaultTest, FreshFileOpensEmptyAndWritesHeader) {
  CacheVault vault;
  const VaultScrub scrub = vault.open(vault_path());
  EXPECT_EQ(scrub.records, 0u);
  EXPECT_EQ(scrub.dropped_bytes, 0u);
  EXPECT_TRUE(scrub.rewrote_header);
  EXPECT_TRUE(vault.is_open());
  EXPECT_TRUE(fs::exists(vault_path()));
}

TEST_F(VaultTest, AppendedRecordsRoundTrip) {
  seed_vault(5);
  CacheVault vault;
  const VaultScrub scrub = vault.open(vault_path());
  EXPECT_EQ(scrub.records, 5u);
  EXPECT_EQ(scrub.dropped_bytes, 0u);
  EXPECT_FALSE(scrub.rewrote_header);
  ASSERT_EQ(vault.records().size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(vault.records()[i].key, (EvalKey{i + 1, i + 100}));
    EXPECT_DOUBLE_EQ(vault.records()[i].value.accuracy, 0.5 + 0.01 * double(i));
    EXPECT_EQ(vault.records()[i].value.aux0, i);
  }
}

TEST_F(VaultTest, TruncatedTailRecordIsScrubbedCleanly) {
  seed_vault(4);
  // Simulate a crash mid-append: chop the final record in half.
  std::string bytes = slurp(vault_path());
  const std::size_t torn = CacheVault::kRecordBytes / 2;
  bytes.resize(bytes.size() - torn);
  spill(vault_path(), bytes);

  CacheVault vault;
  const VaultScrub scrub = vault.open(vault_path());
  EXPECT_EQ(scrub.records, 3u);
  EXPECT_EQ(scrub.dropped_bytes, CacheVault::kRecordBytes - torn);
  // The file itself was rewritten to the valid prefix: a second open sees
  // a clean log and appends land after record 3.
  vault.append({99, 99}, value_of(0.9, 99));
  vault.close();

  CacheVault reopened;
  const VaultScrub rescrub = reopened.open(vault_path());
  EXPECT_EQ(rescrub.records, 4u);
  EXPECT_EQ(rescrub.dropped_bytes, 0u);
  EXPECT_EQ(reopened.records().back().key, (EvalKey{99, 99}));
}

TEST_F(VaultTest, BitFlippedRecordTruncatesFromThatRecordOn) {
  seed_vault(6);
  std::string bytes = slurp(vault_path());
  // Flip one payload bit inside record index 2 (0-based): CRC must catch it
  // and the scrub must drop records 2..5, keeping 0..1.
  const std::size_t header = bytes.size() - 6 * CacheVault::kRecordBytes;
  const std::size_t victim = header + 2 * CacheVault::kRecordBytes + 10;
  bytes[victim] = static_cast<char>(bytes[victim] ^ 0x40);
  spill(vault_path(), bytes);

  CacheVault vault;
  const VaultScrub scrub = vault.open(vault_path());
  EXPECT_EQ(scrub.records, 2u);
  EXPECT_EQ(scrub.dropped_bytes, 4 * CacheVault::kRecordBytes);
  ASSERT_EQ(vault.records().size(), 2u);
  EXPECT_EQ(vault.records()[1].key, (EvalKey{2, 101}));
}

TEST_F(VaultTest, GarbageHeaderIsRecreatedEmpty) {
  spill(vault_path(), "definitely not a vault file, but long enough to scan");
  CacheVault vault;
  const VaultScrub scrub = vault.open(vault_path());
  EXPECT_EQ(scrub.records, 0u);
  EXPECT_TRUE(scrub.rewrote_header);
  // Usable immediately after recovery.
  vault.append({1, 2}, value_of(0.7, 0));
  vault.close();
  CacheVault reopened;
  EXPECT_EQ(reopened.open(vault_path()).records, 1u);
}

TEST_F(VaultTest, CorruptionNeverThrows) {
  // A pile of hostile inputs — every one must scrub, not throw.
  const std::vector<std::string> hostile = {
      "",                      // empty file
      "I",                     // shorter than the magic
      std::string(1, '\0'),    // single NUL
      std::string(4096, 'x'),  // big garbage blob
  };
  for (std::size_t i = 0; i < hostile.size(); ++i) {
    const std::string path = dir + "/hostile" + std::to_string(i);
    spill(path, hostile[i]);
    CacheVault vault;
    EXPECT_NO_THROW((void)vault.open(path)) << "input " << i;
    EXPECT_TRUE(vault.is_open()) << "input " << i;
  }
}

TEST_F(VaultTest, SnapshotSlotsRoundTripAndAlternate) {
  SnapshotSlots slots(dir + "/journal");
  const std::vector<std::uint8_t> first = {1, 2, 3};
  const std::vector<std::uint8_t> second = {9, 8, 7, 6};
  slots.store(0, first);
  slots.store(1, second);
  EXPECT_TRUE(fs::exists(slots.slot_path(0)));
  EXPECT_TRUE(fs::exists(slots.slot_path(1)));

  const auto snapshot = slots.load();
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->seq, 1u);
  EXPECT_EQ(snapshot->payload, second);
}

TEST_F(VaultTest, StaleSlotSurvivesCorruptionOfTheNewerOne) {
  SnapshotSlots slots(dir + "/journal");
  const std::vector<std::uint8_t> old_payload = {4, 4, 4};
  const std::vector<std::uint8_t> new_payload = {5, 5, 5, 5};
  slots.store(6, old_payload);  // slot 0
  slots.store(7, new_payload);  // slot 1

  // Corrupt the newer slot as a torn write would: flip a payload byte.
  std::string bytes = slurp(slots.slot_path(1));
  bytes[bytes.size() / 2] =
      static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  spill(slots.slot_path(1), bytes);

  const auto snapshot = slots.load();
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(snapshot->seq, 6u);  // fell back to the stale-but-sealed slot
  EXPECT_EQ(snapshot->payload, old_payload);
}

TEST_F(VaultTest, BothSlotsCorruptMeansFreshStart) {
  SnapshotSlots slots(dir + "/journal");
  slots.store(0, {1});
  slots.store(1, {2});
  spill(slots.slot_path(0), "junk");
  spill(slots.slot_path(1), "more junk");
  EXPECT_FALSE(slots.load().has_value());
}

TEST_F(VaultTest, MissingSlotsLoadAsNullopt) {
  SnapshotSlots slots(dir + "/never_written");
  EXPECT_FALSE(slots.load().has_value());
}

TEST_F(VaultTest, TruncatedSnapshotIsRejected) {
  SnapshotSlots slots(dir + "/journal");
  const std::vector<std::uint8_t> payload(100, 0xAB);
  slots.store(2, payload);
  std::string bytes = slurp(slots.slot_path(0));
  bytes.resize(bytes.size() / 2);
  spill(slots.slot_path(0), bytes);
  EXPECT_FALSE(slots.load().has_value());
}

}  // namespace
}  // namespace iprune::search
