// sim::EventQueue: deterministic ordering (time, then FIFO insertion for
// ties) and error behaviour. The fleet determinism contract leans on pop
// order being a pure function of push order.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "sim/event_queue.hpp"

namespace iprune::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  queue.push({30.0, EventKind::kSupplySegmentEnd, 3});
  queue.push({10.0, EventKind::kQuietWindowEnd, 1});
  queue.push({20.0, EventKind::kCommitBoundary, 2});

  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.peek().payload, 1u);
  EXPECT_EQ(queue.pop().t_us, 10.0);
  EXPECT_EQ(queue.pop().t_us, 20.0);
  EXPECT_EQ(queue.pop().t_us, 30.0);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, EqualTimesPopFifo) {
  EventQueue queue;
  for (std::uint64_t i = 0; i < 64; ++i) {
    queue.push({5.0, EventKind::kTelemetryInstant, i});
  }
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(queue.pop().payload, i);
  }
}

TEST(EventQueue, InterleavedPushPopKeepsOrder) {
  EventQueue queue;
  queue.push({2.0, EventKind::kSupplySegmentEnd, 0});
  queue.push({1.0, EventKind::kSupplySegmentEnd, 1});
  EXPECT_EQ(queue.pop().payload, 1u);
  queue.push({1.5, EventKind::kSupplySegmentEnd, 2});
  queue.push({2.0, EventKind::kSupplySegmentEnd, 3});  // ties with payload 0
  EXPECT_EQ(queue.pop().payload, 2u);
  EXPECT_EQ(queue.pop().payload, 0u);  // pushed before payload 3
  EXPECT_EQ(queue.pop().payload, 3u);
}

TEST(EventQueue, InfinityOrdersAfterFiniteTimes) {
  EventQueue queue;
  queue.push({std::numeric_limits<double>::infinity(),
              EventKind::kQuietWindowEnd, 7});
  queue.push({1e12, EventKind::kSupplySegmentEnd, 8});
  EXPECT_EQ(queue.pop().payload, 8u);
  EXPECT_EQ(queue.pop().payload, 7u);
}

TEST(EventQueue, RejectsNanAndThrowsOnEmpty) {
  EventQueue queue;
  EXPECT_THROW(queue.push({std::nan(""), EventKind::kCommitBoundary, 0}),
               std::invalid_argument);
  EXPECT_THROW((void)queue.peek(), std::logic_error);
  EXPECT_THROW(queue.pop(), std::logic_error);
}

TEST(EventQueue, ClearResetsSequenceNumbering) {
  EventQueue queue;
  queue.push({1.0, EventKind::kSupplySegmentEnd, 0});
  queue.clear();
  EXPECT_TRUE(queue.empty());
  // After clear, ties again resolve in fresh insertion order.
  queue.push({4.0, EventKind::kSupplySegmentEnd, 10});
  queue.push({4.0, EventKind::kSupplySegmentEnd, 11});
  EXPECT_EQ(queue.pop().payload, 10u);
  EXPECT_EQ(queue.pop().payload, 11u);
}

TEST(EventQueue, KindNamesAreStable) {
  EXPECT_STREQ(event_kind_name(EventKind::kSupplySegmentEnd),
               "supply_segment_end");
  EXPECT_STREQ(event_kind_name(EventKind::kQuietWindowEnd),
               "quiet_window_end");
  EXPECT_STREQ(event_kind_name(EventKind::kCommitBoundary),
               "commit_boundary");
  EXPECT_STREQ(event_kind_name(EventKind::kTelemetryInstant),
               "telemetry_instant");
}

}  // namespace
}  // namespace iprune::sim
