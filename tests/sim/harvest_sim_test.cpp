// Harvest models under all three simulation strategies. The scheduler
// charges through segment() windows and the batched sim steps cohorts in
// lockstep; both must reproduce the stepping oracle's FNV-1a fleet digest
// exactly for every analytic supply — this is the end-to-end form of the
// segment()/power_w() bit-exactness contract.

#include <gtest/gtest.h>

#include <string>

#include "fault/checker.hpp"
#include "fleet/orchestrator.hpp"
#include "scenario/scenario.hpp"

namespace iprune::fleet {
namespace {

std::uint64_t digest_under(const scenario::Scenario& sc, SimKind sim) {
  const FleetOrchestrator orchestrator(sc.to_fleet(sim));
  const FleetResult result = orchestrator.run();
  EXPECT_EQ(result.total.failed, 0u);
  return result.checksum;
}

/// One two-device group on `supply`, compared across sim kinds.
void expect_sims_agree(const std::string& supply, const std::string& mode) {
  scenario::Scenario sc;
  sc.name = "harvest-sim";
  sc.seed = 7;
  fleet::DeviceGroup group;
  group.name = "g";
  group.count = 2;
  group.mode = fault::parse_preservation_mode(mode);
  group.power = PowerProfile::parse(supply);
  sc.groups = {group};
  sc.validate();

  const std::uint64_t stepping = digest_under(sc, SimKind::kStepping);
  const std::uint64_t scheduler = digest_under(sc, SimKind::kScheduler);
  const std::uint64_t batched = digest_under(sc, SimKind::kBatched);
  EXPECT_EQ(scheduler, stepping) << supply << " mode=" << mode;
  EXPECT_EQ(batched, stepping) << supply << " mode=" << mode;
}

TEST(HarvestSim, RfAgreesAcrossSimKinds) {
  expect_sims_agree("rf:0.015:0.02:0.6", "immediate");
  expect_sims_agree("rf:0.02:0.05:0.4", "task");
}

TEST(HarvestSim, KineticAgreesAcrossSimKinds) {
  expect_sims_agree("kinetic:0.02:0.05:4:0.8", "immediate");
  expect_sims_agree("kinetic:0.03:0.08:6:0.6", "accumulate");
}

TEST(HarvestSim, IndoorSolarAgreesAcrossSimKinds) {
  expect_sims_agree("indoor:0.008:0.002:4.0:0.7", "immediate");
  expect_sims_agree("indoor:0.012:0.001:2.0:0.5", "task");
}

TEST(HarvestSim, DiurnalAgreesAcrossSimKinds) {
  expect_sims_agree("diurnal:0.016:8.0:0.5", "immediate");
  expect_sims_agree("diurnal:0.02:4.0:0.8", "task");
}

TEST(HarvestSim, SolarPresetAgreesAcrossSimKinds) {
  expect_sims_agree("solar:0.012:2.0", "immediate");
}

}  // namespace
}  // namespace iprune::fleet
