// Differential oracle for the discrete-event simulation mode: the same
// device stack run in power::SimMode::kScheduler must be bit-identical to
// the stepping reference — logits, simulated clock, energy ledger, device
// stats, fault-injection ordinals, and telemetry registries — across
// clean, outage-injected, corruption-armed, torn-write, solar-harvest,
// and watchdog-abort runs. Any divergence means the scheduler fast path
// skipped a decision point it was not entitled to.

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "device/config.hpp"
#include "device/corruption.hpp"
#include "device/msp430.hpp"
#include "engine/engine.hpp"
#include "fault/injector.hpp"
#include "fault/testbed.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sink.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace iprune::sim {
namespace {

using SupplyFactory = std::function<std::unique_ptr<power::PowerSupply>()>;

struct RunConfig {
  std::uint64_t seed = 1;
  bool multipath = false;
  engine::PreservationMode mode = engine::PreservationMode::kImmediate;
  SupplyFactory supply;
  fault::OutageSchedule schedule;  // kNone = organic outages only
  double write_ber = 0.0;
  double read_ber = 0.0;
  std::size_t inferences = 2;
  bool telemetry = false;
  std::uint64_t event_budget = fault::FaultInjector::kNoBudget;
};

struct RunOutcome {
  std::size_t inferences_done = 0;
  std::uint64_t logits_checksum = 0;
  std::vector<float> last_logits;
  std::string error;  // non-empty when the run aborted

  double clock_us = 0.0;
  std::uint64_t vm_epoch = 0;
  device::DeviceStats device_stats;
  power::PowerStats power_stats;

  std::uint64_t events = 0;
  std::uint64_t point_events[static_cast<std::size_t>(
      power::FaultPoint::kPointCount)] = {};
  std::uint64_t injected = 0;
  std::vector<std::uint64_t> outage_ordinals;
  telemetry::MetricsRegistry registry;
};

RunOutcome run_stack(const RunConfig& cfg, power::SimMode sim_mode) {
  util::Rng rng(cfg.seed);
  nn::Graph graph = cfg.multipath ? fault::make_multipath_graph(rng)
                                  : fault::make_tiny_graph(rng);
  const nn::Tensor calibration = fault::make_batch(rng, graph, 8);
  const nn::Tensor samples = fault::make_batch(rng, graph, cfg.inferences);

  device::Msp430Device device(device::DeviceConfig::msp430fr5994(),
                              cfg.supply());
  // Mode is set before deployment: the deployment's NVM writes are
  // chargeable events too, and must fast-forward identically.
  device.set_sim_mode(sim_mode);

  engine::EngineConfig config;
  config.mode = cfg.mode;
  const bool corrupted = cfg.write_ber > 0.0 || cfg.read_ber > 0.0;
  if (corrupted) {
    config.integrity.protect_progress = true;
    config.integrity.seal_regions = true;
    config.integrity.scrub_on_boot = true;
  }
  engine::DeployedModel model(graph, config, device, calibration);

  std::unique_ptr<device::CorruptionModel> corruption;
  if (corrupted) {
    device::CorruptionConfig cc;
    cc.seed = cfg.seed ^ 0x9e3779b97f4a7c15ull;
    cc.write_ber = cfg.write_ber;
    cc.read_ber = cfg.read_ber;
    corruption = std::make_unique<device::CorruptionModel>(cc);
    device.nvm().set_corruption(corruption.get());
  }

  fault::FaultInjector injector(cfg.schedule);
  injector.set_event_budget(cfg.event_budget);
  device.set_fault_hook(&injector);

  telemetry::RegistrySink sink;
  if (cfg.telemetry) {
    device.set_trace_sink(&sink);
  }

  engine::IntermittentEngine engine(model, device);

  RunOutcome out;
  try {
    for (std::size_t i = 0; i < cfg.inferences; ++i) {
      engine::InferenceResult inference =
          engine.run(fault::slice_sample(samples, i));
      if (!inference.stats.completed) {
        out.error = "restart budget exceeded";
        break;
      }
      util::Fnv1a digest;
      digest.fold_u64(out.logits_checksum);
      digest.fold_f32(inference.logits.data(), inference.logits.size());
      out.logits_checksum = digest.value();
      out.last_logits = std::move(inference.logits);
      ++out.inferences_done;
    }
  } catch (const std::exception& e) {
    out.error = e.what();
  }

  // Settle skipped hook ordinals before reading the injector's counters
  // (a no-op in stepping mode).
  device.sync_fault_events();

  out.clock_us = device.now_us();
  out.vm_epoch = device.vm_epoch();
  out.device_stats = device.stats();
  out.power_stats = device.power().stats();
  out.events = injector.total_events();
  for (std::size_t p = 0;
       p < static_cast<std::size_t>(power::FaultPoint::kPointCount); ++p) {
    out.point_events[p] =
        injector.events_at(static_cast<power::FaultPoint>(p));
  }
  out.injected = injector.injected();
  out.outage_ordinals = injector.outage_events();
  device.set_fault_hook(nullptr);
  if (cfg.telemetry) {
    device.set_trace_sink(nullptr);
    out.registry = sink.take_registry();
  }
  return out;
}

/// Every comparison below is exact — EXPECT_EQ on doubles is deliberate:
/// the scheduler replays the oracle's arithmetic, not an approximation.
void expect_identical(const RunOutcome& oracle, const RunOutcome& sched) {
  EXPECT_EQ(sched.error, oracle.error);
  EXPECT_EQ(sched.inferences_done, oracle.inferences_done);
  EXPECT_EQ(sched.logits_checksum, oracle.logits_checksum);
  ASSERT_EQ(sched.last_logits.size(), oracle.last_logits.size());
  for (std::size_t i = 0; i < oracle.last_logits.size(); ++i) {
    EXPECT_EQ(sched.last_logits[i], oracle.last_logits[i]) << "logit " << i;
  }

  EXPECT_EQ(sched.clock_us, oracle.clock_us);
  EXPECT_EQ(sched.vm_epoch, oracle.vm_epoch);

  const device::DeviceStats& od = oracle.device_stats;
  const device::DeviceStats& sd = sched.device_stats;
  EXPECT_EQ(sd.on_time_us, od.on_time_us);
  EXPECT_EQ(sd.off_time_us, od.off_time_us);
  EXPECT_EQ(sd.energy_j, od.energy_j);
  EXPECT_EQ(sd.power_failures, od.power_failures);
  EXPECT_EQ(sd.nvm_bytes_read, od.nvm_bytes_read);
  EXPECT_EQ(sd.nvm_bytes_written, od.nvm_bytes_written);
  EXPECT_EQ(sd.dma_commands, od.dma_commands);
  EXPECT_EQ(sd.lea_invocations, od.lea_invocations);
  EXPECT_EQ(sd.macs, od.macs);
  for (std::size_t t = 0;
       t < static_cast<std::size_t>(device::CostTag::kTagCount); ++t) {
    EXPECT_EQ(sd.tag_time_us[t], od.tag_time_us[t]) << "tag " << t;
  }

  const power::PowerStats& op = oracle.power_stats;
  const power::PowerStats& sp = sched.power_stats;
  EXPECT_EQ(sp.power_failures, op.power_failures);
  EXPECT_EQ(sp.injected_failures, op.injected_failures);
  EXPECT_EQ(sp.harvested_j, op.harvested_j);
  EXPECT_EQ(sp.consumed_j, op.consumed_j);
  EXPECT_EQ(sp.wasted_j, op.wasted_j);
  EXPECT_EQ(sp.off_time_s, op.off_time_s);

  EXPECT_EQ(sched.events, oracle.events);
  for (std::size_t p = 0;
       p < static_cast<std::size_t>(power::FaultPoint::kPointCount); ++p) {
    EXPECT_EQ(sched.point_events[p], oracle.point_events[p])
        << power::fault_point_name(static_cast<power::FaultPoint>(p));
  }
  EXPECT_EQ(sched.injected, oracle.injected);
  EXPECT_EQ(sched.outage_ordinals, oracle.outage_ordinals);

  EXPECT_EQ(sched.registry.events_seen(), oracle.registry.events_seen());
  for (std::size_t c = 0; c < telemetry::kEventClassCount; ++c) {
    const auto cls = static_cast<telemetry::EventClass>(c);
    EXPECT_EQ(sched.registry.for_class(cls).events,
              oracle.registry.for_class(cls).events);
    EXPECT_EQ(sched.registry.for_class(cls).energy_j,
              oracle.registry.for_class(cls).energy_j);
    EXPECT_EQ(sched.registry.for_class(cls).bytes,
              oracle.registry.for_class(cls).bytes);
    EXPECT_EQ(sched.registry.for_class(cls).macs,
              oracle.registry.for_class(cls).macs);
  }
}

void run_differential(const RunConfig& cfg) {
  const RunOutcome oracle = run_stack(cfg, power::SimMode::kStepping);
  const RunOutcome sched = run_stack(cfg, power::SimMode::kScheduler);
  expect_identical(oracle, sched);
}

TEST(SchedulerDifferential, CleanContinuousSupply) {
  RunConfig cfg;
  cfg.seed = 11;
  cfg.supply = power::SupplyPresets::continuous;
  cfg.inferences = 3;
  run_differential(cfg);
}

TEST(SchedulerDifferential, OrganicBrownoutsOnStarvedSupply) {
  RunConfig cfg;
  cfg.seed = 22;
  cfg.mode = engine::PreservationMode::kTaskAtomic;
  // 10 uW against a ~104 uJ buffer: recharge-dominated, many organic
  // brown-outs whose ordinals and timing must replay exactly.
  cfg.supply = [] {
    return std::make_unique<power::ConstantSupply>(1e-5);
  };
  cfg.inferences = 4;
  run_differential(cfg);
}

TEST(SchedulerDifferential, FixedScheduleWithTornWrites) {
  RunConfig cfg;
  cfg.seed = 33;
  cfg.supply = power::SupplyPresets::strong;
  cfg.schedule =
      fault::OutageSchedule::at_events({40, 41, 500}).with_torn_keep(6);
  run_differential(cfg);
}

TEST(SchedulerDifferential, EveryNthScheduleTornRandom) {
  RunConfig cfg;
  cfg.seed = 44;
  cfg.mode = engine::PreservationMode::kTaskAtomic;
  cfg.supply = power::SupplyPresets::strong;
  // Random tears draw from the schedule RNG *after* each injection; the
  // scheduler must keep that stream aligned across skipped windows.
  cfg.schedule = fault::OutageSchedule::every_nth(300).with_torn_random();
  run_differential(cfg);
}

TEST(SchedulerDifferential, AtWriteSchedule) {
  RunConfig cfg;
  cfg.seed = 55;
  cfg.supply = power::SupplyPresets::strong;
  cfg.schedule = fault::OutageSchedule::at_write(25);
  run_differential(cfg);
}

TEST(SchedulerDifferential, CorruptionArmedIntegrityLayer) {
  RunConfig cfg;
  cfg.seed = 66;
  cfg.mode = engine::PreservationMode::kTaskAtomic;
  cfg.supply = power::SupplyPresets::strong;
  cfg.schedule = fault::OutageSchedule::every_nth(450);
  cfg.write_ber = 1e-6;  // arms protected progress + seals + boot scrub
  cfg.inferences = 3;
  run_differential(cfg);
}

TEST(SchedulerDifferential, SolarTraceSupply) {
  RunConfig cfg;
  cfg.seed = 77;
  // Trace-driven harvest: segment boundaries + guard bands + the stepped
  // recharge loop (the day curve starts at 0 W, so the run opens with a
  // long recharge whose integration must match step for step).
  cfg.supply = [] { return power::SupplyPresets::solar_day(8e-3, 0.5); };
  cfg.inferences = 2;
  run_differential(cfg);
}

TEST(SchedulerDifferential, TelemetryRegistriesExact) {
  RunConfig cfg;
  cfg.seed = 88;
  cfg.supply = power::SupplyPresets::strong;
  cfg.schedule = fault::OutageSchedule::every_nth(350);
  cfg.telemetry = true;  // tracing disables grants: exact path, same spans
  run_differential(cfg);
}

TEST(SchedulerDifferential, MultipathAccumulateMode) {
  RunConfig cfg;
  cfg.seed = 99;
  cfg.multipath = true;
  cfg.mode = engine::PreservationMode::kAccumulateInVm;
  cfg.supply = power::SupplyPresets::weak;
  run_differential(cfg);
}

TEST(SchedulerDifferential, EventBudgetAbortsAtTheSameOrdinal) {
  RunConfig cfg;
  cfg.seed = 111;
  cfg.supply = power::SupplyPresets::strong;
  // One tiny-model inference is ~172 hook events for this seed, so 250
  // lands the watchdog abort in the middle of the second inference.
  cfg.event_budget = 250;
  const RunOutcome oracle = run_stack(cfg, power::SimMode::kStepping);
  const RunOutcome sched = run_stack(cfg, power::SimMode::kScheduler);
  ASSERT_FALSE(oracle.error.empty());
  EXPECT_NE(oracle.error.find("event budget exhausted"), std::string::npos);
  expect_identical(oracle, sched);
}

TEST(SchedulerDifferential, ModeSwitchMidRunStaysConsistent) {
  // Switching stepping -> scheduler between inferences must settle all
  // pending state and continue exactly (the fleet layer never does this
  // mid-run, but the device API allows it).
  RunConfig cfg;
  cfg.seed = 123;
  cfg.supply = power::SupplyPresets::strong;
  cfg.schedule = fault::OutageSchedule::every_nth(400);
  cfg.inferences = 2;

  const RunOutcome oracle = run_stack(cfg, power::SimMode::kStepping);

  util::Rng rng(cfg.seed);
  nn::Graph graph = fault::make_tiny_graph(rng);
  const nn::Tensor calibration = fault::make_batch(rng, graph, 8);
  const nn::Tensor samples = fault::make_batch(rng, graph, cfg.inferences);
  device::Msp430Device device(device::DeviceConfig::msp430fr5994(),
                              cfg.supply());
  engine::EngineConfig config;
  config.mode = cfg.mode;
  engine::DeployedModel model(graph, config, device, calibration);
  fault::FaultInjector injector(cfg.schedule);
  device.set_fault_hook(&injector);
  engine::IntermittentEngine engine(model, device);

  std::uint64_t checksum = 0;
  for (std::size_t i = 0; i < cfg.inferences; ++i) {
    device.set_sim_mode(i == 0 ? power::SimMode::kStepping
                               : power::SimMode::kScheduler);
    engine::InferenceResult inference =
        engine.run(fault::slice_sample(samples, i));
    ASSERT_TRUE(inference.stats.completed);
    util::Fnv1a digest;
    digest.fold_u64(checksum);
    digest.fold_f32(inference.logits.data(), inference.logits.size());
    checksum = digest.value();
  }
  device.sync_fault_events();
  EXPECT_EQ(checksum, oracle.logits_checksum);
  EXPECT_EQ(device.now_us(), oracle.clock_us);
  EXPECT_EQ(injector.total_events(), oracle.events);
  EXPECT_EQ(injector.outage_events(), oracle.outage_ordinals);
}

}  // namespace
}  // namespace iprune::sim
