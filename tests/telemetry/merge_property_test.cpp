// Property tests for MetricsRegistry::merge at fleet scale: folding K
// per-device registries must be (a) equal to serially observing the
// concatenated event stream, (b) independent of fold shape (left fold vs
// balanced tree) when the summed payloads are exactly representable, and
// (c) exact on histogram bucket edges (overflow clamp, NaN/negative
// clamp). This is the contract the fleet orchestrator's fixed-order
// aggregation stands on.

#include "telemetry/registry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "telemetry/events.hpp"
#include "util/rng.hpp"

namespace iprune::telemetry {
namespace {

/// Synthetic span event with integer-valued payloads (exactly
/// representable doubles, so summation is associative and the tree-fold
/// comparison below is exact rather than approximate).
Event make_span(util::Rng& rng) {
  Event e;
  e.cls = static_cast<EventClass>(rng.uniform_index(5));  // device classes
  e.phase = EventPhase::kSpan;
  e.t_us = static_cast<double>(rng.uniform_index(1 << 20));
  e.dur_us = static_cast<double>(rng.uniform_index(1 << 16));
  e.attributed_us = static_cast<double>(rng.uniform_index(1 << 16));
  e.energy_j = static_cast<double>(rng.uniform_index(1 << 10));
  e.bytes = rng.uniform_index(1 << 12);
  e.macs = rng.uniform_index(1 << 12);
  return e;
}

void expect_equal(const ClassMetrics& a, const ClassMetrics& b,
                  const char* where) {
  EXPECT_EQ(a.events, b.events) << where;
  EXPECT_EQ(a.busy_us, b.busy_us) << where;
  EXPECT_EQ(a.attributed_us, b.attributed_us) << where;
  EXPECT_EQ(a.energy_j, b.energy_j) << where;
  EXPECT_EQ(a.bytes, b.bytes) << where;
  EXPECT_EQ(a.macs, b.macs) << where;
  EXPECT_EQ(a.latency_us.count(), b.latency_us.count()) << where;
  EXPECT_EQ(a.latency_us.sum(), b.latency_us.sum()) << where;
  EXPECT_EQ(a.latency_us.max(), b.latency_us.max()) << where;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(a.latency_us.bucket(i), b.latency_us.bucket(i))
        << where << " bucket " << i;
  }
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_EQ(a.energy_nj.bucket(i), b.energy_nj.bucket(i))
        << where << " energy bucket " << i;
  }
}

void expect_equal(const MetricsRegistry& a, const MetricsRegistry& b,
                  const char* where) {
  EXPECT_EQ(a.events_seen(), b.events_seen()) << where;
  for (std::size_t c = 0; c < kEventClassCount; ++c) {
    expect_equal(a.for_class(static_cast<EventClass>(c)),
                 b.for_class(static_cast<EventClass>(c)), where);
  }
}

TEST(MergeProperty, FoldEqualsSerialObservationAtFleetScale) {
  // K device registries, a few events each, K up to 1000: the left fold
  // must equal one registry that observed every event serially in the
  // same device order.
  for (const std::size_t k : {1u, 7u, 128u, 1000u}) {
    util::Rng rng(k);
    MetricsRegistry serial;
    std::vector<MetricsRegistry> devices(k);
    for (std::size_t d = 0; d < k; ++d) {
      const std::size_t events = 1 + rng.uniform_index(4);
      for (std::size_t i = 0; i < events; ++i) {
        const Event e = make_span(rng);
        serial.observe(e);
        devices[d].observe(e);
      }
    }
    MetricsRegistry folded;
    for (const MetricsRegistry& device : devices) {
      folded.merge(device);
    }
    expect_equal(folded, serial, "left fold vs serial");
  }
}

TEST(MergeProperty, TreeFoldEqualsLeftFoldOnExactValues) {
  // With exactly representable payloads, merge is associative: a balanced
  // pairwise reduction must give the same result as the left fold.
  constexpr std::size_t kDevices = 1000;
  util::Rng rng(99);
  std::vector<MetricsRegistry> devices(kDevices);
  for (MetricsRegistry& device : devices) {
    const std::size_t events = 1 + rng.uniform_index(3);
    for (std::size_t i = 0; i < events; ++i) {
      device.observe(make_span(rng));
    }
  }

  MetricsRegistry left;
  for (const MetricsRegistry& device : devices) {
    left.merge(device);
  }

  std::vector<MetricsRegistry> tree = std::move(devices);
  while (tree.size() > 1) {
    std::vector<MetricsRegistry> next;
    for (std::size_t i = 0; i + 1 < tree.size(); i += 2) {
      tree[i].merge(tree[i + 1]);
      next.push_back(std::move(tree[i]));
    }
    if (tree.size() % 2 == 1) {
      next.push_back(std::move(tree.back()));
    }
    tree = std::move(next);
  }
  expect_equal(tree.front(), left, "tree fold vs left fold");
}

TEST(MergeProperty, LayersMergeByNameAcrossDevices) {
  const auto layer_events = [](MetricsRegistry& r, const std::string& name,
                               double begin_us, double end_us) {
    Event b;
    b.cls = EventClass::kLayer;
    b.phase = EventPhase::kBegin;
    b.t_us = begin_us;
    b.name = name;
    r.observe(b);
    Event e = b;
    e.phase = EventPhase::kEnd;
    e.t_us = end_us;
    r.observe(e);
  };
  MetricsRegistry a;
  layer_events(a, "conv", 0.0, 10.0);
  layer_events(a, "fc", 10.0, 14.0);
  MetricsRegistry b;
  layer_events(b, "fc", 0.0, 6.0);
  layer_events(b, "pool", 6.0, 7.0);

  a.merge(b);
  ASSERT_EQ(a.layers().size(), 3u);
  EXPECT_EQ(a.layers()[0].name, "conv");
  EXPECT_EQ(a.layers()[1].name, "fc");
  EXPECT_EQ(a.layers()[2].name, "pool");  // appended in b's order
  EXPECT_EQ(a.layers()[1].passes, 2u);
  EXPECT_EQ(a.layers()[1].wall_us, 10.0);
}

TEST(MergeProperty, HistogramOverflowEdgesSurviveMerge) {
  // Values at and beyond the top bucket clamp to bucket kBuckets-1;
  // NaN and negatives clamp to bucket 0. Merged counts add exactly.
  constexpr std::size_t kTop = Histogram::kBuckets - 1;
  Histogram a;
  a.record(std::ldexp(1.0, 46));       // lower edge of the top bucket
  a.record(std::ldexp(1.0, 47));       // first value past the top: clamps
  a.record(std::numeric_limits<double>::max());
  Histogram b;
  b.record(std::numeric_limits<double>::infinity());
  b.record(-1.0);
  b.record(std::numeric_limits<double>::quiet_NaN());
  b.record(0.5);

  a.merge(b);
  EXPECT_EQ(a.count(), 7u);
  EXPECT_EQ(a.bucket(kTop), 4u);  // 2^46, 2^47, max, inf
  EXPECT_EQ(a.bucket(0), 3u);     // -1, NaN, 0.5
  // Non-finite values clamp into the buckets but stay out of sum/max.
  EXPECT_EQ(a.max(), std::numeric_limits<double>::max());

  // Merging an empty histogram is the identity.
  Histogram empty;
  const std::uint64_t before = a.count();
  a.merge(empty);
  EXPECT_EQ(a.count(), before);
  Histogram c;
  c.merge(a);
  EXPECT_EQ(c.count(), a.count());
  EXPECT_EQ(c.bucket(kTop), a.bucket(kTop));
}

}  // namespace
}  // namespace iprune::telemetry
