// Unit tests for the telemetry subsystem: histogram bucketing, ring-buffer
// overflow policy, registry aggregation, and the device/power emission
// invariants (trace attribution must reproduce DeviceStats exactly).

#include <gtest/gtest.h>

#include <iterator>
#include <memory>

#include "device/msp430.hpp"
#include "power/supply.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sink.hpp"

namespace iprune::telemetry {
namespace {

// --- Histogram ---

TEST(Histogram, BucketIndexIsLogScale) {
  EXPECT_EQ(Histogram::bucket_index(0.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(0.5), 0u);
  EXPECT_EQ(Histogram::bucket_index(1.0), 1u);
  EXPECT_EQ(Histogram::bucket_index(1.9), 1u);
  EXPECT_EQ(Histogram::bucket_index(2.0), 2u);
  EXPECT_EQ(Histogram::bucket_index(3.9), 2u);
  EXPECT_EQ(Histogram::bucket_index(4.0), 3u);
  EXPECT_EQ(Histogram::bucket_index(1024.0), 11u);
  // Out-of-range and invalid values clamp instead of faulting.
  EXPECT_EQ(Histogram::bucket_index(-5.0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1e30), Histogram::kBuckets - 1);
}

TEST(Histogram, BucketBoundsArePowersOfTwo) {
  EXPECT_DOUBLE_EQ(Histogram::bucket_lower_bound(0), 0.0);
  EXPECT_DOUBLE_EQ(Histogram::bucket_upper_bound(0), 1.0);
  EXPECT_DOUBLE_EQ(Histogram::bucket_lower_bound(5), 16.0);
  EXPECT_DOUBLE_EQ(Histogram::bucket_upper_bound(5), 32.0);
  for (std::size_t b = 1; b < Histogram::kBuckets; ++b) {
    EXPECT_DOUBLE_EQ(Histogram::bucket_lower_bound(b),
                     Histogram::bucket_upper_bound(b - 1));
  }
}

TEST(Histogram, RecordAccumulatesCountsAndMoments) {
  Histogram h;
  h.record(0.5);
  h.record(3.0);
  h.record(3.5);
  h.record(100.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.bucket(7), 1u);  // 100 in [64, 128)
  EXPECT_DOUBLE_EQ(h.sum(), 107.0);
  EXPECT_DOUBLE_EQ(h.mean(), 107.0 / 4.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(Histogram, QuantileReturnsBucketUpperBound) {
  Histogram h;
  for (int i = 0; i < 99; ++i) {
    h.record(1.5);  // bucket 1, upper bound 2
  }
  h.record(1000.0);  // bucket 10, upper bound 1024
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1024.0);
  EXPECT_DOUBLE_EQ(Histogram().quantile(0.5), 0.0);
}

TEST(Histogram, MergeMatchesSingleRecorder) {
  const double samples[] = {0.5, 1.5, 3.0, 3.5, 100.0, 1000.0, 0.1};
  Histogram serial;
  Histogram a, b;
  for (std::size_t i = 0; i < std::size(samples); ++i) {
    serial.record(samples[i]);
    (i % 2 == 0 ? a : b).record(samples[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), serial.count());
  EXPECT_DOUBLE_EQ(a.sum(), serial.sum());
  EXPECT_DOUBLE_EQ(a.max(), serial.max());
  for (std::size_t bkt = 0; bkt < Histogram::kBuckets; ++bkt) {
    EXPECT_EQ(a.bucket(bkt), serial.bucket(bkt)) << "bucket " << bkt;
  }

  // Merging an empty histogram is a no-op.
  const std::uint64_t before = a.count();
  a.merge(Histogram());
  EXPECT_EQ(a.count(), before);
}

// --- RecorderSink ring buffer ---

Event span_event(EventClass cls, double t_us, double dur_us) {
  Event e;
  e.cls = cls;
  e.phase = EventPhase::kSpan;
  e.t_us = t_us;
  e.dur_us = dur_us;
  e.attributed_us = dur_us;
  return e;
}

TEST(RecorderSink, KeepsEverythingUnderCapacity) {
  RecorderSink sink(8);
  for (int i = 0; i < 5; ++i) {
    sink.record(span_event(EventClass::kCpu, i, 1.0));
  }
  EXPECT_EQ(sink.size(), 5u);
  EXPECT_EQ(sink.dropped(), 0u);
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(events[i].t_us, i);
  }
}

TEST(RecorderSink, OverflowDropsOldestKeepsNewest) {
  RecorderSink sink(4);
  for (int i = 0; i < 10; ++i) {
    sink.record(span_event(EventClass::kCpu, i, 1.0));
  }
  EXPECT_EQ(sink.size(), 4u);
  EXPECT_EQ(sink.dropped(), 6u);
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first order of the surviving (newest) events.
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(events[i].t_us, 6 + i);
  }
  // Aggregates still cover the full stream, including dropped events.
  EXPECT_EQ(sink.registry().for_class(EventClass::kCpu).events, 10u);
  EXPECT_DOUBLE_EQ(sink.registry().for_class(EventClass::kCpu).busy_us, 10.0);
}

TEST(RecorderSink, RejectsZeroCapacity) {
  EXPECT_THROW(RecorderSink(0), std::invalid_argument);
}

// --- MetricsRegistry ---

TEST(MetricsRegistry, AttributesSpansToInnermostLayerScope) {
  MetricsRegistry registry;
  Event begin;
  begin.cls = EventClass::kLayer;
  begin.phase = EventPhase::kBegin;
  begin.name = "conv1";
  begin.t_us = 10.0;
  registry.observe(begin);

  Event op = span_event(EventClass::kLea, 10.0, 5.0);
  op.macs = 40;
  op.energy_j = 1e-6;
  registry.observe(op);

  Event end = begin;
  end.phase = EventPhase::kEnd;
  end.t_us = 25.0;
  registry.observe(end);

  // A span outside any layer scope stays unattributed.
  registry.observe(span_event(EventClass::kLea, 30.0, 2.0));

  ASSERT_EQ(registry.layers().size(), 1u);
  const LayerMetrics& lm = registry.layers()[0];
  EXPECT_EQ(lm.name, "conv1");
  EXPECT_EQ(lm.passes, 1u);
  EXPECT_DOUBLE_EQ(lm.wall_us, 15.0);
  EXPECT_DOUBLE_EQ(
      lm.attributed_us[static_cast<std::size_t>(EventClass::kLea)], 5.0);
  EXPECT_EQ(lm.macs, 40u);
  EXPECT_DOUBLE_EQ(lm.energy_j, 1e-6);
  // Class aggregates see both spans.
  EXPECT_DOUBLE_EQ(registry.for_class(EventClass::kLea).busy_us, 7.0);
}

TEST(MetricsRegistry, SameLayerNameAccumulatesAcrossPasses) {
  MetricsRegistry registry;
  for (int pass = 0; pass < 3; ++pass) {
    Event begin;
    begin.cls = EventClass::kLayer;
    begin.phase = EventPhase::kBegin;
    begin.name = "fc";
    begin.t_us = pass * 100.0;
    registry.observe(begin);
    Event end = begin;
    end.phase = EventPhase::kEnd;
    end.t_us = pass * 100.0 + 10.0;
    registry.observe(end);
  }
  ASSERT_EQ(registry.layers().size(), 1u);
  EXPECT_EQ(registry.layers()[0].passes, 3u);
  EXPECT_DOUBLE_EQ(registry.layers()[0].wall_us, 30.0);
}

TEST(MetricsRegistry, MergeMatchesSingleSerialRecorder) {
  // Two per-worker registries, each with its own layer scopes and spans,
  // must merge into exactly what one serial recorder would have seen.
  auto feed_layer = [](MetricsRegistry& reg, const std::string& name,
                       double t0, double op_us, std::uint64_t macs) {
    Event begin;
    begin.cls = EventClass::kLayer;
    begin.phase = EventPhase::kBegin;
    begin.name = name;
    begin.t_us = t0;
    reg.observe(begin);
    Event op = span_event(EventClass::kLea, t0, op_us);
    op.macs = macs;
    op.energy_j = 1e-7 * op_us;
    reg.observe(op);
    Event end = begin;
    end.phase = EventPhase::kEnd;
    end.t_us = t0 + op_us + 1.0;
    reg.observe(end);
  };

  MetricsRegistry serial, worker_a, worker_b;
  // "conv1" appears in both workers; "fc" only in worker B.
  for (MetricsRegistry* reg : {&serial, &worker_a}) {
    feed_layer(*reg, "conv1", 0.0, 5.0, 10);
  }
  for (MetricsRegistry* reg : {&serial, &worker_b}) {
    feed_layer(*reg, "conv1", 100.0, 7.0, 20);
    feed_layer(*reg, "fc", 200.0, 3.0, 5);
    reg->observe(span_event(EventClass::kCpu, 300.0, 2.0));
  }

  worker_a.merge(worker_b);

  EXPECT_EQ(worker_a.events_seen(), serial.events_seen());
  for (std::size_t c = 0; c < kEventClassCount; ++c) {
    const auto cls = static_cast<EventClass>(c);
    const ClassMetrics& merged = worker_a.for_class(cls);
    const ClassMetrics& expected = serial.for_class(cls);
    EXPECT_EQ(merged.events, expected.events);
    EXPECT_DOUBLE_EQ(merged.busy_us, expected.busy_us);
    EXPECT_DOUBLE_EQ(merged.attributed_us, expected.attributed_us);
    EXPECT_DOUBLE_EQ(merged.energy_j, expected.energy_j);
    EXPECT_EQ(merged.bytes, expected.bytes);
    EXPECT_EQ(merged.macs, expected.macs);
    EXPECT_EQ(merged.latency_us.count(), expected.latency_us.count());
    EXPECT_DOUBLE_EQ(merged.latency_us.sum(), expected.latency_us.sum());
  }

  ASSERT_EQ(worker_a.layers().size(), serial.layers().size());
  for (std::size_t i = 0; i < serial.layers().size(); ++i) {
    const LayerMetrics& merged = worker_a.layers()[i];
    const LayerMetrics& expected = serial.layers()[i];
    EXPECT_EQ(merged.name, expected.name);
    EXPECT_EQ(merged.passes, expected.passes);
    EXPECT_DOUBLE_EQ(merged.wall_us, expected.wall_us);
    EXPECT_DOUBLE_EQ(merged.energy_j, expected.energy_j);
    EXPECT_EQ(merged.macs, expected.macs);
    for (std::size_t c = 0; c < kEventClassCount; ++c) {
      EXPECT_DOUBLE_EQ(merged.attributed_us[c], expected.attributed_us[c]);
    }
  }
}

TEST(MetricsRegistry, MergeAppendsUnseenLayersInOtherOrder) {
  MetricsRegistry a, b;
  auto touch = [](MetricsRegistry& reg, const std::string& name) {
    Event begin;
    begin.cls = EventClass::kLayer;
    begin.phase = EventPhase::kBegin;
    begin.name = name;
    begin.t_us = 0.0;
    reg.observe(begin);
    Event end = begin;
    end.phase = EventPhase::kEnd;
    end.t_us = 1.0;
    reg.observe(end);
  };
  touch(a, "alpha");
  touch(b, "beta");
  touch(b, "gamma");
  a.merge(b);
  ASSERT_EQ(a.layers().size(), 3u);
  EXPECT_EQ(a.layers()[0].name, "alpha");
  EXPECT_EQ(a.layers()[1].name, "beta");
  EXPECT_EQ(a.layers()[2].name, "gamma");
}

// --- Device emission invariants ---

device::Msp430Device make_device(double power_w,
                                 power::BufferConfig buffer = {}) {
  return device::Msp430Device(
      device::DeviceConfig::msp430fr5994(),
      std::make_unique<power::ConstantSupply>(power_w), buffer);
}

TEST(DeviceTelemetry, SpansReproduceDeviceStatsExactly) {
  auto dev = make_device(power::SupplyPresets::kContinuousW);
  RecorderSink sink;
  dev.set_trace_sink(&sink);

  ASSERT_TRUE(dev.dma_read(128));
  ASSERT_TRUE(dev.dma_write(64));
  ASSERT_TRUE(dev.lea_op(100));
  ASSERT_TRUE(dev.cpu_work(50));
  ASSERT_TRUE(dev.pipelined_job(200, 32, 10));
  ASSERT_TRUE(dev.pipelined_job(10, 400, 10));  // write-dominated

  const device::DeviceStats& stats = dev.stats();
  const MetricsRegistry& reg = sink.registry();
  auto attributed = [&](EventClass cls) {
    return reg.for_class(cls).attributed_us;
  };
  EXPECT_NEAR(attributed(EventClass::kNvmRead),
              stats.tag_us(device::CostTag::kNvmRead), 1e-9);
  EXPECT_NEAR(attributed(EventClass::kNvmWrite),
              stats.tag_us(device::CostTag::kNvmWrite), 1e-9);
  EXPECT_NEAR(attributed(EventClass::kLea),
              stats.tag_us(device::CostTag::kLea), 1e-9);
  EXPECT_NEAR(attributed(EventClass::kCpu),
              stats.tag_us(device::CostTag::kCpu), 1e-9);
  // Energy and payloads match too.
  double energy = 0.0;
  for (std::size_t c = 0; c < kEventClassCount; ++c) {
    energy += reg.for_class(static_cast<EventClass>(c)).energy_j;
  }
  EXPECT_NEAR(energy, stats.energy_j, 1e-12);
  EXPECT_EQ(reg.for_class(EventClass::kNvmRead).bytes, stats.nvm_bytes_read);
  EXPECT_EQ(reg.for_class(EventClass::kNvmWrite).bytes,
            stats.nvm_bytes_written);
  EXPECT_EQ(reg.for_class(EventClass::kLea).macs, stats.macs);
}

TEST(DeviceTelemetry, BrownOutEmitsPowerEventsAndOffTimeMatches) {
  // Weak power + repeated expensive ops forces brown-outs.
  auto dev = make_device(power::SupplyPresets::kWeakW);
  RecorderSink sink;
  dev.set_trace_sink(&sink);

  std::size_t failures = 0;
  for (int i = 0; i < 200 && failures == 0; ++i) {
    if (!dev.dma_write(256)) {
      ++failures;
    }
  }
  ASSERT_GT(dev.stats().power_failures, 0u);

  const MetricsRegistry& reg = sink.registry();
  EXPECT_EQ(reg.for_class(EventClass::kBrownOut).events,
            dev.stats().power_failures);
  EXPECT_EQ(reg.for_class(EventClass::kRecharge).events,
            dev.stats().power_failures);
  EXPECT_EQ(reg.for_class(EventClass::kPowerOn).events,
            dev.stats().power_failures);
  EXPECT_NEAR(reg.for_class(EventClass::kRecharge).busy_us,
              dev.stats().off_time_us, 1e-6);
  EXPECT_NEAR(reg.for_class(EventClass::kReboot).attributed_us,
              dev.stats().tag_us(device::CostTag::kReboot), 1e-9);
}

TEST(DeviceTelemetry, NullSinkIsDefaultAndResettable) {
  auto dev = make_device(power::SupplyPresets::kContinuousW);
  EXPECT_FALSE(dev.trace_sink().enabled());
  RecorderSink sink;
  dev.set_trace_sink(&sink);
  EXPECT_TRUE(dev.trace_sink().enabled());
  ASSERT_TRUE(dev.cpu_work(10));
  dev.set_trace_sink(nullptr);
  EXPECT_FALSE(dev.trace_sink().enabled());
  ASSERT_TRUE(dev.cpu_work(10));  // not recorded
  EXPECT_EQ(sink.registry().for_class(EventClass::kCpu).events, 1u);
}

}  // namespace
}  // namespace iprune::telemetry
