// Golden-file test for the trace exporters: a tiny engine run must export
// structurally valid Chrome-trace JSON, and the trace-derived
// preservation/computation/recharge split must match the engine's own
// aggregate counters (the subsystem's reason to exist: Fig. 2 from a live
// trace instead of hand-maintained accounting).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "data/synthetic.hpp"
#include "engine/engine.hpp"
#include "nn/activation.hpp"
#include "nn/conv2d.hpp"
#include "nn/dense.hpp"
#include "nn/pool.hpp"
#include "power/supply.hpp"
#include "telemetry/trace_export.hpp"

namespace iprune {
namespace {

nn::Graph make_tiny_graph(util::Rng& rng) {
  nn::Graph g({2, 6, 6});
  auto conv = g.add(std::make_unique<nn::Conv2d>(
                        "conv",
                        nn::Conv2dSpec{.in_channels = 2, .out_channels = 4,
                                       .kernel_h = 3, .kernel_w = 3,
                                       .pad_h = 1, .pad_w = 1},
                        rng),
                    {g.input()});
  auto relu = g.add(std::make_unique<nn::Relu>("relu"), {conv});
  auto pool = g.add(std::make_unique<nn::MaxPool2d>("pool",
                                                    nn::PoolSpec{2, 2, 2}),
                    {relu});
  auto flat = g.add(std::make_unique<nn::Flatten>("flatten"), {pool});
  auto fc = g.add(std::make_unique<nn::Dense>("fc", 4 * 3 * 3, 3, rng),
                  {flat});
  g.set_output(fc);
  return g;
}

nn::Tensor make_batch(util::Rng& rng, std::size_t count) {
  nn::Tensor batch({count, 2, 6, 6});
  for (std::size_t i = 0; i < batch.numel(); ++i) {
    batch[i] = static_cast<float>(rng.normal(0.0, 0.5));
  }
  return batch;
}

nn::Tensor first_sample(const nn::Tensor& batch) {
  nn::Shape shape = batch.shape();
  shape.erase(shape.begin());
  nn::Tensor sample(shape);
  for (std::size_t i = 0; i < sample.numel(); ++i) {
    sample[i] = batch[i];
  }
  return sample;
}

/// Validate JSON structure without a parser: balanced {} / [] outside
/// string literals, quote-escape correctness, no bare NaN/Infinity (which
/// are invalid JSON and break Perfetto's import).
void expect_valid_json_shape(const std::string& json) {
  long braces = 0;
  long brackets = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char ch : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (ch == '\\') {
        escaped = true;
      } else if (ch == '"') {
        in_string = false;
      }
      continue;
    }
    switch (ch) {
      case '"':
        in_string = true;
        break;
      case '{':
        ++braces;
        break;
      case '}':
        --braces;
        break;
      case '[':
        ++brackets;
        break;
      case ']':
        --brackets;
        break;
      default:
        break;
    }
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  // Non-finite numbers would be serialized as bare tokens after a colon
  // ("inference" the string is fine; ":inf" the number is not).
  EXPECT_EQ(json.find(":nan"), std::string::npos);
  EXPECT_EQ(json.find(":inf"), std::string::npos);
  EXPECT_EQ(json.find(":-nan"), std::string::npos);
  EXPECT_EQ(json.find(":-inf"), std::string::npos);
}

struct TracedRun {
  engine::InferenceResult result;
  std::unique_ptr<telemetry::RecorderSink> sink;
};

TracedRun traced_run(double power_w,
                     engine::PreservationMode mode =
                         engine::PreservationMode::kImmediate,
                     power::BufferConfig buffer = {}) {
  util::Rng rng(7);
  nn::Graph graph = make_tiny_graph(rng);
  const nn::Tensor calib = make_batch(rng, 8);
  device::Msp430Device dev(device::DeviceConfig::msp430fr5994(),
                           std::make_unique<power::ConstantSupply>(power_w),
                           buffer);
  TracedRun run;
  run.sink = std::make_unique<telemetry::RecorderSink>();
  dev.set_trace_sink(run.sink.get());
  engine::EngineConfig config;
  config.mode = mode;
  engine::DeployedModel model(graph, config, dev, calib);
  engine::IntermittentEngine eng(model, dev);
  run.result = eng.run(first_sample(calib));
  return run;
}

TEST(TraceExport, ChromeTraceJsonIsStructurallyValid) {
  const TracedRun run = traced_run(power::SupplyPresets::kContinuousW);
  ASSERT_TRUE(run.result.stats.completed);
  ASSERT_GT(run.sink->size(), 0u);

  const std::string json = telemetry::chrome_trace_json(run.sink->events());
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // Track metadata plus every phase kind the engine/device emit.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Layer scopes carry the graph's layer names.
  EXPECT_NE(json.find("\"conv\""), std::string::npos);
  EXPECT_NE(json.find("\"fc\""), std::string::npos);
  expect_valid_json_shape(json);
}

TEST(TraceExport, ExportWritesLoadableFile) {
  const TracedRun run = traced_run(power::SupplyPresets::kContinuousW);
  const std::string path = ::testing::TempDir() + "tiny.trace.json";
  ASSERT_TRUE(telemetry::export_chrome_trace(run.sink->events(), path));
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream content;
  content << file.rdbuf();
  EXPECT_EQ(content.str(), telemetry::chrome_trace_json(run.sink->events()));
  std::remove(path.c_str());
}

TEST(TraceExport, BreakdownMatchesEngineAggregates) {
  const TracedRun run = traced_run(power::SupplyPresets::kContinuousW);
  ASSERT_TRUE(run.result.stats.completed);
  const engine::InferenceStats& s = run.result.stats;
  const auto breakdown =
      telemetry::LatencyBreakdown::from(run.sink->registry());

  // 1% is the acceptance bar; the attribution mirrors CostTag exactly, so
  // the agreement should be tight.
  EXPECT_NEAR(breakdown.preservation_s, s.nvm_write_s,
              0.01 * s.nvm_write_s + 1e-12);
  EXPECT_NEAR(breakdown.fetch_s, s.nvm_read_s, 0.01 * s.nvm_read_s + 1e-12);
  EXPECT_NEAR(breakdown.compute_s, s.lea_s + s.cpu_s,
              0.01 * (s.lea_s + s.cpu_s) + 1e-12);
  EXPECT_NEAR(breakdown.total_s(), s.latency_s, 0.01 * s.latency_s + 1e-12);
  // Immediate preservation under continuous power: the Fig. 2 shape.
  EXPECT_GT(breakdown.preservation_s, breakdown.compute_s);
}

TEST(TraceExport, BreakdownCoversRechargeUnderWeakPower) {
  // The tiny model's whole run fits inside the default 104 uJ capacitor;
  // shrink it so the weak supply actually causes brown-outs.
  const TracedRun run = traced_run(
      power::SupplyPresets::kWeakW, engine::PreservationMode::kImmediate,
      power::BufferConfig{.capacitance_f = 20e-6, .v_on = 2.8, .v_off = 2.4});
  ASSERT_TRUE(run.result.stats.completed);
  ASSERT_GT(run.result.stats.power_failures, 0u);
  const engine::InferenceStats& s = run.result.stats;
  const auto breakdown =
      telemetry::LatencyBreakdown::from(run.sink->registry());
  EXPECT_NEAR(breakdown.recharge_s, s.off_s, 0.01 * s.off_s + 1e-12);
  EXPECT_NEAR(breakdown.reboot_s, s.reboot_s, 0.01 * s.reboot_s + 1e-12);
  EXPECT_NEAR(breakdown.total_s(), s.latency_s, 0.01 * s.latency_s);
  // Under weak harvesting, recharge dead time dominates wall-clock.
  EXPECT_GT(breakdown.recharge_s, breakdown.on_s());
}

TEST(TraceExport, LayerWallTimesMatchPerNodeLatencies) {
  const TracedRun run = traced_run(power::SupplyPresets::kContinuousW);
  const auto& layers = run.sink->registry().layers();
  ASSERT_EQ(layers.size(), run.result.per_node.size());
  for (std::size_t i = 0; i < layers.size(); ++i) {
    EXPECT_EQ(layers[i].name, run.result.per_node[i].name);
    EXPECT_NEAR(layers[i].wall_us * 1e-6, run.result.per_node[i].latency_s,
                1e-9)
        << layers[i].name;
  }
}

TEST(TraceExport, SummaryCsvListsActiveClasses) {
  const TracedRun run = traced_run(power::SupplyPresets::kContinuousW);
  const std::string csv =
      telemetry::summary_csv(run.sink->registry()).str();
  EXPECT_NE(csv.find("class,events,busy_us"), std::string::npos);
  EXPECT_NE(csv.find("nvm_write"), std::string::npos);
  EXPECT_NE(csv.find("lea"), std::string::npos);
  EXPECT_NE(csv.find("progress_commit"), std::string::npos);
  // No power failures under continuous power: no recharge row.
  EXPECT_EQ(csv.find("recharge"), std::string::npos);
}

TEST(TraceExport, BreakdownTableRendersShares) {
  const TracedRun run = traced_run(power::SupplyPresets::kContinuousW);
  const std::string table = telemetry::breakdown_table(
      telemetry::LatencyBreakdown::from(run.sink->registry()));
  EXPECT_NE(table.find("Progress preservation"), std::string::npos);
  EXPECT_NE(table.find("Recharge"), std::string::npos);
  EXPECT_NE(table.find("100.0%"), std::string::npos);
  const std::string per_layer = telemetry::layer_table(run.sink->registry());
  EXPECT_NE(per_layer.find("conv"), std::string::npos);
  EXPECT_NE(per_layer.find("fc"), std::string::npos);
}

TEST(TraceExport, TaskAtomicModeTraceStaysConsistent) {
  const TracedRun run = traced_run(power::SupplyPresets::kContinuousW,
                                   engine::PreservationMode::kTaskAtomic);
  ASSERT_TRUE(run.result.stats.completed);
  const engine::InferenceStats& s = run.result.stats;
  const auto breakdown =
      telemetry::LatencyBreakdown::from(run.sink->registry());
  EXPECT_NEAR(breakdown.total_s(), s.latency_s, 0.01 * s.latency_s + 1e-12);
  expect_valid_json_shape(telemetry::chrome_trace_json(run.sink->events()));
}

}  // namespace
}  // namespace iprune
