#include "util/atomic_write.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace iprune::util {
namespace {

namespace fs = std::filesystem;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct AtomicWriteTest : ::testing::Test {
  std::string dir;

  void SetUp() override {
    dir = ::testing::TempDir() + "/atomic_write_test";
    fs::remove_all(dir);
    fs::create_directories(dir);
  }
  void TearDown() override { fs::remove_all(dir); }
};

TEST_F(AtomicWriteTest, CreatesFileWithExactBytes) {
  const std::string path = dir + "/fresh.txt";
  const std::string payload("line1\nline2\n\0binary ok", 22);
  ASSERT_TRUE(atomic_write(path, payload));
  EXPECT_EQ(slurp(path), payload);
}

TEST_F(AtomicWriteTest, ReplacesExistingContentCompletely) {
  const std::string path = dir + "/replace.txt";
  ASSERT_TRUE(atomic_write(path, "a much longer original payload"));
  ASSERT_TRUE(atomic_write(path, "short"));
  // Full replacement, never an in-place partial overwrite.
  EXPECT_EQ(slurp(path), "short");
}

TEST_F(AtomicWriteTest, LeavesNoTempFileBehind) {
  const std::string path = dir + "/clean.txt";
  ASSERT_TRUE(atomic_write(path, "payload"));
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

TEST_F(AtomicWriteTest, FailsCleanlyWhenDirectoryMissing) {
  const std::string path = dir + "/no/such/dir/file.txt";
  EXPECT_FALSE(atomic_write(path, "payload"));
  EXPECT_FALSE(fs::exists(dir + "/no"));
}

TEST_F(AtomicWriteTest, OrThrowNamesTheCallerAndPath) {
  const std::string path = dir + "/missing/file.txt";
  try {
    atomic_write_or_throw(path, "x", "gateway");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("gateway"), std::string::npos) << what;
    EXPECT_NE(what.find(path), std::string::npos) << what;
  }
}

TEST_F(AtomicWriteTest, EmptyPayloadTruncates) {
  const std::string path = dir + "/empty.txt";
  ASSERT_TRUE(atomic_write(path, "not empty"));
  ASSERT_TRUE(atomic_write(path, ""));
  EXPECT_EQ(slurp(path), "");
}

}  // namespace
}  // namespace iprune::util
