#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace iprune::util {
namespace {

TEST(Csv, BasicRows) {
  CsvWriter csv({"a", "b"});
  csv.row({"1", "2"}).row({"3", "4"});
  EXPECT_EQ(csv.str(), "a,b\n1,2\n3,4\n");
}

TEST(Csv, QuotesCellsWithCommas) {
  CsvWriter csv({"v"});
  csv.row({"x,y"});
  EXPECT_EQ(csv.str(), "v\n\"x,y\"\n");
}

TEST(Csv, EscapesEmbeddedQuotes) {
  CsvWriter csv({"v"});
  csv.row({"say \"hi\""});
  EXPECT_EQ(csv.str(), "v\n\"say \"\"hi\"\"\"\n");
}

TEST(Csv, QuotesNewlines) {
  CsvWriter csv({"v"});
  csv.row({"two\nlines"});
  EXPECT_EQ(csv.str(), "v\n\"two\nlines\"\n");
}

TEST(Csv, SaveWritesFile) {
  CsvWriter csv({"h"});
  csv.row({"1"});
  const std::string path = ::testing::TempDir() + "iprune_csv_test.csv";
  ASSERT_TRUE(csv.save(path));
  std::ifstream in(path);
  const std::string content((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "h\n1\n");
  std::remove(path.c_str());
}

TEST(Csv, SaveToInvalidPathFails) {
  CsvWriter csv({"h"});
  EXPECT_FALSE(csv.save("/nonexistent-dir-xyz/file.csv"));
}

}  // namespace
}  // namespace iprune::util
