#include "util/log.hpp"

#include <gtest/gtest.h>

namespace iprune::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrips) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  set_log_level(LogLevel::kTrace);
  EXPECT_EQ(log_level(), LogLevel::kTrace);
}

TEST(Log, SuppressedLevelsDoNotCrash) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  log_info("should be suppressed");
  log_debug("also suppressed");
  log_warn("suppressed too");
}

TEST(Log, OffSilencesEverything) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  log_error("even errors are silenced");
}

}  // namespace
}  // namespace iprune::util
