// Golden-schema and comparator tests for the BENCH_PERF.json perf gate.
// Pins the document format bench_perf_gate emits (schema tag, required
// entry keys, name-sorted entries), the round trip through from_json, and
// the comparator verdicts: pass on parity, fail on a synthetic 2x
// slowdown at the default tolerance, fail on a missing entry, fail on a
// checksum change, never fail on a speedup.

#include "util/perf_gate.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace iprune::util {
namespace {

PerfReport sample_report() {
  PerfReport report;
  report.add({"gemm_dense_64", 120000, 33, 0xDEADBEEFu});
  report.add({"conv2d_infer_8x16x16", 800000, 17, 42u});
  report.add({"engine_e2e_infer", 5000000, 7, 7777u, "msp430-fram"});
  return report;
}

TEST(PerfGate, JsonCarriesSchemaTagAndRequiredKeys) {
  const std::string json = sample_report().to_json();
  EXPECT_NE(json.find("\"schema\": \"iprune-bench-perf/1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"entries\""), std::string::npos);
  for (const char* key : {"\"name\"", "\"median_ns\"", "\"iters\"",
                          "\"checksum\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(PerfGate, JsonEntriesSortedByName) {
  const std::string json = sample_report().to_json();
  // Insertion order was gemm, conv, engine; serialized order is lexical
  // so baselines diff cleanly.
  const auto conv = json.find("conv2d_infer_8x16x16");
  const auto engine = json.find("engine_e2e_infer");
  const auto gemm = json.find("gemm_dense_64");
  ASSERT_NE(conv, std::string::npos);
  ASSERT_NE(engine, std::string::npos);
  ASSERT_NE(gemm, std::string::npos);
  EXPECT_LT(conv, engine);
  EXPECT_LT(engine, gemm);
}

TEST(PerfGate, RoundTripPreservesEveryField) {
  const PerfReport original = sample_report();
  const PerfReport back = PerfReport::from_json(original.to_json());
  ASSERT_EQ(original.entries.size(), back.entries.size());
  for (const PerfEntry& e : original.entries) {
    const PerfEntry* b = back.find(e.name);
    ASSERT_NE(b, nullptr) << e.name;
    EXPECT_EQ(e.median_ns, b->median_ns) << e.name;
    EXPECT_EQ(e.iters, b->iters) << e.name;
    EXPECT_EQ(e.checksum, b->checksum) << e.name;
    EXPECT_EQ(e.backend, b->backend) << e.name;
  }
}

TEST(PerfGate, BackendTagDefaultsToHostWhenAbsent) {
  // Pre-backend baselines never wrote the tag; they must keep parsing and
  // read back as host-side entries.
  const std::string doc = R"({
    "schema": "iprune-bench-perf/1",
    "entries": [
      {"name": "x", "median_ns": 5, "iters": 3, "checksum": 9}
    ]
  })";
  const PerfReport report = PerfReport::from_json(doc);
  ASSERT_EQ(1u, report.entries.size());
  EXPECT_EQ(report.entries[0].backend, "host");
}

TEST(PerfGate, ComparatorFailsOnBackendChange) {
  // Timings measured against different backends prove nothing; a tag
  // change fails even when the numbers and checksums line up.
  const PerfReport baseline = sample_report();
  PerfReport current = sample_report();
  for (PerfEntry& e : current.entries) {
    if (e.name == "engine_e2e_infer") {
      e.backend = "reram";
    }
  }
  const PerfGateResult result = compare(baseline, current, 100.0);
  EXPECT_FALSE(result.passed);
  bool flagged = false;
  for (const PerfComparison& cmp : result.comparisons) {
    if (cmp.name == "engine_e2e_infer") {
      flagged = cmp.backend_changed;
      EXPECT_FALSE(cmp.checksum_changed);
      EXPECT_FALSE(cmp.regressed);
    } else {
      EXPECT_FALSE(cmp.failed()) << cmp.name;
    }
  }
  EXPECT_TRUE(flagged);
  EXPECT_NE(result.summary.find(
                "backend 'reram' != baseline 'msp430-fram'"),
            std::string::npos);
}

TEST(PerfGate, ComparatorPassesOnIdenticalReports) {
  const PerfReport report = sample_report();
  const PerfGateResult result = compare(report, report);
  EXPECT_TRUE(result.passed);
  ASSERT_EQ(3u, result.comparisons.size());
  for (const PerfComparison& cmp : result.comparisons) {
    EXPECT_FALSE(cmp.failed()) << cmp.name;
    EXPECT_DOUBLE_EQ(1.0, cmp.ratio) << cmp.name;
  }
  EXPECT_NE(result.summary.find("PASS: 3 baseline entries checked"),
            std::string::npos);
}

TEST(PerfGate, ComparatorFailsOnSyntheticTwoXSlowdown) {
  // The acceptance-criteria demonstration: a 2x regression on one entry
  // must fail the gate at the default tolerance (1.6x).
  const PerfReport baseline = sample_report();
  PerfReport slow = sample_report();
  for (PerfEntry& e : slow.entries) {
    if (e.name == "gemm_dense_64") {
      e.median_ns *= 2;
    }
  }
  const PerfGateResult result = compare(baseline, slow);
  EXPECT_FALSE(result.passed);
  bool flagged = false;
  for (const PerfComparison& cmp : result.comparisons) {
    if (cmp.name == "gemm_dense_64") {
      flagged = true;
      EXPECT_TRUE(cmp.regressed);
      EXPECT_DOUBLE_EQ(2.0, cmp.ratio);
      EXPECT_FALSE(cmp.missing);
      EXPECT_FALSE(cmp.checksum_changed);
    } else {
      EXPECT_FALSE(cmp.failed()) << cmp.name;
    }
  }
  EXPECT_TRUE(flagged);
  EXPECT_NE(result.summary.find("FAIL gemm_dense_64"), std::string::npos);
}

TEST(PerfGate, SlowdownWithinToleranceStillPasses) {
  const PerfReport baseline = sample_report();
  PerfReport slightly_slow = sample_report();
  for (PerfEntry& e : slightly_slow.entries) {
    e.median_ns = e.median_ns * 3 / 2;  // 1.5x < 1.6x default tolerance
  }
  EXPECT_TRUE(compare(baseline, slightly_slow).passed);
  // The same run fails once the caller tightens the tolerance.
  EXPECT_FALSE(compare(baseline, slightly_slow, 1.2).passed);
}

TEST(PerfGate, ComparatorFailsOnMissingEntry) {
  const PerfReport baseline = sample_report();
  PerfReport current = sample_report();
  current.entries.erase(current.entries.begin());  // drop gemm_dense_64
  const PerfGateResult result = compare(baseline, current);
  EXPECT_FALSE(result.passed);
  bool saw_missing = false;
  for (const PerfComparison& cmp : result.comparisons) {
    if (cmp.name == "gemm_dense_64") {
      saw_missing = cmp.missing;
    }
  }
  EXPECT_TRUE(saw_missing);
  EXPECT_NE(result.summary.find("missing from this run"), std::string::npos);
}

TEST(PerfGate, ComparatorFailsOnChecksumChange) {
  // A checksum change means the kernels' numerics moved — that fails even
  // when the timing improved, at any tolerance.
  const PerfReport baseline = sample_report();
  PerfReport current = sample_report();
  for (PerfEntry& e : current.entries) {
    if (e.name == "engine_e2e_infer") {
      e.checksum ^= 1;
      e.median_ns /= 2;
    }
  }
  const PerfGateResult result = compare(baseline, current, 100.0);
  EXPECT_FALSE(result.passed);
  EXPECT_NE(result.summary.find("bit-identical"), std::string::npos);
}

TEST(PerfGate, SpeedupsNeverFail) {
  const PerfReport baseline = sample_report();
  PerfReport fast = sample_report();
  for (PerfEntry& e : fast.entries) {
    e.median_ns /= 10;
  }
  EXPECT_TRUE(compare(baseline, fast).passed);
}

TEST(PerfGate, EntriesOnlyInCurrentAreIgnored) {
  const PerfReport baseline = sample_report();
  PerfReport current = sample_report();
  current.add({"brand_new_bench", 1, 1, 1});
  const PerfGateResult result = compare(baseline, current);
  EXPECT_TRUE(result.passed);
  EXPECT_EQ(baseline.entries.size(), result.comparisons.size())
      << "adding a benchmark must not break an old baseline";
}

TEST(PerfGate, FromJsonRejectsWrongSchema) {
  EXPECT_THROW(
      PerfReport::from_json(
          R"({"schema": "something-else/9", "entries": []})"),
      std::runtime_error);
}

TEST(PerfGate, FromJsonRejectsMissingEntryKey) {
  // "iters" absent.
  const std::string doc = R"({
    "schema": "iprune-bench-perf/1",
    "entries": [
      {"name": "x", "median_ns": 5, "checksum": 9}
    ]
  })";
  EXPECT_THROW(PerfReport::from_json(doc), std::runtime_error);
}

TEST(PerfGate, FromJsonRejectsMissingTopLevelKeys) {
  EXPECT_THROW(PerfReport::from_json(R"({"entries": []})"),
               std::runtime_error);
  EXPECT_THROW(
      PerfReport::from_json(R"({"schema": "iprune-bench-perf/1"})"),
      std::runtime_error);
}

TEST(PerfGate, FromJsonRejectsGarbage) {
  EXPECT_THROW(PerfReport::from_json(""), std::runtime_error);
  EXPECT_THROW(PerfReport::from_json("not json at all"),
               std::runtime_error);
  EXPECT_THROW(PerfReport::from_json("{\"schema\""), std::runtime_error);
  const std::string trailing =
      R"({"schema": "iprune-bench-perf/1", "entries": []} extra)";
  EXPECT_THROW(PerfReport::from_json(trailing), std::runtime_error);
}

TEST(PerfGate, FromJsonRejectsUnknownKeys) {
  const std::string doc = R"({
    "schema": "iprune-bench-perf/1",
    "entries": [
      {"name": "x", "median_ns": 5, "iters": 3, "checksum": 9,
       "surprise": 1}
    ]
  })";
  EXPECT_THROW(PerfReport::from_json(doc), std::runtime_error);
}

TEST(PerfGate, MonotonicIterationCountsSurviveRoundTrip) {
  // iters is a plain uint64 carried through verbatim; the bench harness
  // relies on nonzero, order-preserved counts when reporting.
  PerfReport report;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    report.add({"bench_" + std::to_string(i), 1000 * i, i, i});
  }
  const PerfReport back = PerfReport::from_json(report.to_json());
  ASSERT_EQ(5u, back.entries.size());
  std::uint64_t prev = 0;
  for (const PerfEntry& e : back.entries) {  // sorted bench_1..bench_5
    EXPECT_GT(e.iters, prev);
    prev = e.iters;
  }
}

}  // namespace
}  // namespace iprune::util
