#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace iprune::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(5);
  double sum = 0.0;
  constexpr int kCount = 100000;
  for (int i = 0; i < kCount; ++i) {
    sum += rng.uniform();
  }
  EXPECT_NEAR(sum / kCount, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversAllValues) {
  Rng rng(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = rng.uniform_index(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(9);
  constexpr int kCount = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < kCount; ++i) {
    const double v = rng.normal();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kCount;
  const double var = sum_sq / kCount - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(10);
  constexpr int kCount = 50000;
  double sum = 0.0;
  for (int i = 0; i < kCount; ++i) {
    sum += rng.normal(5.0, 0.5);
  }
  EXPECT_NEAR(sum / kCount, 5.0, 0.02);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(11);
  int hits = 0;
  constexpr int kCount = 100000;
  for (int i = 0; i < kCount; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kCount, 0.3, 0.01);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(12);
  const auto perm = rng.permutation(100);
  std::set<std::size_t> values(perm.begin(), perm.end());
  EXPECT_EQ(values.size(), 100u);
  EXPECT_EQ(*values.begin(), 0u);
  EXPECT_EQ(*values.rbegin(), 99u);
}

TEST(Rng, PermutationOfZeroAndOne) {
  Rng rng(13);
  EXPECT_TRUE(rng.permutation(0).empty());
  const auto one = rng.permutation(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0u);
}

TEST(Rng, PermutationActuallyShuffles) {
  Rng rng(14);
  const auto perm = rng.permutation(50);
  std::size_t fixed = 0;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    fixed += perm[i] == i ? 1 : 0;
  }
  EXPECT_LT(fixed, 10u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(15);
  Rng child = a.split();
  Rng b(15);
  (void)b.next_u64();  // advance past the split draw
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += child.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, StateRoundTripResumesStreamExactly) {
  Rng rng(16);
  for (int i = 0; i < 37; ++i) {
    (void)rng.next_u64();
  }
  const RngState saved = rng.state();
  Rng resumed = Rng::from_state(saved);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.next_u64(), resumed.next_u64());
  }
}

TEST(Rng, StateCarriesCachedBoxMullerValue) {
  // normal() caches the second Box-Muller draw; a checkpoint taken between
  // the pair must restore that carry or the resumed stream diverges by
  // one value (and stays shifted forever after).
  Rng rng(17);
  (void)rng.normal();  // first of the pair -> carry is now cached
  const RngState saved = rng.state();
  EXPECT_TRUE(saved.has_cached_normal);
  Rng resumed = Rng::from_state(saved);
  EXPECT_EQ(rng.normal(), resumed.normal());      // the cached value
  EXPECT_EQ(rng.next_u64(), resumed.next_u64());  // and the raw stream
  EXPECT_EQ(rng.normal(), resumed.normal());
}

TEST(Rng, StateEqualityDetectsDivergence) {
  Rng a(18), b(18);
  EXPECT_EQ(a.state(), b.state());
  (void)a.next_u64();
  EXPECT_FALSE(a.state() == b.state());
}

}  // namespace
}  // namespace iprune::util
