// Unit tests for the ScratchPool arena behind the hot-path allocations
// (Conv2d im2col, engine psum tiles). Pins the three properties layer and
// engine code rely on: buffers are actually reused across calls, lanes
// get isolated pools under parallel_map, and concurrent checkouts from
// one pool never alias.

#include "util/scratch_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "runtime/parallel.hpp"
#include "runtime/thread_pool.hpp"

namespace iprune::util {
namespace {

TEST(ScratchPool, ReusesBufferAcrossSequentialCheckouts) {
  ScratchPool pool;
  const float* first_ptr = nullptr;
  {
    auto a = pool.acquire<float>(256);
    a.fill(1.0f);
    first_ptr = a.data();
    EXPECT_EQ(256u, a.size());
    EXPECT_EQ(1u, pool.outstanding());
    EXPECT_EQ(1u, pool.allocations());
    EXPECT_EQ(0u, pool.reuses());
  }
  EXPECT_EQ(0u, pool.outstanding());
  EXPECT_EQ(1u, pool.free_buffers());

  auto b = pool.acquire<float>(256);
  EXPECT_EQ(first_ptr, b.data()) << "same-size re-acquire must recycle";
  EXPECT_EQ(1u, pool.reuses());
  EXPECT_EQ(1u, pool.allocations());
}

TEST(ScratchPool, SmallerRequestReusesLargerBuffer) {
  ScratchPool pool;
  { auto a = pool.acquire<std::int32_t>(1024); (void)a; }
  auto b = pool.acquire<std::int32_t>(100);
  EXPECT_EQ(100u, b.size());
  EXPECT_EQ(1u, pool.reuses());
  EXPECT_EQ(1u, pool.allocations());
}

TEST(ScratchPool, BestFitPrefersSmallestAdequateBuffer) {
  ScratchPool pool;
  const std::byte* small_ptr = nullptr;
  const std::byte* big_ptr = nullptr;
  {
    auto big = pool.acquire<std::byte>(4096);
    auto small = pool.acquire<std::byte>(512);
    big_ptr = big.data();
    small_ptr = small.data();
  }
  ASSERT_EQ(2u, pool.free_buffers());
  // A 300-byte request fits both; best-fit must hand back the 512er.
  auto c = pool.acquire<std::byte>(300);
  EXPECT_EQ(small_ptr, c.data());
  // The next request gets the big one even though it is oversized.
  auto d = pool.acquire<std::byte>(300);
  EXPECT_EQ(big_ptr, d.data());
  EXPECT_EQ(2u, pool.reuses());
}

TEST(ScratchPool, ConcurrentCheckoutsNeverAlias) {
  ScratchPool pool;
  // Warm the free list so later checkouts are reuse-path, then hold
  // several live checkouts at once and verify the byte ranges are
  // pairwise disjoint.
  {
    auto w1 = pool.acquire<float>(64);
    auto w2 = pool.acquire<float>(64);
    (void)w1;
    (void)w2;
  }
  auto a = pool.acquire<float>(64);
  auto b = pool.acquire<float>(64);
  auto c = pool.acquire<float>(32);
  EXPECT_EQ(3u, pool.outstanding());
  struct Range {
    const char* lo;
    const char* hi;
  };
  const Range ranges[] = {
      {reinterpret_cast<const char*>(a.data()),
       reinterpret_cast<const char*>(a.data() + a.size())},
      {reinterpret_cast<const char*>(b.data()),
       reinterpret_cast<const char*>(b.data() + b.size())},
      {reinterpret_cast<const char*>(c.data()),
       reinterpret_cast<const char*>(c.data() + c.size())},
  };
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i + 1; j < 3; ++j) {
      const bool disjoint = ranges[i].hi <= ranges[j].lo ||
                            ranges[j].hi <= ranges[i].lo;
      EXPECT_TRUE(disjoint) << "checkouts " << i << " and " << j << " alias";
    }
  }
  // Writes through one handle must not show through another.
  a.fill(1.0f);
  b.fill(2.0f);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(1.0f, a[i]);
  }
}

TEST(ScratchPool, PerLaneIsolationUnderParallelMap) {
  // Every lane (caller + workers) must see its own ScratchPool::local().
  // With 2 lanes and tasks that hold a live checkout while recording
  // their pool identity, a shared pool would show aliasing or a shared
  // address; lane-local pools show one pool per participating thread.
  runtime::ThreadPool pool(2);
  ASSERT_EQ(2u, pool.lanes());

  std::mutex mu;
  std::set<const ScratchPool*> pools_seen;
  std::set<std::thread::id> threads_seen;
  const auto results =
      runtime::parallel_map(pool, 64, [&](std::size_t index) {
        auto scratch = ScratchPool::local().acquire<std::uint64_t>(128);
        scratch.fill(index);
        // Hold the checkout across a second acquire to exercise reuse
        // bookkeeping inside the lane.
        auto scratch2 = ScratchPool::local().acquire<std::uint64_t>(32);
        scratch2.fill(~index);
        {
          std::lock_guard<std::mutex> lock(mu);
          pools_seen.insert(&ScratchPool::local());
          threads_seen.insert(std::this_thread::get_id());
        }
        // The lane's own writes must be intact (no cross-lane clobber).
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < scratch.size(); ++i) {
          sum += scratch[i];
        }
        return sum;
      });

  ASSERT_EQ(64u, results.size());
  for (std::size_t index = 0; index < results.size(); ++index) {
    EXPECT_EQ(index * 128, results[index]) << "index " << index;
  }
  // One distinct pool per distinct thread that ran tasks.
  EXPECT_EQ(threads_seen.size(), pools_seen.size());
  EXPECT_GE(pools_seen.size(), 1u);
  EXPECT_LE(pools_seen.size(), 2u);
}

TEST(ScratchPool, MoveTransfersOwnership) {
  ScratchPool pool;
  auto a = pool.acquire<float>(16);
  float* ptr = a.data();
  a.fill(3.0f);
  Scratch<float> b = std::move(a);
  EXPECT_EQ(ptr, b.data());
  EXPECT_EQ(16u, b.size());
  EXPECT_EQ(3.0f, b[7]);
  EXPECT_EQ(1u, pool.outstanding()) << "move must not double-count";
  b.release();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(0u, pool.outstanding());
  EXPECT_EQ(1u, pool.free_buffers());
}

TEST(ScratchPool, TrimAndEvictionBoundTheFreeList) {
  ScratchPool pool;
  {
    std::vector<Scratch<std::byte>> live;
    for (std::size_t i = 0; i < ScratchPool::kMaxFreeBuffers + 8; ++i) {
      live.push_back(pool.acquire<std::byte>(64 * (i + 1)));
    }
  }
  // Returning more buffers than the cap must not grow the list past it.
  EXPECT_LE(pool.free_buffers(), ScratchPool::kMaxFreeBuffers);
  EXPECT_GE(pool.free_buffers(), 1u);
  pool.trim();
  EXPECT_EQ(0u, pool.free_buffers());
  // Pool still works after trim.
  auto again = pool.acquire<float>(8);
  again.fill(0.0f);
  EXPECT_EQ(1u, pool.outstanding());
}

TEST(ScratchPool, ZeroCountCheckoutIsSafe) {
  ScratchPool pool;
  auto a = pool.acquire<float>(0);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(0u, a.size());
  a.release();
  EXPECT_EQ(0u, pool.outstanding());
}

}  // namespace
}  // namespace iprune::util
