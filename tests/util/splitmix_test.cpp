// Pins the project's single splitmix64 implementation (util/splitmix.hpp)
// to golden values captured before src/util/rng.cpp and
// src/device/corruption.cpp were deduplicated onto it. If any of these
// fail, every seeded stream in the project — Rng sequences, corruption
// fault positions, fleet seed derivation — has silently changed.

#include "util/splitmix.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <span>
#include <vector>

#include "device/corruption.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace iprune {
namespace {

TEST(Splitmix64, GoldenStreamFromZeroState) {
  std::uint64_t state = 0;
  EXPECT_EQ(util::splitmix64(state), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(util::splitmix64(state), 0x6E789E6AA1B965F4ull);
  EXPECT_EQ(util::splitmix64(state), 0x06C45D188009454Full);
  EXPECT_EQ(util::splitmix64(state), 0xF88BB8A8724C81ECull);
}

TEST(Splitmix64, GoldenStreamFromNonzeroState) {
  std::uint64_t state = 0x1B12C0DEull;
  EXPECT_EQ(util::splitmix64(state), 0xDFBD02C8A0283244ull);
  EXPECT_EQ(util::splitmix64(state), 0x0439BA9C7495A025ull);
  EXPECT_EQ(util::splitmix64(state), 0x6964D3942041F931ull);
  EXPECT_EQ(util::splitmix64(state), 0xB2E80EC9D7B0B0ACull);
}

TEST(Splitmix64, AtIndexMatchesGammaAdvancedState) {
  // splitmix64_at(seed, i) must equal one splitmix64 step from the state
  // seed + i * gamma — the relation fleet seed derivation relies on for
  // O(1) random access into a device's stream.
  const std::uint64_t seed = 0x9E3779B97F4A7C15ull ^ 2026;
  for (std::uint64_t i = 0; i < 64; ++i) {
    std::uint64_t state = seed + i * 0x9E3779B97F4A7C15ull;
    EXPECT_EQ(util::splitmix64_at(seed, i), util::splitmix64(state));
  }
}

TEST(Splitmix64, DistinctIndicesGiveDistinctValues) {
  std::vector<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seen.push_back(util::splitmix64_at(42, i));
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(Splitmix64, RngSeedingUnchangedByDedup) {
  // Rng's constructor seeds its four xoshiro state words from splitmix64;
  // pin the resulting output stream so a change to the shared splitmix
  // header cannot silently re-seed every Rng user in the project.
  util::Rng rng(123);
  EXPECT_EQ(rng.next_u64(), 0xA5565735F810987Aull);
  EXPECT_EQ(rng.next_u64(), 0xD6914642E58D662Eull);
  EXPECT_EQ(rng.next_u64(), 0xAA7521FEB709887Full);
  EXPECT_EQ(rng.next_u64(), 0x863CD15C558D6BFBull);
}

TEST(Splitmix64, CorruptionStreamsUnchangedByDedup) {
  // Golden capture of the corruption model's fault positions from before
  // its private splitmix64 copy was replaced with util/splitmix.hpp. The
  // two formulations are semantically identical; this proves it stayed
  // bit-exact (fault positions AND flip counts).
  device::CorruptionConfig config;
  config.seed = 7;
  config.write_ber = 0.02;
  config.read_ber = 0.01;
  device::CorruptionModel model(config);

  std::array<std::uint8_t, 64> buffer;
  buffer.fill(0xAA);
  model.corrupt_write(0, std::span<std::uint8_t>(buffer));
  EXPECT_EQ(model.write_flips(), 9u);
  {
    util::Fnv1a digest;
    digest.fold(buffer.data(), buffer.size());
    EXPECT_EQ(digest.value(), 0x91851ADADD5E3DF6ull);
  }

  model.corrupt_read(16, std::span<std::uint8_t>(buffer.data(), 48));
  EXPECT_EQ(model.read_flips(), 5u);
  {
    util::Fnv1a digest;
    digest.fold(buffer.data(), buffer.size());
    EXPECT_EQ(digest.value(), 0xD3D32E05DD1E5591ull);
  }
}

}  // namespace
}  // namespace iprune
