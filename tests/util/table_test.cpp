#include "util/table.hpp"

#include <gtest/gtest.h>

namespace iprune::util {
namespace {

TEST(Table, RendersHeadersAndRule) {
  Table t({"a", "bb"});
  const std::string out = t.str();
  EXPECT_NE(out.find("| a "), std::string::npos);
  EXPECT_NE(out.find("| bb "), std::string::npos);
  EXPECT_NE(out.find("|----"), std::string::npos);
}

TEST(Table, AlignsColumnsToWidestCell) {
  Table t({"x"});
  t.row().cell("longvalue");
  t.row().cell("s");
  const std::string out = t.str();
  // Every rendered line must have the same length.
  const std::size_t line_len = out.find('\n');
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t next = out.find('\n', pos);
    ASSERT_NE(next, std::string::npos);
    EXPECT_EQ(next - pos, line_len);
    pos = next + 1;
  }
}

TEST(Table, FormatsDoublesWithPrecision) {
  EXPECT_EQ(Table::format(3.14159, 2), "3.14");
  EXPECT_EQ(Table::format(3.14159, 0), "3");
  EXPECT_EQ(Table::format(-0.5, 1), "-0.5");
}

TEST(Table, NumericCellHelpers) {
  Table t({"v"});
  t.row().cell(std::size_t{42});
  t.row().cell(1.5, 1);
  t.row().cell(static_cast<long long>(-7));
  const std::string out = t.str();
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_NE(out.find("-7"), std::string::npos);
  EXPECT_EQ(t.row_count(), 3u);
}

TEST(Table, CellWithoutRowStartsOne) {
  Table t({"v"});
  t.cell("auto");
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(Table, ShortRowsPadWithEmptyCells) {
  Table t({"a", "b", "c"});
  t.row().cell("1");
  const std::string out = t.str();
  EXPECT_NE(out.find("| 1 "), std::string::npos);
}

}  // namespace
}  // namespace iprune::util
